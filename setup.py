"""Setup shim.

The execution environment has no network and no `wheel` package, so the
PEP 517 editable-install path (which needs `bdist_wheel`) fails. This
shim lets `pip install -e . --no-build-isolation --no-use-pep517` (and
plain `pip install -e .` on machines with wheel) work everywhere.
"""

from setuptools import setup

setup()
