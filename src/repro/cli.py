"""Command-line interface: ``python -m repro <command>``.

Commands::

    list         workloads and paging modes
    run          one workload under one configuration
    compare      one workload under every mode (incl. the SHSP baseline)
    figure5      the full Figure 5 grid
    table6       Table VI (agile miss mix, no PWCs)
    tables       Tables I / II / III (architecture-level reproductions)
    sweep        run a (workloads x modes x page sizes) experiment grid
                 through the parallel runner: worker pool, on-disk result
                 cache, per-cell timeout/retry, deterministic sharding,
                 progress lines, JSON summary, per-cell --trace-dir
    policy-sweep sweep one VMM policy knob and report the effect
    trace        run one workload under the tracer; emit JSONL events
                 and/or a Perfetto trace JSON
    profile      run one workload and print its cycle flamegraph
    lint         run the project's static sanitizer over source trees
    fuzz         differential fuzzing: run seeded random guest histories
                 through the cross-mode equivalence oracle (sharded over
                 the runner pool), shrink failures to minimal reproducers,
                 or --replay corpus cases
    bench        run the registered benchmarks/bench_*.py targets through
                 the repro.bench harness; write schema-versioned
                 BENCH_*.json reports and, with --compare, gate against a
                 committed baseline

Every command prints paper-style tables to stdout; progress and
diagnostic noise goes to stderr, so machine-readable output (``sweep
--json -``, ``trace --events -``) pipes cleanly. Bad arguments exit
non-zero.
"""

import argparse
import sys
from dataclasses import replace

from repro.common.config import (
    CORE_REFERENCE,
    EXTENDED_MODES,
    MODE_AGILE,
    VALID_CORES,
    sandy_bridge_config,
)
from repro.common.params import PAGE_SIZES
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.fuzz.scenario import PROFILES
from repro.obs.metrics import MetricsRegistry
from repro.workloads.suite import PAPER_FOOTPRINTS, SUITE


def _workload_classes():
    return {cls.name: cls for cls in SUITE}


def _throughput_suffix(event):
    """Progress-line tail from a runner/campaign heartbeat event.

    ``" | 3.2/s eta 12s [shard 0/4]"`` when the event carries rate/ETA
    (and shard) keys; empty otherwise, so old-style events still format.
    """
    parts = ""
    rate = event.get("rate")
    if rate is not None:
        parts += " | %.1f/s" % rate
        eta = event.get("eta")
        if eta is not None:
            parts += " eta %.0fs" % eta
    shard = event.get("shard")
    if shard is not None:
        parts += " [shard %s]" % shard
    return parts


def _build_config(args):
    page_size = PAGE_SIZES[args.page_size]
    overrides = {}
    if getattr(args, "no_pwc", False):
        base = sandy_bridge_config()
        overrides["pwc"] = replace(base.pwc, enabled=False)
    if getattr(args, "no_ad_assist", False):
        overrides["hw_ad_assist"] = False
    if getattr(args, "no_cr3_cache", False):
        overrides["hw_cr3_cache"] = False
    if getattr(args, "paranoid", False):
        overrides["paranoid"] = True
    return sandy_bridge_config(mode=args.mode, page_size=page_size, **overrides)


def _metrics_row(metrics):
    return (
        metrics.label,
        metrics.mode,
        str(metrics.page_size),
        metrics.ops,
        metrics.tlb_misses,
        "%.2f" % metrics.avg_refs_per_miss,
        metrics.vmtraps,
        "%.1f%%" % (100 * metrics.page_walk_overhead),
        "%.1f%%" % (100 * metrics.vmm_overhead),
    )


METRICS_HEADERS = ("workload", "mode", "page", "ops", "misses",
                   "refs/miss", "traps", "walk", "vmm")


def cmd_list(_args, out, _err):
    from repro.analysis.tables import format_table

    rows = [(cls.name, PAPER_FOOTPRINTS[cls.name], "%d MB" % cls.footprint_mb,
             cls.description) for cls in SUITE]
    print(format_table(("workload", "paper footprint", "scaled", "description"),
                       rows, title="Workloads"), file=out)
    print("\nModes: %s" % ", ".join(EXTENDED_MODES), file=out)
    return 0


def cmd_run(args, out, _err):
    from repro.analysis.tables import format_table

    cls = _workload_classes()[args.workload]
    config = _build_config(args)
    metrics = Simulator(System(config)).run(
        cls(ops=args.ops, page_size=config.page_size))
    print(format_table(METRICS_HEADERS, [_metrics_row(metrics)]), file=out)
    if args.verbose:
        print("\ntrap counts: %r" % (metrics.trap_counts,), file=out)
        mix = metrics.mode_mix()
        if mix:
            print("miss mix:    %s" % "  ".join(
                "%s=%.1f%%" % (k, 100 * v) for k, v in mix.items()), file=out)
    return 0


def cmd_compare(args, out, _err):
    from repro.analysis.tables import format_table

    cls = _workload_classes()[args.workload]
    rows = []
    for mode in args.modes.split(","):
        run_args = argparse.Namespace(**{**vars(args), "mode": mode})
        config = _build_config(run_args)
        metrics = Simulator(System(config)).run(
            cls(ops=args.ops, page_size=config.page_size))
        rows.append(_metrics_row(metrics))
    print(format_table(METRICS_HEADERS, rows,
                       title="%s under each paging mode" % args.workload),
          file=out)
    return 0


def cmd_figure5(args, out, _err):
    from repro.analysis.experiments import figure5, headline_claims
    from repro.analysis.plots import render_figure5
    from repro.analysis.tables import figure5_rows, format_table

    names = set(args.workloads.split(",")) if args.workloads else None
    results = figure5(ops=args.ops, workload_names=names)
    print(format_table(("Workload", "Config", "Page walk", "VMM", "Total"),
                       figure5_rows(results), title="Figure 5"), file=out)
    if args.chart:
        print("", file=out)
        print(render_figure5(results, "4K"), file=out)
    _rows, summary = headline_claims(results)
    print("\ngeomean speedup vs best constituent: %.3f" %
          summary["geomean_speedup_vs_best"], file=out)
    print("geomean slowdown vs native:          %.3f" %
          summary["geomean_slowdown_vs_native"], file=out)
    return 0


def cmd_table6(args, out, _err):
    from repro.analysis.experiments import table6
    from repro.analysis.tables import format_table, table6_rows

    names = set(args.workloads.split(",")) if args.workloads else None
    results = table6(ops=args.ops, workload_names=names)
    print(format_table(
        ("Workload", "Shadow", "L4", "L3", "L2", "L1", "Nested", "Avg refs"),
        table6_rows(results), title="Table VI"), file=out)
    return 0


def cmd_tables(_args, out, _err):
    from repro.analysis.experiments import table1_measurements, table2_measurements
    from repro.analysis.tables import format_table, table1_rows, table2_rows
    from repro.common.config import sandy_bridge_tlbs

    print(format_table(
        ("Technique", "TLB hit", "Max refs", "PT updates", "HW support"),
        table1_rows(table1_measurements()), title="Table I"), file=out)
    print("", file=out)
    print(format_table(
        ("Level", "Native", "Nested", "Shadow", "Agile"),
        table2_rows(table2_measurements()), title="Table II"), file=out)
    print("", file=out)
    tlbs = sandy_bridge_tlbs()
    rows = []
    for name, geometries in (("L1D", tlbs.l1d), ("L1I", tlbs.l1i), ("L2", tlbs.l2)):
        for size, geometry in sorted(geometries.items()):
            rows.append((name, size, geometry.entries, geometry.ways))
    print(format_table(("TLB", "page size", "entries", "ways"), rows,
                       title="Table III"), file=out)
    return 0


def cmd_sweep(args, out, err):
    """The parallel experiment runner: a grid of cells, fanned out.

    Stream discipline: result tables and the inline JSON summary go to
    ``out``; progress lines, failure reports, and the closing count line
    go to ``err`` — so ``repro sweep --json - | jq .`` just works. With
    ``--json -`` the human results table moves to ``err`` too, leaving
    stdout pure JSON.
    """
    import json

    from repro.analysis.tables import format_table
    from repro.runner import CellSpec, ResultCache, SweepRunner, parse_shard

    classes = _workload_classes()
    if args.workloads in (None, "", "all"):
        names = sorted(classes)
    else:
        names = args.workloads.split(",")
        unknown = [n for n in names if n not in classes]
        if unknown:
            print("unknown workload(s): %s" % ", ".join(unknown), file=err)
            return 2
    modes = args.modes.split(",")
    bad_modes = [m for m in modes if m not in EXTENDED_MODES]
    if bad_modes:
        print("unknown mode(s): %s" % ", ".join(bad_modes), file=err)
        return 2
    page_sizes = args.page_sizes.split(",")
    bad_sizes = [p for p in page_sizes if p not in PAGE_SIZES]
    if bad_sizes:
        print("unknown page size(s): %s" % ", ".join(bad_sizes), file=err)
        return 2

    overrides = {}
    if args.no_pwc:
        overrides["pwc.enabled"] = False
    if args.no_ad_assist:
        overrides["hw_ad_assist"] = False
    if args.no_cr3_cache:
        overrides["hw_cr3_cache"] = False
    if args.paranoid:
        overrides["paranoid"] = True

    cells = [
        CellSpec.make(name, mode=mode, page_size=page_size, ops=args.ops,
                      seed=args.seed, overrides=overrides or None)
        for name in names
        for page_size in page_sizes
        for mode in modes
    ]

    try:
        shard = parse_shard(args.shard) if args.shard else None
    except ValueError as exc:
        print(str(exc), file=err)
        return 2

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        if args.invalidate_cache:
            cache.invalidate()

    def progress(event):
        if args.quiet:
            return
        line = "[%d/%d] %-28s %-7s (attempts=%d, %.2fs)" % (
            event["done"], event["total"], event["cell"], event["status"],
            event["attempts"], event["elapsed"])
        line += _throughput_suffix(event)
        print(line, file=err)

    registry = MetricsRegistry()
    runner = SweepRunner(workers=args.workers, cache=cache,
                         timeout=args.timeout, retries=args.retries,
                         progress=progress, trace_dir=args.trace_dir,
                         metrics=registry)
    sweep = runner.run(cells, shard=shard)

    # With --json - the table would corrupt the JSON stream; divert it.
    table_stream = err if args.json == "-" else out
    rows = [_metrics_row(r.metrics) for r in sweep if r.succeeded]
    if rows:
        print(format_table(METRICS_HEADERS, rows, title="Sweep results"),
              file=table_stream)
    for result in sweep.failures():
        first_line = (result.error or "").splitlines()[0] if result.error else ""
        print("FAILED %s [%s after %d attempt(s)]: %s" % (
            result.spec.describe(), result.status, result.attempts,
            first_line), file=err)
    summary = sweep.summary()
    print("\n%d cells: %d simulated, %d cached, %d failed, %d timed out "
          "(%.2fs, workers=%d)" % (
              summary["cells"], summary["simulated"], summary["cached"],
              summary["failed"], summary["timeout"], summary["elapsed"],
              args.workers), file=err)
    if args.trace_dir:
        traced = sum(1 for r in sweep if r.trace_path is not None)
        print("%d trace payload(s) in %s" % (traced, args.trace_dir), file=err)
    if args.json:
        # Ship the runner's metrics snapshot with the summary so sharded
        # invocations can be merged downstream (MetricsSnapshot.merge).
        summary["metrics"] = registry.snapshot().to_dict()
        if args.json == "-":
            print(json.dumps(summary, indent=2, sort_keys=True), file=out)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
            print("summary written to %s" % args.json, file=err)
    return 0 if not sweep.failures() else 1


def cmd_policy_sweep(args, out, _err):
    from repro.analysis.tables import format_table

    cls = _workload_classes()[args.workload]
    rows = []
    for raw in args.values.split(","):
        value = int(raw)
        config = sandy_bridge_config(mode=MODE_AGILE)
        config = replace(config, policy=replace(config.policy,
                                                **{args.param: value}))
        metrics = Simulator(System(config)).run(cls(ops=args.ops))
        mix = metrics.mode_mix()
        rows.append((
            "%s=%d" % (args.param, value),
            metrics.vmtraps,
            "%.2f" % metrics.avg_refs_per_miss,
            "%.1f%%" % (100 * mix.get("Shadow", 0.0)),
            "%.1f%%" % (100 * (metrics.page_walk_overhead
                               + metrics.vmm_overhead)),
        ))
    print(format_table(
        ("setting", "traps", "refs/miss", "shadow misses", "total overhead"),
        rows, title="Policy sweep (%s, agile)" % args.workload), file=out)
    return 0


def _traced_run(args):
    """Run one workload under a tracer + recorder (trace/profile verbs)."""
    from repro.obs import IntervalRecorder, Tracer

    cls = _workload_classes()[args.workload]
    config = _build_config(args)
    tracer = Tracer()
    recorder = IntervalRecorder(every=args.every)
    system = System(config)
    system.attach_observability(tracer, recorder)
    kwargs = {"ops": args.ops, "page_size": config.page_size}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    metrics = Simulator(system).run(cls(**kwargs))
    return metrics, tracer, recorder


def cmd_trace(args, out, err):
    """Capture one run's event stream; JSONL and/or Perfetto JSON out."""
    from repro.obs import vmtrap_counts
    from repro.obs.exporters import write_jsonl, write_perfetto

    metrics, tracer, recorder = _traced_run(args)
    if args.events == "-":
        write_jsonl(tracer.events, out)
    else:
        with open(args.events, "w", encoding="utf-8") as handle:
            count = write_jsonl(tracer.events, handle)
        print("wrote %d events to %s" % (count, args.events), file=err)
    if args.perfetto:
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            count = write_perfetto(tracer.events, handle,
                                   intervals=recorder.to_rows(),
                                   label=args.workload)
        print("wrote %d trace events to %s" % (count, args.perfetto),
              file=err)
    counts = vmtrap_counts(tracer.events)
    print("%s/%s/%s: %d events, %d intervals, %d measured vmtraps" % (
        args.workload, args.mode, args.page_size, len(tracer),
        len(recorder), sum(counts.values())), file=err)
    if counts != metrics.trap_counts:  # pragma: no cover - invariant
        print("WARNING: trace vmtrap counts diverge from RunMetrics "
              "(%r != %r)" % (counts, metrics.trap_counts), file=err)
        return 1
    return 0


def cmd_profile(args, out, err):
    """Run one workload and print its cycle-attribution flamegraph."""
    from repro.obs.exporters import render_cycle_flame, write_perfetto

    metrics, tracer, recorder = _traced_run(args)
    print(render_cycle_flame(metrics), file=out)
    if args.perfetto:
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            count = write_perfetto(tracer.events, handle,
                                   intervals=recorder.to_rows(),
                                   label=args.workload)
        print("wrote %d trace events to %s" % (count, args.perfetto),
              file=err)
    if args.events:
        from repro.obs.exporters import write_jsonl

        with open(args.events, "w", encoding="utf-8") as handle:
            count = write_jsonl(tracer.events, handle)
        print("wrote %d events to %s" % (count, args.events), file=err)
    return 0


def cmd_fuzz(args, out, err):
    """Differential fuzzing: campaigns, and corpus replay.

    Stream discipline matches ``sweep``: human-readable results go to
    ``out`` (diverted to ``err`` under ``--json -`` so stdout stays pure
    JSON); progress and diagnostics go to ``err``. Oracle mismatches
    exit 1 and print the written reproducer path on stderr; bad
    arguments exit 2.
    """
    import json

    from repro.fuzz import (
        FuzzCampaign,
        iter_cases,
        load_case,
        replay_case,
        specs_for,
    )
    from repro.runner import parse_shard

    modes = args.modes.split(",")
    bad_modes = [m for m in modes if m not in EXTENDED_MODES]
    if bad_modes:
        print("unknown mode(s): %s" % ", ".join(bad_modes), file=err)
        return 2
    page_sizes = args.page_sizes.split(",")
    bad_sizes = [p for p in page_sizes if p not in PAGE_SIZES]
    if bad_sizes:
        print("unknown page size(s): %s" % ", ".join(bad_sizes), file=err)
        return 2
    try:
        shard = parse_shard(args.shard) if args.shard else None
    except ValueError as exc:
        print(str(exc), file=err)
        return 2

    table_stream = err if args.json == "-" else out

    def emit_json(summary):
        if not args.json:
            return
        if args.json == "-":
            print(json.dumps(summary, indent=2, sort_keys=True), file=out)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
            print("summary written to %s" % args.json, file=err)

    # -- replay mode: re-judge committed reproducer cases --------------------
    if args.replay or args.corpus:
        cases = []
        try:
            for path in args.replay or ():
                cases.append((path, load_case(path)))
            for directory in args.corpus or ():
                cases.extend(iter_cases(directory))
        except (OSError, ValueError, KeyError) as exc:
            print("cannot load case: %s" % exc, file=err)
            return 2
        replay_overrides = {}
        if args.core != CORE_REFERENCE:
            replay_overrides["core"] = args.core
        failures = []
        for path, case in cases:
            verdict = replay_case(case, **replay_overrides)
            if not args.quiet:
                print("[replay] %-4s %s" % ("ok" if verdict.ok else "FAIL",
                                            path), file=err)
            if not verdict.ok:
                failures.append((path, verdict))
        for path, verdict in failures:
            print("REPLAY FAILED %s: %s" % (path, verdict), file=err)
        print("%d case(s) replayed, %d failed"
              % (len(cases), len(failures)), file=table_stream)
        emit_json({"schema": 1, "replayed": len(cases),
                   "failed": len(failures),
                   "failures": [{"case": path, "verdict": verdict.to_dict()}
                                for path, verdict in failures]})
        return 1 if failures else 0

    # -- campaign mode -------------------------------------------------------
    options = {"compare_every": args.compare_every,
               "full_check_every": args.check_every}
    if args.no_paranoid:
        options["paranoid"] = False
    if args.no_ad_assist:
        options["hw_ad_assist"] = False
    if args.no_cr3_cache:
        options["hw_cr3_cache"] = False
    if args.core != CORE_REFERENCE:
        options["core"] = args.core

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    specs = specs_for(seeds, args.ops, profile=args.profile,
                      page_sizes=page_sizes, modes=modes, options=options)

    def progress(event):
        if args.quiet:
            return
        line = "[%d/%d] %-36s %s (%.2fs)" % (
            event["done"], event["total"], event["cell"], event["status"],
            event["elapsed"])
        line += _throughput_suffix(event)
        print(line, file=err)

    registry = MetricsRegistry()
    campaign = FuzzCampaign(
        corpus_dir=args.corpus_out, workers=args.workers,
        timeout=args.timeout, shrink_budget=args.shrink_budget,
        do_shrink=not args.no_shrink, capture_traces=not args.no_traces,
        time_budget=args.time_budget, progress=progress, metrics=registry)
    report = campaign.run(specs, shard=shard)

    print("Fuzz campaign [%s, %s, %s]: %d case(s), %d clean, %d failed "
          "(%.2fs%s)" % (args.profile, "+".join(modes),
                         ",".join(page_sizes), report.cases, report.clean,
                         len(report.failures), report.elapsed,
                         ", time budget exhausted"
                         if report.budget_exhausted else ""),
          file=table_stream)
    for failure in report.failures:
        verdict = failure.verdict or {}
        print("MISMATCH %s: %s at op %s (%s)" % (
            failure.spec.describe(), verdict.get("check", "error"),
            verdict.get("op_index"), verdict.get("detail",
                                                 failure.error or "")),
            file=err)
        if failure.reproducer:
            print("  reproducer (%d ops): %s"
                  % (failure.shrunk_ops, failure.reproducer), file=err)
        if failure.trace:
            print("  obs trace: %s" % failure.trace, file=err)
    summary = report.summary()
    summary["metrics"] = registry.snapshot().to_dict()
    emit_json(summary)
    return 0 if report.ok else 1


def cmd_bench(args, out, err):
    """The continuous-benchmarking harness: run targets, gate regressions.

    Stream discipline: the results table and comparison report go to
    ``out``; per-target progress goes to ``err``. With ``--json -`` the
    human output moves to ``err``, leaving stdout pure JSON. Exit codes:
    0 ok, 1 regression (or a failing benchmark), 2 usage errors.
    """
    import json

    from repro.bench import (
        BenchContext,
        CompareError,
        compare_reports,
        discover,
        format_comparison,
        run_target,
    )
    from repro.bench.harness import load_report

    try:
        targets = discover(args.bench_dir, names=args.targets or None)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(str(exc), file=err)
        return 2

    table_stream = err if args.json == "-" else out
    if args.list:
        for target in targets:
            gates = ", ".join(
                "%s (%s, %.0f%%)" % (g.metric, g.direction, 100 * g.tolerance)
                for g in target.gates) or "no gates"
            print("%-24s -> %-32s %s" % (target.name, target.output, gates),
                  file=table_stream)
        return 0

    baseline = None
    if args.compare:
        try:
            baseline = load_report(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("cannot load baseline: %s" % exc, file=err)
            return 2
        matching = [t for t in targets
                    if t.name == baseline.get("benchmark")]
        if not matching:
            print("baseline %s is for benchmark %r, which is not among the "
                  "selected targets" % (args.compare,
                                        baseline.get("benchmark")), file=err)
            return 2
        targets = matching

    exit_code = 0
    payload = {"schema": 1, "reports": [], "comparisons": []}
    for target in targets:
        if not args.quiet:
            print("bench %s (quick=%s) ..." % (target.name, args.quick),
                  file=err)
        ctx = BenchContext(quick=args.quick, ops_override=args.ops,
                           repeat=args.repeat)
        try:
            report, path = run_target(target, ctx, out_dir=args.out_dir)
        except Exception as exc:
            print("bench %s FAILED: %s: %s" % (target.name,
                                               type(exc).__name__, exc),
                  file=err)
            exit_code = max(exit_code, 1)
            continue
        print("%-24s -> %s" % (target.name, path), file=table_stream)
        payload["reports"].append(report)
        if baseline is not None:
            try:
                comparison = compare_reports(baseline, report)
            except CompareError as exc:
                print(str(exc), file=err)
                return 2
            print(format_comparison(comparison), file=table_stream)
            payload["comparisons"].append(comparison)
            if not comparison["ok"]:
                exit_code = max(exit_code, 1)
    if args.json:
        if args.json == "-":
            print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            print("bench summary written to %s" % args.json, file=err)
    return exit_code


def cmd_lint(args, out, err):
    from repro.lint.runner import list_rules, run_lint

    if args.list_rules:
        return list_rules(out)
    cache_dir = None if args.no_cache else args.cache_dir
    return run_lint(args.paths or None, fmt=args.format, out=out, err=err,
                    deep=args.deep, cache_dir=cache_dir,
                    audit_suppressions=args.audit_suppressions,
                    baseline=args.baseline,
                    write_baseline=args.write_baseline)


def cmd_check(args, out, err):
    # `repro check` == `repro lint --deep`.
    args.deep = True
    return cmd_lint(args, out, err)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Agile Paging (ISCA 2016) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and modes")

    def add_common(p, with_mode=True):
        p.add_argument("--workload", choices=sorted(_workload_classes()),
                       default="mcf")
        p.add_argument("--ops", type=int, default=60_000)
        p.add_argument("--page-size", choices=sorted(PAGE_SIZES), default="4K")
        if with_mode:
            p.add_argument("--mode", choices=EXTENDED_MODES, default="agile")
        p.add_argument("--no-pwc", action="store_true",
                       help="disable page-walk caches")
        p.add_argument("--no-ad-assist", action="store_true")
        p.add_argument("--no-cr3-cache", action="store_true")
        p.add_argument("--paranoid", action="store_true",
                       help="validate shadow/guest/TLB coherence invariants "
                            "after every VMtrap and mode switch")

    run_parser = sub.add_parser("run", help="run one workload/configuration")
    add_common(run_parser)
    run_parser.add_argument("--verbose", action="store_true")

    compare_parser = sub.add_parser("compare", help="one workload, every mode")
    add_common(compare_parser, with_mode=False)
    compare_parser.add_argument(
        "--modes", default="native,nested,shadow,shsp,agile")

    fig5_parser = sub.add_parser("figure5", help="the Figure 5 grid")
    fig5_parser.add_argument("--ops", type=int, default=60_000)
    fig5_parser.add_argument("--workloads", default=None,
                             help="comma-separated subset")
    fig5_parser.add_argument("--chart", action="store_true",
                             help="render ASCII stacked bars too")

    t6_parser = sub.add_parser("table6", help="Table VI miss mix")
    t6_parser.add_argument("--ops", type=int, default=60_000)
    t6_parser.add_argument("--workloads", default=None)

    sub.add_parser("tables", help="Tables I/II/III")

    sweep_parser = sub.add_parser(
        "sweep", help="run an experiment grid through the parallel runner")
    sweep_parser.add_argument(
        "--workloads", default="all",
        help="comma-separated workload names, or 'all' (default)")
    sweep_parser.add_argument("--modes", default="native,nested,shadow,agile",
                              help="comma-separated paging modes")
    sweep_parser.add_argument("--page-sizes", default="4K",
                              help="comma-separated page sizes (4K,2M,1G)")
    sweep_parser.add_argument("--ops", type=int, default=20_000)
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="override every workload's default seed")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = in-process serial)")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              help="per-cell timeout in seconds "
                                   "(enforced when workers > 1)")
    sweep_parser.add_argument("--retries", type=int, default=1,
                              help="extra attempts per failed/timed-out cell")
    sweep_parser.add_argument("--cache-dir", default=".repro-cache",
                              help="on-disk result cache location")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="simulate every cell, touch no cache")
    sweep_parser.add_argument("--invalidate-cache", action="store_true",
                              help="wipe the cache before running")
    sweep_parser.add_argument("--shard", default=None, metavar="K/N",
                              help="run only deterministic shard K of N")
    sweep_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write the JSON summary to PATH ('-' to "
                                   "print it)")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-cell progress lines")
    sweep_parser.add_argument("--no-pwc", action="store_true",
                              help="disable page-walk caches")
    sweep_parser.add_argument("--no-ad-assist", action="store_true")
    sweep_parser.add_argument("--no-cr3-cache", action="store_true")
    sweep_parser.add_argument("--paranoid", action="store_true",
                              help="validate coherence invariants during "
                                   "every cell")
    sweep_parser.add_argument("--trace-dir", default=None, metavar="DIR",
                              help="capture per-cell telemetry: run every "
                                   "simulated cell under the tracer and "
                                   "write one trace payload per cell here")

    def add_obs_parser(name, help_text):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("workload", choices=sorted(_workload_classes()),
                       help="suite workload to run")
        p.add_argument("--ops", type=int, default=60_000)
        p.add_argument("--mode", choices=EXTENDED_MODES, default="agile")
        p.add_argument("--page-size", choices=sorted(PAGE_SIZES), default="4K")
        p.add_argument("--seed", type=int, default=None,
                       help="override the workload's default seed")
        p.add_argument("--every", type=int, default=1024,
                       help="interval-sampling period in operations")
        p.add_argument("--no-pwc", action="store_true",
                       help="disable page-walk caches")
        p.add_argument("--no-ad-assist", action="store_true")
        p.add_argument("--no-cr3-cache", action="store_true")
        p.add_argument("--paranoid", action="store_true")
        return p

    trace_parser = add_obs_parser(
        "trace", "run one workload under the tracer; emit events")
    trace_parser.add_argument("--events", default="-", metavar="PATH",
                              help="JSONL event log destination "
                                   "('-' = stdout, the default)")
    trace_parser.add_argument("--perfetto", default=None, metavar="PATH",
                              help="also write Chrome/Perfetto trace JSON")

    profile_parser = add_obs_parser(
        "profile", "run one workload; print its cycle flamegraph")
    profile_parser.add_argument("--perfetto", default=None, metavar="PATH",
                                help="also write Chrome/Perfetto trace JSON")
    profile_parser.add_argument("--events", default=None, metavar="PATH",
                                help="also write the JSONL event log")

    psweep_parser = sub.add_parser("policy-sweep", help="sweep a policy knob")
    psweep_parser.add_argument("--workload", choices=sorted(_workload_classes()),
                               default="memcached")
    psweep_parser.add_argument("--ops", type=int, default=60_000)
    psweep_parser.add_argument("--param", default="write_threshold",
                               choices=("write_threshold", "write_interval",
                                        "revert_interval"))
    psweep_parser.add_argument("--values", default="1,2,4,8")

    fuzz_parser = sub.add_parser(
        "fuzz", help="differential fuzzing: cross-mode equivalence oracle")
    fuzz_parser.add_argument("--seeds", type=int, default=50,
                             help="number of scenario seeds to run")
    fuzz_parser.add_argument("--seed-base", type=int, default=0,
                             help="first seed (scenarios use seed-base..+seeds)")
    fuzz_parser.add_argument("--ops", type=int, default=300,
                             help="guest ops per scenario")
    fuzz_parser.add_argument("--profile", choices=sorted(PROFILES),
                             default="default", help="scenario op-mix profile")
    fuzz_parser.add_argument("--modes", default="native,nested,shadow,agile",
                             help="comma-separated modes compared in lockstep")
    fuzz_parser.add_argument("--page-sizes", default="4K",
                             help="comma-separated page sizes (4K,2M)")
    fuzz_parser.add_argument("--workers", type=int, default=1,
                             help="worker processes (1 = in-process serial)")
    fuzz_parser.add_argument("--timeout", type=float, default=None,
                             help="per-case timeout in seconds "
                                  "(enforced when workers > 1)")
    fuzz_parser.add_argument("--time-budget", type=float, default=None,
                             help="stop dispatching new cases after this "
                                  "many seconds")
    fuzz_parser.add_argument("--corpus-out", default="fuzz-corpus",
                             metavar="DIR",
                             help="where shrunk reproducers + obs traces "
                                  "are written")
    fuzz_parser.add_argument("--core", choices=VALID_CORES,
                             default=CORE_REFERENCE,
                             help="simulation core the oracle machines run "
                                  "on (campaigns and replay)")
    fuzz_parser.add_argument("--replay", action="append", metavar="FILE",
                             help="replay one corpus case (repeatable)")
    fuzz_parser.add_argument("--corpus", action="append", metavar="DIR",
                             help="replay every case in a corpus directory "
                                  "(repeatable)")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="record failing scenarios full-size")
    fuzz_parser.add_argument("--shrink-budget", type=int, default=200,
                             help="max oracle evaluations per shrink")
    fuzz_parser.add_argument("--no-traces", action="store_true",
                             help="skip obs trace capture for failures")
    fuzz_parser.add_argument("--compare-every", type=int, default=1,
                             help="op period of the fault-counter cross-check")
    fuzz_parser.add_argument("--check-every", type=int, default=64,
                             help="op period of the full invariant sweep")
    fuzz_parser.add_argument("--no-paranoid", action="store_true",
                             help="disable per-trap invariant checking")
    fuzz_parser.add_argument("--no-ad-assist", action="store_true")
    fuzz_parser.add_argument("--no-cr3-cache", action="store_true")
    fuzz_parser.add_argument("--shard", default=None, metavar="K/N",
                             help="run only deterministic shard K of N")
    fuzz_parser.add_argument("--json", default=None, metavar="PATH",
                             help="write the JSON summary to PATH ('-' to "
                                  "print it)")
    fuzz_parser.add_argument("--quiet", action="store_true",
                             help="suppress per-case progress lines")

    bench_parser = sub.add_parser(
        "bench", help="run registered benchmarks; gate regressions against "
                      "a committed BENCH baseline")
    bench_parser.add_argument("targets", nargs="*",
                              help="benchmark target names (default: all "
                                   "discovered)")
    bench_parser.add_argument("--list", action="store_true",
                              help="list discovered targets and exit")
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI-smoke budgets: each target scales its "
                                   "op counts down (see BenchContext.ops)")
    bench_parser.add_argument("--ops", type=int, default=None,
                              help="pin every target's op budget")
    bench_parser.add_argument("--repeat", type=int, default=None,
                              help="override each target's timing repeats")
    bench_parser.add_argument("--bench-dir", default="benchmarks",
                              help="directory of bench_*.py files "
                                   "(default: benchmarks)")
    bench_parser.add_argument("--out-dir", default=".",
                              help="where BENCH_*.json reports are written "
                                   "(default: the current directory)")
    bench_parser.add_argument("--compare", default=None, metavar="BASELINE",
                              help="compare against this BENCH_*.json and "
                                   "exit 1 on gated regressions")
    bench_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write reports + comparisons as JSON to "
                                   "PATH ('-' to print)")
    bench_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-target progress lines")

    def add_lint_args(p, deep_default=False):
        p.add_argument(
            "paths", nargs="*",
            help="files/directories to lint (default: the repro package)")
        p.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text")
        p.add_argument("--list-rules", action="store_true",
                       help="print the rule catalogue and exit")
        p.add_argument("--baseline", default=None, metavar="FILE",
                       help="tolerate findings recorded in FILE; fail only "
                            "on new ones (the ratchet)")
        p.add_argument("--write-baseline", action="store_true",
                       help="record the current findings into --baseline "
                            "and exit 0")
        if not deep_default:
            p.add_argument("--deep", action="store_true",
                           help="also run the whole-program flow rules "
                                "(call-graph effects, taint, layering)")
        p.add_argument("--audit-suppressions", action="store_true",
                       help="list every suppression marker and fail on "
                            "unused ones")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore and do not write the lint result cache")
        p.add_argument("--cache-dir", default=".repro-cache",
                       help="lint result cache directory "
                            "(default: .repro-cache)")

    lint_parser = sub.add_parser(
        "lint", help="run the project's static sanitizer")
    add_lint_args(lint_parser)

    check_parser = sub.add_parser(
        "check", help="alias for `lint --deep`: the full static analyzer")
    add_lint_args(check_parser, deep_default=True)
    return parser


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "compare": cmd_compare,
    "figure5": cmd_figure5,
    "table6": cmd_table6,
    "tables": cmd_tables,
    "sweep": cmd_sweep,
    "policy-sweep": cmd_policy_sweep,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "fuzz": cmd_fuzz,
    "bench": cmd_bench,
    "lint": cmd_lint,
    "check": cmd_check,
}


def main(argv=None, out=None, err=None):
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args, out, err)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
