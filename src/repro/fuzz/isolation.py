"""The cross-VM isolation oracle: solo vs. consolidated, bit for bit.

The consolidation subsystem's correctness claim (``docs/multivm.md``)
is an *isolation* invariant: multiplexing N guests over one host
changes **when** each guest runs and what its traps cost, never what
its memory looks like. Each VM draws frames from its own fixed-size
partition (:class:`repro.host.memory.MeteredMemory`), so a guest's
VM-local frame numbers — and therefore its entire gVA -> gPA -> hPA
translation state — must be bit-identical to a solo machine built with
``host_mem_frames`` equal to the reservation.

This oracle checks exactly that, mechanically: it replays one scenario
once on a solo machine and once per VM on a consolidated
:class:`~repro.host.host.Host` (every VM runs the *same* scenario,
interleaved by the vCPU scheduler in ``step_ops``-op slices), then
asserts per VM

* **guest-visible fault counts** — guest page faults, minor/COW faults,
  protection violations, and skipped ops must match the solo run
  exactly;
* **guest leaf state** — every present leaf PTE (frame, writable,
  accessed, dirty) identical to solo;
* **composed translations** — the final gVA -> hPA map (guest leaf
  frame pushed through the VM's host page table) identical to solo.

Only trap *counts beyond the guest-visible set* and cycle costs may
differ — world switches are charged to VMs, TLBs may be flushed on
switch — and the oracle deliberately compares none of those.

Two scoping choices, both encoded in the oracle's defaults and
recorded in its :meth:`~IsolationOracle.options` so corpus replays are
faithful:

* **no overcommit** — ballooning revokes and re-backs frames, which
  legitimately reassigns hfns; isolation holds for translation state
  only while every VM stays within its reservation
  (``host_frames=0``);
* **VPID-tagged TLBs** (``vpid=True``) — without tags, every world
  switch flushes the incoming VM's TLBs, whose extra refill walks
  advance the VM's virtual time and legitimately shift its
  clock-windowed agile policy decisions relative to solo.

No policy-config neutering is needed: each consolidated VM runs on a
:class:`~repro.common.clock.VirtualClock`, so its switching-policy
intervals measure its *own* execution time and its decision stream —
switching bits, trap sites, host-backing order — replays the solo
machine's exactly. (An earlier design pinned ``write_interval``
effectively infinite instead; the virtual clock makes the stock policy
deterministic.)
"""

from repro.common.config import (
    EXTENDED_MODES,
    MODE_NATIVE,
    HostConfig,
    sandy_bridge_config,
)
from repro.common.errors import SimulationError
from repro.common.params import PAGE_SIZES
from repro.core.machine import System
from repro.fuzz.oracle import ScenarioRunner, Verdict
from repro.guest.process import GuestSegfault
from repro.host.host import Host
from repro.vmm.invariants import InvariantViolation

#: Guest ops interpreted per schedulable slice of each VM's program.
DEFAULT_STEP_OPS = 16


class IsolationOracle:
    """Replays one scenario solo and consolidated; cross-checks per VM.

    ``mode``/``page_size``/``config_overrides`` shape the per-VM
    machine exactly as :func:`repro.fuzz.oracle.build_system` would;
    ``vms``, ``vm_frames``, ``quantum_cycles`` and ``vpid`` shape the
    host. ``paranoid`` defaults off (the differential oracle already
    sweeps invariants; here it would run N+1 full machines' worth).
    """

    def __init__(self, mode="agile", vms=2, page_size="4K", paranoid=False,
                 step_ops=DEFAULT_STEP_OPS, vm_frames=1 << 16,
                 quantum_cycles=5_000, vpid=True, **config_overrides):
        if vms < 1:
            raise ValueError("need at least one VM, got %d" % (vms,))
        self.mode = mode
        self.vms = vms
        self.page_size = page_size
        self.paranoid = paranoid
        self.step_ops = max(1, step_ops)
        self.vm_frames = vm_frames
        self.quantum_cycles = quantum_cycles
        self.vpid = vpid
        self.config_overrides = dict(config_overrides)

    # -- serialization (corpus cases) -----------------------------------------

    def options(self):
        """JSON-safe constructor arguments, for reproducer files.

        ``kind`` routes :func:`repro.fuzz.corpus.replay_case` back to
        this class instead of the differential oracle.
        """
        data = {"kind": "isolation", "mode": self.mode, "vms": self.vms,
                "page_size": str(self.page_size), "paranoid": self.paranoid,
                "step_ops": self.step_ops, "vm_frames": self.vm_frames,
                "quantum_cycles": self.quantum_cycles, "vpid": self.vpid}
        data.update(self.config_overrides)
        return data

    @classmethod
    def from_options(cls, data):
        data = dict(data)
        data.pop("kind", None)
        return cls(**data)

    # -- machine construction -------------------------------------------------

    def _machine_config(self):
        if self.mode not in EXTENDED_MODES:
            raise ValueError("unknown mode %r (have: %s)"
                             % (self.mode, ", ".join(EXTENDED_MODES)))
        page_size = self.page_size
        if isinstance(page_size, str):
            if page_size not in PAGE_SIZES:
                raise ValueError(
                    "unknown page size %r (have: %s)"
                    % (page_size, ", ".join(sorted(PAGE_SIZES))))
            page_size = PAGE_SIZES[page_size]
        overrides = dict(self.config_overrides)
        if self.mode != MODE_NATIVE:
            # The solo baseline must share the consolidated VM's exact
            # allocator geometry: host RAM sized to the reservation.
            overrides.setdefault("host_mem_frames", self.vm_frames)
        return sandy_bridge_config(mode=self.mode, page_size=page_size,
                                   paranoid=self.paranoid, **overrides)

    def _host_config(self):
        return HostConfig(vms=self.vms, host_frames=0,
                          vm_frames=self.vm_frames,
                          quantum_cycles=self.quantum_cycles,
                          vpid=self.vpid)

    # -- state extraction -----------------------------------------------------

    @staticmethod
    def _translations(runner):
        """The composed gVA -> hPA frame map, per live process."""
        vmm = runner.system.vmm
        maps = []
        for proc in runner.procs:
            frames = {}
            for va, pte, _level in proc.page_table.iter_leaves():
                if pte.present:
                    frames[va] = (pte.frame if vmm is None
                                  else vmm.hostpt.translate(pte.frame))
            maps.append(frames)
        return maps

    @classmethod
    def _state_of(cls, runner):
        return {"faults": runner.fault_counters(),
                "leaves": runner.leaf_snapshot(),
                "translations": cls._translations(runner)}

    # -- running --------------------------------------------------------------

    def run(self, scenario):
        """Replay ``scenario`` solo and on every consolidated VM."""
        config = self._machine_config()
        try:
            solo = ScenarioRunner(System(config))
            solo.run(scenario)
            solo_state = self._state_of(solo)
        except (InvariantViolation, SimulationError, GuestSegfault) as exc:
            return Verdict.failed(
                "isolation-solo", "%s: %s" % (type(exc).__name__, exc),
                modes=(self.mode,))

        try:
            host = Host(host_config=self._host_config(),
                        machine_config=config)
            runners = [ScenarioRunner(vm.system) for vm in host.vms]
            host.load([self._program(runner, scenario)
                       for runner in runners])
            host.run()
        except (InvariantViolation, SimulationError, GuestSegfault) as exc:
            return Verdict.failed(
                "isolation-consolidated",
                "%s: %s" % (type(exc).__name__, exc), modes=(self.mode,))

        for vm_id, runner in enumerate(runners):
            verdict = self._compare(vm_id, solo_state, self._state_of(runner))
            if verdict is not None:
                return verdict
        return Verdict.passed()

    def _program(self, runner, scenario):
        """A per-VM program factory interpreting the scenario in slices."""
        step_ops = self.step_ops
        ops = scenario.ops

        def factory(_api):
            def interpret():
                for index, op in enumerate(ops):
                    runner.apply(op)
                    if (index + 1) % step_ops == 0:
                        yield
            return interpret()
        return factory

    def _compare(self, vm_id, solo, consolidated):
        """One VM against the solo baseline; failed Verdict or None."""
        modes = (self.mode, "%s@vm%d" % (self.mode, vm_id))
        if consolidated["faults"] != solo["faults"]:
            diffs = {key: (solo["faults"][key], consolidated["faults"][key])
                     for key in solo["faults"]
                     if solo["faults"][key] != consolidated["faults"][key]}
            return Verdict.failed(
                "isolation-faults",
                "vm%d guest-visible fault accounting diverged from solo: %s"
                % (vm_id, diffs), modes=modes,
                context={"expected": solo["faults"],
                         "actual": consolidated["faults"]})
        for check, key in (("isolation-leaves", "leaves"),
                           ("isolation-translation", "translations")):
            want, have = solo[key], consolidated[key]
            if len(want) != len(have):
                return Verdict.failed(
                    check, "vm%d process count diverged: solo %d vs %d"
                    % (vm_id, len(want), len(have)), modes=modes)
            for slot, (w, h) in enumerate(zip(want, have)):
                if w != h:
                    diverged = sorted(
                        va for va in set(w) | set(h)
                        if w.get(va) != h.get(va))[:4]
                    return Verdict.failed(
                        check,
                        "vm%d proc slot %d diverged from solo at %s"
                        % (vm_id, slot, [hex(va) for va in diverged]),
                        modes=modes,
                        context={"vas": [hex(va) for va in diverged]})
        return None
