"""Seeded, serializable guest-history generator for differential fuzzing.

A *scenario* is a flat program of guest operations — mmap/munmap/
mprotect, demand touches, fork+COW, exec, context switches, reclaim
pressure, dedup scans, policy-epoch settles — expressed entirely in
terms of *slot indices* rather than PIDs or virtual addresses. The
interpreter (:class:`repro.fuzz.oracle.ScenarioRunner`) resolves every
index modulo the live process/region count, which makes every op
applicable in every state: any subsequence of a scenario is itself a
valid scenario. That totality is what lets the delta-debugger
(:mod:`repro.fuzz.shrink`) drop ops freely while minimizing a failure.

Generation is pure ``random.Random(seed)``: the same (seed, profile,
ops) triple always yields the identical op list, on any platform, so a
scenario can be named by those three values alone and regenerated
anywhere. Scenarios also serialize to JSON for the reproducer corpus.

Profiles bias the op mix toward the paper's pain points: ``churn``
produces the leaf-heavy page-table update storms of Figure 2, ``bimodal``
alternates write bursts with idle settles to force the agile policy
back and forth across the shadow/nested boundary, ``fork_cow`` stresses
the fork write-protect storm, ``ctx`` hammers CR3 writes (the Section IV
gCR3-cache case), and ``reclaim`` ages and evicts under memory pressure.
"""

import json
import random
from dataclasses import dataclass, field, replace

SCENARIO_SCHEMA = 1

# Registry caps shared with the interpreter: the generator never emits a
# spawn/fork/mmap that its own model says would be skipped, but the
# interpreter re-checks (shrinking may remove the ops that made room).
MAX_PROCS = 6
MAX_REGIONS = 12
MAX_REGION_PAGES = 64
MAX_BURST = 48

OP_KINDS = (
    "spawn", "exit", "exec", "switch", "mmap", "munmap", "protect",
    "touch", "burst", "fork", "dedup", "reclaim", "settle", "flush",
)

_REGION_SIZES = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


@dataclass(frozen=True)
class Profile:
    """An op-mix: weights per op kind plus parameter biases."""

    name: str
    weights: dict
    write_bias: float = 0.5  # probability a touch/burst is a write
    populate_bias: float = 0.3  # probability an mmap is eager
    ro_bias: float = 0.15  # probability an mmap region is read-only
    max_region_pages: int = MAX_REGION_PAGES

    def weight(self, kind):
        return self.weights.get(kind, 0)


PROFILES = {
    # Balanced traffic over every op kind.
    "default": Profile("default", {
        "spawn": 2, "exit": 1, "exec": 1, "switch": 4, "mmap": 8,
        "munmap": 4, "protect": 3, "touch": 30, "burst": 8, "fork": 2,
        "dedup": 2, "reclaim": 2, "settle": 3, "flush": 1,
    }),
    # Leaf-heavy PT churn: rapid map/unmap/populate cycling (Figure 2's
    # "dynamic parts of the address space").
    "churn": Profile("churn", {
        "mmap": 20, "munmap": 14, "touch": 30, "burst": 6, "protect": 6,
        "switch": 2, "settle": 2, "reclaim": 2, "spawn": 1, "exec": 1,
    }, populate_bias=0.6, max_region_pages=32),
    # Bimodal update bursts: long write storms then idle settles, the
    # pattern that drives agile paging's shadow<->nested switching.
    "bimodal": Profile("bimodal", {
        "burst": 24, "settle": 10, "touch": 10, "mmap": 6, "munmap": 3,
        "switch": 3, "protect": 2, "reclaim": 1,
    }, write_bias=0.8, populate_bias=0.5),
    # fork()+COW storms: write-protect sweeps and COW breaks.
    "fork_cow": Profile("fork_cow", {
        "fork": 8, "exit": 6, "exec": 2, "touch": 28, "burst": 6,
        "mmap": 6, "munmap": 2, "switch": 4, "dedup": 3, "settle": 2,
    }, write_bias=0.7, populate_bias=0.6, max_region_pages=16),
    # Context-switch-heavy: many processes, constant CR3 traffic
    # (exercises the Section IV gCR3 cache and per-ASID shadow state).
    "ctx": Profile("ctx", {
        "spawn": 6, "switch": 30, "touch": 20, "mmap": 6, "burst": 4,
        "exit": 2, "fork": 2, "settle": 2, "flush": 2,
    }, max_region_pages=16),
    # Memory pressure: aging sweeps, evictions, refaults.
    "reclaim": Profile("reclaim", {
        "reclaim": 14, "touch": 26, "burst": 6, "mmap": 10, "munmap": 4,
        "settle": 3, "switch": 3, "dedup": 2,
    }, populate_bias=0.7, max_region_pages=32),
}


@dataclass
class Scenario:
    """One generated guest history, serializable and regenerable."""

    seed: int
    profile: str
    ops: list = field(default_factory=list)
    schema: int = SCENARIO_SCHEMA

    @property
    def name(self):
        return "s%d-%s-%d" % (self.seed, self.profile, len(self.ops))

    def with_ops(self, ops):
        """A copy holding ``ops`` (used by the shrinker)."""
        return replace(self, ops=list(ops))

    def to_dict(self):
        return {"schema": self.schema, "seed": self.seed,
                "profile": self.profile, "ops": list(self.ops)}

    @classmethod
    def from_dict(cls, data):
        if data.get("schema") != SCENARIO_SCHEMA:
            raise ValueError("unsupported scenario schema %r"
                             % (data.get("schema"),))
        return cls(seed=data["seed"], profile=data["profile"],
                   ops=list(data["ops"]))

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))


class _Model:
    """The generator's mirror of the interpreter's registry.

    Tracks only what generation needs: which slots exist, how big each
    region is, and who owns it — enough to bias ops toward applicable
    targets. The interpreter re-derives the same evolution from the op
    list itself, so the two never need to communicate.
    """

    def __init__(self):
        self._next_proc = 0
        self.procs = [self._fresh()]
        self.regions = []  # dicts: proc (token), pages, writable

    def _fresh(self):
        self._next_proc += 1
        return self._next_proc

    def proc_at(self, index):
        return self.procs[index % len(self.procs)]

    def spawn(self):
        if len(self.procs) < MAX_PROCS:
            self.procs.append(self._fresh())

    def exit(self, index):
        if len(self.procs) <= 1:
            return
        proc = self.procs.pop(index % len(self.procs))
        self.regions = [r for r in self.regions if r["proc"] != proc]

    def exec(self, index):
        slot = index % len(self.procs)
        old, new = self.procs[slot], self._fresh()
        self.procs[slot] = new
        self.regions = [r for r in self.regions if r["proc"] != old]

    def fork(self, index):
        if len(self.procs) >= MAX_PROCS:
            return
        parent = self.procs[index % len(self.procs)]
        child = self._fresh()
        self.procs.append(child)
        for region in [r for r in self.regions if r["proc"] == parent]:
            self.regions.append(dict(region, proc=child))

    def mmap(self, index, pages, writable):
        if len(self.regions) >= MAX_REGIONS:
            return
        self.regions.append({"proc": self.proc_at(index), "pages": pages,
                             "writable": writable})

    def munmap(self, index):
        if self.regions:
            self.regions.pop(index % len(self.regions))

    def protect(self, index, writable):
        if self.regions:
            self.regions[index % len(self.regions)]["writable"] = writable

    def region_at(self, index):
        return self.regions[index % len(self.regions)]


class ScenarioGenerator:
    """Emits :class:`Scenario` programs for one profile.

    Stateless across calls: ``generate(seed, ops)`` is a pure function
    of its arguments, which is what lets fuzz campaigns name cases by
    (seed, profile, ops) and regenerate them in worker processes.
    """

    def __init__(self, profile="default"):
        if isinstance(profile, Profile):
            self.profile = profile
        else:
            if profile not in PROFILES:
                raise ValueError("unknown profile %r (have: %s)"
                                 % (profile, ", ".join(sorted(PROFILES))))
            self.profile = PROFILES[profile]

    def generate(self, seed, ops):
        rng = random.Random(seed)
        model = _Model()
        program = [self._emit(rng, model) for _ in range(ops)]
        return Scenario(seed=seed, profile=self.profile.name, ops=program)

    # -- internals ------------------------------------------------------------

    def _emit(self, rng, model):
        kind = self._pick_kind(rng, model)
        build = getattr(self, "_op_" + kind)
        return build(rng, model)

    def _pick_kind(self, rng, model):
        choices = []
        total = 0
        for kind in OP_KINDS:
            weight = self.profile.weight(kind)
            if weight <= 0 or not self._applicable(kind, model):
                continue
            total += weight
            choices.append((total, kind))
        if not choices:  # degenerate profile: fall back to touches
            return "mmap" if not model.regions else "touch"
        point = rng.random() * total
        for bound, kind in choices:
            if point < bound:
                return kind
        return choices[-1][1]

    @staticmethod
    def _applicable(kind, model):
        if kind in ("spawn", "fork"):
            return len(model.procs) < MAX_PROCS
        if kind == "exit":
            return len(model.procs) > 1
        if kind == "mmap":
            return len(model.regions) < MAX_REGIONS
        if kind in ("munmap", "protect", "touch", "burst", "dedup"):
            return bool(model.regions)
        return True

    # Op builders: each returns the JSON op and advances the model.

    def _op_spawn(self, rng, model):
        model.spawn()
        return {"op": "spawn"}

    def _op_exit(self, rng, model):
        index = rng.randrange(len(model.procs))
        model.exit(index)
        return {"op": "exit", "proc": index}

    def _op_exec(self, rng, model):
        index = rng.randrange(len(model.procs))
        model.exec(index)
        return {"op": "exec", "proc": index}

    def _op_switch(self, rng, model):
        return {"op": "switch", "proc": rng.randrange(len(model.procs))}

    def _op_mmap(self, rng, model):
        index = rng.randrange(len(model.procs))
        limit = self.profile.max_region_pages
        pages = rng.choice([s for s in _REGION_SIZES if s <= limit])
        writable = rng.random() >= self.profile.ro_bias
        populate = rng.random() < self.profile.populate_bias
        model.mmap(index, pages, writable)
        return {"op": "mmap", "proc": index, "pages": pages,
                "writable": writable, "populate": populate}

    def _op_munmap(self, rng, model):
        index = rng.randrange(len(model.regions))
        model.munmap(index)
        return {"op": "munmap", "region": index}

    def _op_protect(self, rng, model):
        index = rng.randrange(len(model.regions))
        writable = rng.random() < 0.5
        model.protect(index, writable)
        return {"op": "protect", "region": index, "writable": writable}

    def _op_touch(self, rng, model):
        index = rng.randrange(len(model.regions))
        region = model.region_at(index)
        return {"op": "touch", "region": index,
                "page": rng.randrange(region["pages"]),
                "write": rng.random() < self.profile.write_bias}

    def _op_burst(self, rng, model):
        index = rng.randrange(len(model.regions))
        region = model.region_at(index)
        count = min(MAX_BURST, 1 + rng.randrange(2 * region["pages"]))
        return {"op": "burst", "region": index,
                "start": rng.randrange(region["pages"]), "count": count,
                "write": rng.random() < self.profile.write_bias}

    def _op_fork(self, rng, model):
        index = rng.randrange(len(model.procs))
        model.fork(index)
        return {"op": "fork", "proc": index}

    def _op_dedup(self, rng, model):
        index = rng.randrange(len(model.regions))
        return {"op": "dedup", "region": index,
                "group": rng.choice((2, 2, 3, 4))}

    def _op_reclaim(self, rng, model):
        return {"op": "reclaim", "proc": rng.randrange(len(model.procs)),
                "pages": rng.choice((1, 2, 4, 8))}

    def _op_settle(self, rng, model):
        return {"op": "settle", "intervals": rng.choice((1, 1, 2, 3))}

    def _op_flush(self, rng, model):
        return {"op": "flush", "proc": rng.randrange(len(model.procs))}
