"""Delta-debugging: minimize a failing scenario to its essential ops.

Classic ddmin (Zeller & Hildebrandt) over the scenario's op list, plus a
final one-at-a-time polish pass. It works because scenario ops are
*total* — every slot index resolves modulo the live count, so any
subsequence of a valid scenario is itself valid (see scenario.py) — and
because the oracle is deterministic, so "still fails" is a pure
predicate of the op list.

The predicate receives a candidate :class:`Scenario` and returns True
when the failure still reproduces. Each oracle run replays the
candidate on every machine, so evaluations are the cost driver; the
``budget`` caps them and the shrinker returns its best-so-far when the
budget runs out.
"""


def _split(items, chunks):
    """Partition ``items`` into ``chunks`` contiguous, non-empty slices."""
    chunks = min(chunks, len(items))
    size, remainder = divmod(len(items), chunks)
    out = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < remainder else 0)
        out.append(items[start:end])
        start = end
    return out


def ddmin(items, failing, budget=400):
    """Minimal failing subsequence of ``items``; at most ``budget`` tests.

    ``failing(subsequence)`` must return True when the subsequence still
    triggers the failure. ``items`` itself is assumed failing (callers
    have already observed that); it is returned unchanged if the budget
    is too small to learn anything.
    """
    spent = [0]

    def test(candidate):
        spent[0] += 1
        return failing(candidate)

    current = list(items)
    granularity = 2
    while len(current) >= 2 and spent[0] < budget:
        chunks = _split(current, granularity)
        reduced = False
        for chunk in chunks:
            if spent[0] >= budget:
                return current
            if test(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced and granularity > 2:
            for skip in range(len(chunks)):
                if spent[0] >= budget:
                    return current
                complement = [item for index, chunk in enumerate(chunks)
                              if index != skip for item in chunk]
                if test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    # One-at-a-time polish: ddmin can stall at a 1-minimal *chunking*;
    # this pass guarantees no single op is removable.
    index = 0
    while index < len(current) and spent[0] < budget:
        candidate = current[:index] + current[index + 1:]
        if candidate and test(candidate):
            current = candidate
        else:
            index += 1
    return current


def shrink(scenario, predicate, budget=400):
    """Minimize ``scenario`` under ``predicate`` (True = still failing).

    Returns ``(minimal_scenario, evaluations)``. The result is
    1-minimal with respect to op removal when the budget sufficed, and
    best-effort otherwise.
    """
    spent = [0]

    def failing(ops):
        spent[0] += 1
        return predicate(scenario.with_ops(ops))

    minimal = ddmin(list(scenario.ops), failing, budget=budget)
    return scenario.with_ops(minimal), spent[0]
