"""The differential oracle: replay one scenario on N machines, compare.

The paper's central correctness claim (Sections III, Tables I-II) is
that nested, shadow, and agile paging are *behaviourally equivalent*
virtualizations of the same guest: every gVA translates to the same
frame, the guest-visible page tables (including A/D bits at the leaves)
evolve identically, and only the VMtrap sites and reference counts
differ — and those differ in provably ordered ways (agile traps at most
as often as pure shadow at every shadow-specific trap site).

This module checks exactly that, mechanically. A scenario's op stream
drives one :class:`ScenarioRunner` per translation mode in lockstep; the
oracle then cross-checks

* **fault counters** after every op — guest page faults, minor/COW
  faults, and protection violations must match exactly across modes;
* **guest leaf state** at the end — every present leaf PTE (frame,
  writable, accessed, dirty) must be identical across modes, with one
  documented relaxation: under agile + hardware A/D assist the *guest*
  dirty bit may lag (the shadow leaf carries it until the next sync),
  so assisted machines must show a subset of the reference dirty set;
* **trap-count ordering** — native traps never; nested traps only for
  host faults; shadow never host-faults; agile's shadow-site traps
  (pt_write, invlpg, dirty_sync, guest_fault_exit) never exceed pure
  shadow's, and agile's CR3 traps plus gCR3-cache hits equal shadow's
  CR3 traps exactly (Section IV);
* **the PR 1 invariant suite** — every machine runs paranoid, so scoped
  checks fire after every trap; the oracle adds periodic and final
  full sweeps;
* **end-to-end translation** — a final probe switches to each process
  and reads every mapped page, asserting the returned host frame equals
  the guest-frame composed through that machine's host table.

Anything that disagrees produces a :class:`Verdict` naming the check,
the op index, and the modes involved — the input to the shrinker.
"""

from repro.common.config import (
    EXTENDED_MODES,
    MODE_AGILE,
    sandy_bridge_config,
)
from repro.common.errors import SimulationError
from repro.common.params import PAGE_SIZES
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.guest.kernel import GuestProtectionError
from repro.guest.process import GuestSegfault
from repro.vmm.invariants import InvariantViolation
from repro.vmm.traps import (
    CONTEXT_SWITCH,
    CR3_CACHE_HIT,
    DIRTY_SYNC,
    GUEST_FAULT_EXIT,
    HOST_FAULT,
    INVLPG,
    PT_WRITE,
)

DEFAULT_MODES = ("native", "nested", "shadow", "agile")

# Registry caps: identical to the generator's (see scenario.py), but the
# interpreter re-checks every one so arbitrary op subsequences stay valid.
MAX_PROCS = 6
MAX_REGIONS = 12

# Big-granule clamps: a 2M guest page costs 512 frames, so region and
# code sizes shrink (deterministically, per page size — every mode of a
# given page size sees the same clamp) to fit guest-physical memory.
_CODE_PAGES_SMALL = 4
_CODE_PAGES_BIG = 2
_PAGES_CAP_BIG = 4

# Shadow-site trap kinds where agile must trap at most as often as pure
# shadow (it only mediates the subtree still in shadow mode).
AGILE_LE_SHADOW_KINDS = (
    PT_WRITE, INVLPG, DIRTY_SYNC, CONTEXT_SWITCH, GUEST_FAULT_EXIT)


def build_system(mode, page_size="4K", paranoid=True, **overrides):
    """One machine for the oracle: a Table III config, paranoid by default."""
    if isinstance(page_size, str):
        if page_size not in PAGE_SIZES:
            raise ValueError("unknown page size %r (have: %s)"
                             % (page_size, ", ".join(sorted(PAGE_SIZES))))
        page_size = PAGE_SIZES[page_size]
    if mode not in EXTENDED_MODES:
        raise ValueError("unknown mode %r (have: %s)"
                         % (mode, ", ".join(EXTENDED_MODES)))
    config = sandy_bridge_config(mode=mode, page_size=page_size,
                                 paranoid=paranoid, **overrides)
    return System(config)


class _Region:
    """One registry entry: a live mmap'd region of one live process."""

    __slots__ = ("proc", "base", "pages", "writable")

    def __init__(self, proc, base, pages, writable):
        self.proc = proc
        self.base = base
        self.pages = pages
        self.writable = writable


class ScenarioRunner:
    """Interprets scenario ops against one :class:`System`.

    Every op is *total*: slot indices resolve modulo the live count, and
    ops whose preconditions fail (spawn at the proc cap, munmap with no
    regions) are counted as skips rather than errors. Given the same op
    stream, every runner — whatever its translation mode — performs the
    identical sequence of kernel calls, which is what makes the final
    guest state comparable bit-for-bit.
    """

    def __init__(self, system):
        self.system = system
        self.api = MachineAPI(system)
        self.kernel = system.kernel
        self.granule = system.config.page_size.bytes
        self._small = self.granule == 4096
        self.applied = 0
        self.skipped = 0
        self.prot_violations = 0
        self.procs = [self.api.spawn(code_pages=self._code_pages())]
        self.regions = []

    # -- sizing ---------------------------------------------------------------

    def _code_pages(self):
        return _CODE_PAGES_SMALL if self._small else _CODE_PAGES_BIG

    def _clamp_pages(self, pages):
        pages = max(1, pages)
        if self._small:
            return pages
        return (pages - 1) % _PAGES_CAP_BIG + 1

    # -- the op interpreter ---------------------------------------------------

    def apply(self, op):
        """Apply one op; returns True if applied, False if skipped."""
        handler = getattr(self, "_op_" + op["op"], None)
        if handler is None:
            raise SimulationError("unknown scenario op %r" % (op["op"],))
        if handler(op):
            self.applied += 1
            return True
        self.skipped += 1
        return False

    def run(self, scenario):
        for op in scenario.ops:
            self.apply(op)

    def _op_spawn(self, op):
        if len(self.procs) >= MAX_PROCS:
            return False
        self.procs.append(self.api.spawn(code_pages=self._code_pages()))
        return True

    def _op_exit(self, op):
        if len(self.procs) <= 1:
            return False
        proc = self.procs.pop(op["proc"] % len(self.procs))
        self.regions = [r for r in self.regions if r.proc is not proc]
        self.api.exit(proc)
        return True

    def _op_exec(self, op):
        slot = op["proc"] % len(self.procs)
        old = self.procs[slot]
        self.regions = [r for r in self.regions if r.proc is not old]
        self.api.exit(old)
        self.procs[slot] = self.api.spawn(code_pages=self._code_pages())
        return True

    def _op_switch(self, op):
        self.api.switch_to(self.procs[op["proc"] % len(self.procs)])
        return True

    def _op_mmap(self, op):
        if len(self.regions) >= MAX_REGIONS:
            return False
        proc = self.procs[op["proc"] % len(self.procs)]
        pages = self._clamp_pages(op["pages"])
        base = self.api.mmap(pages * self.granule, writable=op["writable"],
                             populate=op["populate"], proc=proc)
        self.regions.append(_Region(proc, base, pages, op["writable"]))
        return True

    def _op_munmap(self, op):
        if not self.regions:
            return False
        region = self.regions.pop(op["region"] % len(self.regions))
        self.api.munmap(region.base, region.pages * self.granule,
                        proc=region.proc)
        return True

    def _op_protect(self, op):
        if not self.regions:
            return False
        region = self.regions[op["region"] % len(self.regions)]
        self.api.mprotect(region.base, region.pages * self.granule,
                          op["writable"], proc=region.proc)
        region.writable = op["writable"]
        return True

    def _op_touch(self, op):
        if not self.regions:
            return False
        region = self.regions[op["region"] % len(self.regions)]
        self._access(region, op["page"], op["write"])
        return True

    def _op_burst(self, op):
        if not self.regions:
            return False
        region = self.regions[op["region"] % len(self.regions)]
        for step in range(min(op["count"], 256)):
            self._access(region, op["start"] + step, op["write"])
        return True

    def _op_fork(self, op):
        if len(self.procs) >= MAX_PROCS:
            return False
        parent = self.procs[op["proc"] % len(self.procs)]
        child = self.api.fork(parent)
        self.procs.append(child)
        for region in [r for r in self.regions if r.proc is parent]:
            self.regions.append(
                _Region(child, region.base, region.pages, region.writable))
        return True

    def _op_dedup(self, op):
        if not self.regions:
            return False
        region = self.regions[op["region"] % len(self.regions)]
        self.api.dedup(region.base, region.pages * self.granule,
                       group=max(2, op.get("group", 2)), proc=region.proc)
        return True

    def _op_reclaim(self, op):
        proc = self.procs[op["proc"] % len(self.procs)]
        # precise_aging: follow each accessed-bit clear with an INVLPG so
        # aging is TLB-exact and accessed bits stay identical across modes.
        self.api.reclaim(max(1, op["pages"]), proc=proc, precise_aging=True)
        return True

    def _op_settle(self, op):
        self.api.settle(max(1, op["intervals"]))
        return True

    def _op_flush(self, op):
        self.kernel.platform.flush_tlb(self.procs[op["proc"] % len(self.procs)])
        return True

    def _access(self, region, page, write):
        if self.kernel.current is not region.proc:
            self.api.switch_to(region.proc)
        va = region.base + (page % region.pages) * self.granule
        try:
            self.api.access(va, is_write=write)
        except GuestProtectionError:
            # Deterministic across modes: same VMA protections, same op.
            self.prot_violations += 1

    # -- state the oracle compares --------------------------------------------

    def fault_counters(self):
        """Cheap per-op comparable state: guest-side fault accounting."""
        return {
            "guest_faults": self.system.guest_fault_count,
            "minor_faults": sum(p.minor_faults for p in self.procs),
            "cow_faults": sum(p.cow_faults for p in self.procs),
            "prot_violations": self.prot_violations,
            "skipped_ops": self.skipped,
        }

    def leaf_snapshot(self):
        """Guest-visible leaf PTE state per live process, in slot order.

        Only *leaf* entries are compared: interior accessed bits
        legitimately diverge (a nested walk sets them on every level, a
        shadow fill does not touch interior guest entries).
        """
        snapshot = []
        for proc in self.procs:
            leaves = {}
            for va, pte, _level in proc.page_table.iter_leaves():
                if pte.present:
                    leaves[va] = (pte.frame, pte.writable,
                                  pte.accessed, pte.dirty)
            snapshot.append(leaves)
        return snapshot

    def trap_counts(self):
        vmm = self.system.vmm
        return dict(vmm.traps.counts) if vmm is not None else {}

    def check_all(self):
        """Full paranoid invariant sweep of this machine, if enabled."""
        self.system.check_invariants()

    @property
    def dirty_may_lag(self):
        """Under agile + hw A/D assist the guest dirty bit can trail the
        shadow leaf's until the next sync (Section IV)."""
        config = self.system.config
        return config.mode == MODE_AGILE and config.hw_ad_assist


class Verdict:
    """The oracle's judgement on one scenario run."""

    def __init__(self, ok, check=None, op_index=None, modes=(), detail=None,
                 context=None):
        self.ok = ok
        self.check = check
        self.op_index = op_index
        self.modes = tuple(modes)
        self.detail = detail
        self.context = dict(context) if context else {}

    @classmethod
    def passed(cls):
        return cls(ok=True)

    @classmethod
    def failed(cls, check, detail, op_index=None, modes=(), context=None):
        return cls(ok=False, check=check, op_index=op_index, modes=modes,
                   detail=detail, context=context)

    def __bool__(self):
        return self.ok

    def __repr__(self):
        if self.ok:
            return "Verdict(ok)"
        return "Verdict(FAIL %s @op %s, modes=%s: %s)" % (
            self.check, self.op_index, ",".join(self.modes), self.detail)

    def to_dict(self):
        data = {"ok": self.ok}
        if not self.ok:
            data.update({"check": self.check, "op_index": self.op_index,
                         "modes": list(self.modes), "detail": self.detail})
            if self.context:
                data["context"] = self.context
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(ok=data["ok"], check=data.get("check"),
                   op_index=data.get("op_index"),
                   modes=data.get("modes", ()), detail=data.get("detail"),
                   context=data.get("context"))


class DifferentialOracle:
    """Runs one scenario on several machines in lockstep and cross-checks.

    ``modes[0]`` is the reference machine (keep ``native`` there: it has
    exact A/D semantics and no VMM). ``compare_every`` is the op period
    of the cheap fault-counter cross-check; ``full_check_every`` the op
    period of the full paranoid invariant sweep (per machine).
    ``config_overrides`` reach every machine's ``MachineConfig`` — e.g.
    ``hw_ad_assist=False`` fuzzes the no-assist design point.
    """

    def __init__(self, modes=DEFAULT_MODES, page_size="4K", paranoid=True,
                 compare_every=1, full_check_every=64, **config_overrides):
        if not modes:
            raise ValueError("need at least one mode")
        for mode in modes:
            if mode not in EXTENDED_MODES:
                raise ValueError("unknown mode %r (have: %s)"
                                 % (mode, ", ".join(EXTENDED_MODES)))
        self.modes = tuple(modes)
        self.page_size = page_size
        self.paranoid = paranoid
        self.compare_every = compare_every
        self.full_check_every = full_check_every
        self.config_overrides = dict(config_overrides)

    def options(self):
        """JSON-safe constructor arguments, for reproducer files."""
        data = {"modes": list(self.modes), "page_size": str(self.page_size),
                "paranoid": self.paranoid,
                "compare_every": self.compare_every,
                "full_check_every": self.full_check_every}
        data.update(self.config_overrides)
        return data

    @classmethod
    def from_options(cls, data):
        data = dict(data)
        modes = tuple(data.pop("modes", DEFAULT_MODES))
        return cls(modes=modes, **data)

    # -- running --------------------------------------------------------------

    def run(self, scenario):
        """Replay ``scenario`` on every mode; returns a :class:`Verdict`."""
        try:
            runners = [(mode, ScenarioRunner(build_system(
                mode, self.page_size, paranoid=self.paranoid,
                **self.config_overrides))) for mode in self.modes]
        except SimulationError as exc:
            return Verdict.failed("setup", str(exc), modes=self.modes)

        for index, op in enumerate(scenario.ops):
            verdict = self._step(runners, index, op)
            if verdict is not None:
                return verdict

        last = len(scenario.ops) - 1 if scenario.ops else None
        for stage in (self._sweep_invariants, self._compare_counters,
                      self._compare_snapshots, self._check_trap_relations,
                      self._probe):
            verdict = stage(runners, last)
            if verdict is not None:
                return verdict
        return Verdict.passed()

    def _step(self, runners, index, op):
        for mode, runner in runners:
            try:
                runner.apply(op)
            except InvariantViolation as exc:
                return Verdict.failed("invariant", str(exc), op_index=index,
                                      modes=(mode,), context=exc.to_dict())
            except (SimulationError, GuestSegfault) as exc:
                return Verdict.failed(
                    "exception", "%s: %s" % (type(exc).__name__, exc),
                    op_index=index, modes=(mode,))
        if self.compare_every and (index + 1) % self.compare_every == 0:
            verdict = self._compare_counters(runners, index)
            if verdict is not None:
                return verdict
        if (self.paranoid and self.full_check_every
                and (index + 1) % self.full_check_every == 0):
            return self._sweep_invariants(runners, index)
        return None

    # -- checks (each returns a failed Verdict or None) -----------------------

    def _sweep_invariants(self, runners, index):
        for mode, runner in runners:
            try:
                runner.check_all()
            except InvariantViolation as exc:
                return Verdict.failed("invariant", str(exc), op_index=index,
                                      modes=(mode,), context=exc.to_dict())
        return None

    def _compare_counters(self, runners, index):
        _ref_mode, ref = runners[0]
        expected = ref.fault_counters()
        for mode, runner in runners[1:]:
            actual = runner.fault_counters()
            if actual != expected:
                diffs = {key: (expected[key], actual[key])
                         for key in expected if expected[key] != actual[key]}
                return Verdict.failed(
                    "fault-counters",
                    "fault accounting diverged: %s" % (diffs,),
                    op_index=index, modes=(runners[0][0], mode),
                    context={"expected": expected, "actual": actual})
        return None

    def _compare_snapshots(self, runners, index):
        ref_mode, ref = runners[0]
        reference = ref.leaf_snapshot()
        for mode, runner in runners[1:]:
            snapshot = runner.leaf_snapshot()
            if len(snapshot) != len(reference):
                return Verdict.failed(
                    "leaf-state", "process count diverged: %d vs %d"
                    % (len(reference), len(snapshot)),
                    op_index=index, modes=(ref_mode, mode))
            lag_ok = runner.dirty_may_lag
            for slot, (want, have) in enumerate(zip(reference, snapshot)):
                verdict = self._compare_proc_leaves(
                    slot, want, have, lag_ok, (ref_mode, mode), index)
                if verdict is not None:
                    return verdict
        return None

    @staticmethod
    def _compare_proc_leaves(slot, want, have, lag_ok, modes, index):
        if set(want) != set(have):
            missing = sorted(set(want) - set(have))[:4]
            extra = sorted(set(have) - set(want))[:4]
            return Verdict.failed(
                "leaf-state",
                "proc slot %d mapped-set diverged (missing=%s extra=%s)"
                % (slot, [hex(v) for v in missing], [hex(v) for v in extra]),
                op_index=index, modes=modes)
        for va in sorted(want):
            w_frame, w_writable, w_accessed, w_dirty = want[va]
            h_frame, h_writable, h_accessed, h_dirty = have[va]
            if (w_frame, w_writable, w_accessed) != (h_frame, h_writable,
                                                     h_accessed):
                return Verdict.failed(
                    "leaf-state",
                    "proc slot %d va %#x leaf diverged: "
                    "frame/writable/accessed %s vs %s"
                    % (slot, va, (w_frame, w_writable, w_accessed),
                       (h_frame, h_writable, h_accessed)),
                    op_index=index, modes=modes)
            if w_dirty != h_dirty:
                # Assist machines may *lag* (miss a dirty the reference
                # has) but must never invent one the reference lacks.
                if not (lag_ok and w_dirty and not h_dirty):
                    return Verdict.failed(
                        "leaf-state",
                        "proc slot %d va %#x dirty bit diverged: %s vs %s"
                        "%s" % (slot, va, w_dirty, h_dirty,
                                " (lag allowed only ref->machine)"
                                if lag_ok else ""),
                        op_index=index, modes=modes)
        return None

    def _check_trap_relations(self, runners, index):
        counts = {mode: runner.trap_counts() for mode, runner in runners}
        checks = []
        if "native" in counts:
            checks.append(self._relation(
                not counts["native"], "native must never trap",
                ("native",), counts, index))
        if "nested" in counts:
            bad = sorted(k for k, v in counts["nested"].items()
                         if v and k != HOST_FAULT)
            checks.append(self._relation(
                not bad, "nested may trap only for host faults, saw %s" % bad,
                ("nested",), counts, index))
        if "shadow" in counts:
            shadow = counts["shadow"]
            checks.append(self._relation(
                not shadow.get(HOST_FAULT), "shadow must never host-fault",
                ("shadow",), counts, index))
            checks.append(self._relation(
                not shadow.get(CR3_CACHE_HIT),
                "pure shadow has no gCR3 cache", ("shadow",), counts, index))
        if "agile" in counts and "shadow" in counts:
            agile, shadow = counts["agile"], counts["shadow"]
            for kind in AGILE_LE_SHADOW_KINDS:
                checks.append(self._relation(
                    agile.get(kind, 0) <= shadow.get(kind, 0),
                    "agile %s traps (%d) exceed pure shadow's (%d)"
                    % (kind, agile.get(kind, 0), shadow.get(kind, 0)),
                    ("agile", "shadow"), counts, index))
            # Section IV: every guest CR3 write traps under pure shadow;
            # under agile it either traps or hits the gCR3 cache.
            checks.append(self._relation(
                agile.get(CONTEXT_SWITCH, 0) + agile.get(CR3_CACHE_HIT, 0)
                == shadow.get(CONTEXT_SWITCH, 0),
                "agile ctx traps (%d) + gCR3 hits (%d) != shadow ctx traps "
                "(%d)" % (agile.get(CONTEXT_SWITCH, 0),
                          agile.get(CR3_CACHE_HIT, 0),
                          shadow.get(CONTEXT_SWITCH, 0)),
                ("agile", "shadow"), counts, index))
        if "agile" in counts and "nested" in counts:
            checks.append(self._relation(
                counts["agile"].get(HOST_FAULT, 0)
                <= counts["nested"].get(HOST_FAULT, 0),
                "agile host faults (%d) exceed nested's (%d)"
                % (counts["agile"].get(HOST_FAULT, 0),
                   counts["nested"].get(HOST_FAULT, 0)),
                ("agile", "nested"), counts, index))
        for verdict in checks:
            if verdict is not None:
                return verdict
        return None

    @staticmethod
    def _relation(holds, message, modes, counts, index):
        if holds:
            return None
        return Verdict.failed(
            "trap-relation", message, op_index=index, modes=modes,
            context={mode: counts[mode] for mode in modes})

    def _probe(self, runners, index):
        """End-to-end translation check: read back every mapped page."""
        for mode, runner in runners:
            vmm = runner.system.vmm
            for proc in runner.procs:
                targets = [(va, pte.frame)
                           for va, pte, _level in proc.page_table.iter_leaves()
                           if pte.present]
                if not targets:
                    continue
                try:
                    runner.api.switch_to(proc)
                except SimulationError as exc:
                    return Verdict.failed(
                        "probe", "switch failed: %s" % exc,
                        op_index=index, modes=(mode,))
                for va, gfn in targets:
                    try:
                        outcome = runner.api.read(va)
                    except SimulationError as exc:
                        return Verdict.failed(
                            "probe", "read of %#x failed: %s" % (va, exc),
                            op_index=index, modes=(mode,))
                    # Translate *after* the read: the read itself may
                    # demand-fault the host mapping into existence.
                    expected = gfn if vmm is None else vmm.hostpt.translate(gfn)
                    if outcome.frame != expected:
                        return Verdict.failed(
                            "probe",
                            "va %#x translated to frame %r, composed "
                            "tables say %r (gfn %#x)"
                            % (va, outcome.frame, expected, gfn),
                            op_index=index, modes=(mode,))
        return None
