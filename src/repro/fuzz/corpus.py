"""The reproducer corpus: failing scenarios as replayable JSON cases.

A *case* bundles everything needed to re-run one oracle verdict:

.. code-block:: json

    {
      "schema": 1,
      "note": "why this case exists",
      "scenario": {"schema": 1, "seed": 17, "profile": "churn", "ops": [...]},
      "oracle": {"modes": ["native", "shadow"], "page_size": "4K", ...},
      "failure": {"ok": false, "check": "leaf-state", ...}
    }

``failure`` records the verdict observed when the case was written
(null for regression cases that are *expected* to pass). Cases live as
one pretty-printed JSON file each, so reviewers can read the op list in
a diff; the committed ``corpus/regression/`` directory is replayed on
every CI run via ``repro fuzz --corpus corpus/regression``.
"""

import hashlib
import json
import os

from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.scenario import Scenario

CASE_SCHEMA = 1


def make_case(scenario, oracle, failure=None, note=None):
    """Build a JSON-safe case dict from live objects."""
    return {
        "schema": CASE_SCHEMA,
        "note": note,
        "scenario": scenario.to_dict(),
        "oracle": oracle.options(),
        "failure": failure.to_dict() if failure is not None else None,
    }


def case_name(case):
    """Deterministic, filesystem-safe name for one case."""
    scenario = case["scenario"]
    digest = hashlib.sha256(
        json.dumps(case["scenario"], sort_keys=True).encode("utf-8")
    ).hexdigest()[:8]
    return "s%d-%s-%dops-%s" % (scenario["seed"], scenario["profile"],
                                len(scenario["ops"]), digest)


def save_case(directory, case, name=None):
    """Write one case into ``directory``; returns its path."""
    if case.get("schema") != CASE_SCHEMA:
        raise ValueError("unsupported case schema %r" % (case.get("schema"),))
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "%s.json" % (name or case_name(case)))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path):
    with open(path, encoding="utf-8") as handle:
        case = json.load(handle)
    if case.get("schema") != CASE_SCHEMA:
        raise ValueError("%s: unsupported case schema %r"
                         % (path, case.get("schema")))
    return case


def iter_cases(directory):
    """Yield (path, case) for every ``*.json`` case, in sorted order."""
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(".json"):
            path = os.path.join(directory, entry)
            yield path, load_case(path)


def replay_case(case, **config_overrides):
    """Re-run one case through the oracle; returns the fresh Verdict.

    Keyword overrides are merged over the case's recorded oracle options
    — e.g. ``core="fastpath"`` replays the whole corpus on the fastpath
    simulation core (`repro fuzz replay --core fastpath`).
    """
    scenario = Scenario.from_dict(case["scenario"])
    options = dict(case.get("oracle") or {})
    options.update(config_overrides)
    if options.get("kind") == "isolation":
        # Cross-VM isolation cases (solo vs. consolidated replay).
        from repro.fuzz.isolation import IsolationOracle

        oracle = IsolationOracle.from_options(options)
    else:
        oracle = DifferentialOracle.from_options(options)
    return oracle.run(scenario)
