"""Fuzz campaigns: fan differential-oracle cases across the sweep pool.

A campaign turns (seed range x page sizes) into :class:`FuzzCaseSpec`
cells and runs them through the PR 2 :class:`SweepRunner` — the same
process-per-cell pool, timeout, retry, and shard machinery the
experiment sweeps use, just with :func:`execute_fuzz_case` as the
executor. A case is pure compute on its spec (the scenario is
*regenerated* from (seed, profile, ops) inside the worker), so results
are deterministic regardless of scheduling.

When a case fails, the campaign closes the loop in-process:

1. regenerate the scenario and re-judge it (capturing the verdict),
2. delta-debug it down to a minimal op sequence (:mod:`repro.fuzz.shrink`),
3. write a replayable reproducer case into the corpus directory
   (:mod:`repro.fuzz.corpus`), and
4. capture a PR 3 ``obs`` trace of the failing machine replaying the
   *shrunk* scenario, written next to the reproducer.

``repro fuzz`` is the CLI face of this module.
"""

import time
from dataclasses import dataclass, field

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.oracle import DEFAULT_MODES, DifferentialOracle, build_system
from repro.fuzz.scenario import ScenarioGenerator
from repro.fuzz.shrink import shrink
from repro.obs.metrics import NULL_METRICS
from repro.runner.sweep import SweepRunner, shard_cells


def _wall_time():
    """Wall clock for the campaign time budget; harness-only, never fed
    back into simulated results."""
    return time.monotonic()  # lint: disable=unseeded-random


@dataclass(frozen=True)
class FuzzCaseSpec:
    """One oracle cell: everything a worker needs to regenerate and judge.

    Hashable/picklable; ``options`` are extra
    :class:`~repro.fuzz.oracle.DifferentialOracle` keyword arguments
    (``paranoid``, ``compare_every``, config overrides like
    ``hw_ad_assist``) as a sorted tuple of (key, value) pairs so the
    spec stays frozen and its key deterministic.
    """

    seed: int
    ops: int
    profile: str = "default"
    page_size: str = "4K"
    modes: tuple = DEFAULT_MODES
    options: tuple = ()

    @staticmethod
    def freeze_options(options):
        return tuple(sorted((options or {}).items()))

    def oracle_kwargs(self):
        return dict(self.options)

    def build_oracle(self):
        return DifferentialOracle(modes=self.modes, page_size=self.page_size,
                                  **self.oracle_kwargs())

    def build_scenario(self):
        return ScenarioGenerator(self.profile).generate(self.seed, self.ops)

    def describe(self):
        return "fuzz/s%d/%s/%dops/%s/%s" % (
            self.seed, self.profile, self.ops, self.page_size,
            "+".join(self.modes))

    def cell_key(self):
        import hashlib
        import json

        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()

    def to_dict(self):
        return {"seed": self.seed, "ops": self.ops, "profile": self.profile,
                "page_size": self.page_size, "modes": list(self.modes),
                "options": [list(pair) for pair in self.options]}

    @classmethod
    def from_dict(cls, data):
        return cls(seed=data["seed"], ops=data["ops"],
                   profile=data["profile"], page_size=data["page_size"],
                   modes=tuple(data["modes"]),
                   options=tuple((k, v) for k, v in data["options"]))


@dataclass
class FuzzCaseResult:
    """What one worker reports back: the spec and its verdict."""

    spec: dict
    ok: bool
    verdict: dict

    def to_dict(self):
        return {"spec": self.spec, "ok": self.ok, "verdict": self.verdict}

    @classmethod
    def from_dict(cls, data):
        return cls(spec=data["spec"], ok=data["ok"], verdict=data["verdict"])

    def summary(self):
        return self.to_dict()


def execute_fuzz_case(spec, trace=False):
    """Module-level executor for :class:`SweepRunner` workers."""
    verdict = spec.build_oracle().run(spec.build_scenario())
    result = FuzzCaseResult(spec=spec.to_dict(), ok=verdict.ok,
                            verdict=verdict.to_dict())
    if trace:
        return result, None  # failing-case traces are captured post-shrink
    return result


@dataclass
class FuzzFailure:
    """One fully processed failure: verdict, reproducer, telemetry."""

    spec: object
    verdict: dict = None
    error: str = None
    reproducer: str = None
    trace: str = None
    shrunk_ops: int = None
    evaluations: int = 0

    def summary(self):
        row = {"cell": self.spec.describe()}
        if self.verdict is not None:
            row["verdict"] = self.verdict
        if self.error is not None:
            row["error"] = self.error
        if self.reproducer is not None:
            row["reproducer"] = self.reproducer
        if self.trace is not None:
            row["trace"] = self.trace
        if self.shrunk_ops is not None:
            row["shrunk_ops"] = self.shrunk_ops
        return row


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    cases: int = 0
    clean: int = 0
    failures: list = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self):
        return not self.failures

    def summary(self):
        return {
            "schema": 1,
            "cases": self.cases,
            "clean": self.clean,
            "failed": len(self.failures),
            "elapsed": round(self.elapsed, 3),
            "budget_exhausted": self.budget_exhausted,
            "failures": [f.summary() for f in self.failures],
        }


class FuzzCampaign:
    """Drive many specs through the pool; shrink and persist failures.

    ``corpus_dir`` receives one reproducer JSON (+ ``.trace.json``
    telemetry) per failure. ``shrink_budget`` caps oracle evaluations
    per failure during delta-debugging; ``do_shrink=False`` records the
    full-size scenario instead. ``time_budget`` (seconds) stops
    dispatching new waves once exceeded — cases already dispatched
    still finish, so a budget overrun never truncates a case mid-run.
    """

    def __init__(self, corpus_dir=None, workers=1, timeout=None,
                 shrink_budget=200, do_shrink=True, capture_traces=True,
                 time_budget=None, progress=None, mp_context=None,
                 metrics=None):
        self.corpus_dir = corpus_dir
        self.workers = workers
        self.timeout = timeout
        self.shrink_budget = shrink_budget
        self.do_shrink = do_shrink
        self.capture_traces = capture_traces
        self.time_budget = time_budget
        self.progress = progress
        self.mp_context = mp_context
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def run(self, specs, shard=None):
        started = _wall_time()
        report = CampaignReport()
        runner = SweepRunner(
            workers=self.workers, cache=None, timeout=self.timeout,
            retries=0, progress=None, mp_context=self.mp_context,
            executor=execute_fuzz_case, decode=FuzzCaseResult.from_dict,
            metrics=self.metrics)
        remaining = list(specs)
        if shard is not None:
            # Pre-filter instead of sharding per wave: shard assignment
            # hashes only the cell key, so filtering the whole grid up
            # front selects exactly the cells per-wave sharding would —
            # and campaign-wide progress (done/total, ETA) stays honest.
            k, n = shard
            keep = {s.cell_key() for s in shard_cells(remaining, n)[k]}
            remaining = [s for s in remaining if s.cell_key() in keep]
        total = len(remaining)
        wave_size = max(4, 4 * self.workers)
        while remaining:
            if (self.time_budget is not None and report.cases
                    and _wall_time() - started >= self.time_budget):
                report.budget_exhausted = True
                break
            wave, remaining = remaining[:wave_size], remaining[wave_size:]
            runner.progress = self._wave_progress(report.cases, total, started)
            sweep = runner.run(wave)
            for cell in sweep:
                report.cases += 1
                if cell.succeeded and cell.metrics.ok:
                    report.clean += 1
                else:
                    report.failures.append(self._process_failure(cell))
        report.elapsed = _wall_time() - started
        if self.metrics.enabled:
            self.metrics.inc("fuzz.cases", report.cases)
            self.metrics.inc("fuzz.clean", report.clean)
            self.metrics.inc("fuzz.failed", len(report.failures))
        return report

    def _wave_progress(self, done_base, total, started):
        """Lift per-wave runner progress to campaign-cumulative events.

        The runner reports done/total *within its wave*; callers want
        campaign-wide counts and an ETA over the full grid, so rebase
        the counters and recompute rate/ETA from the campaign clock.
        """
        if self.progress is None:
            return None

        def report(event):
            event = dict(event)
            event["done"] = done_base + event["done"]
            event["total"] = total
            wall = _wall_time() - started
            if wall > 0:
                rate = event["done"] / wall
                event["rate"] = rate
                event["eta"] = ((total - event["done"]) / rate
                                if rate > 0 else None)
            self.progress(event)

        return report

    # -- failure handling -----------------------------------------------------

    def _process_failure(self, cell):
        spec = cell.spec
        failure = FuzzFailure(spec=spec)
        if cell.metrics is not None:
            failure.verdict = cell.metrics.verdict
        else:
            failure.error = cell.error
        oracle = spec.build_oracle()
        scenario = spec.build_scenario()
        if self.do_shrink:
            scenario, failure.evaluations = shrink(
                scenario, lambda s: self._still_fails(oracle, s),
                budget=self.shrink_budget)
        failure.shrunk_ops = len(scenario.ops)
        verdict = self._judge(oracle, scenario)
        if verdict is not None:
            failure.verdict = verdict.to_dict()
        if self.corpus_dir is not None:
            case = corpus_mod.make_case(
                scenario, oracle, failure=verdict,
                note="found by fuzz campaign: %s" % spec.describe())
            failure.reproducer = corpus_mod.save_case(self.corpus_dir, case)
            if self.capture_traces:
                failure.trace = self._write_trace(
                    failure.reproducer, spec, scenario, verdict)
        return failure

    @staticmethod
    def _still_fails(oracle, scenario):
        try:
            return not oracle.run(scenario).ok
        except Exception:
            # A crash while replaying is as much a failure as a verdict.
            return True

    @staticmethod
    def _judge(oracle, scenario):
        try:
            return oracle.run(scenario)
        except Exception:
            return None

    def _write_trace(self, reproducer_path, spec, scenario, verdict):
        """Replay the shrunk scenario on the failing machine under the
        PR 3 tracer and persist the obs payload next to the reproducer."""
        import json

        from repro.fuzz.oracle import ScenarioRunner
        from repro.obs import IntervalRecorder, Tracer
        from repro.obs.exporters import trace_payload

        modes = (verdict.modes if verdict is not None and verdict.modes
                 else spec.modes)
        mode = modes[-1]
        kwargs = spec.oracle_kwargs()
        overrides = {k: v for k, v in kwargs.items()
                     if k not in ("paranoid", "compare_every",
                                  "full_check_every")}
        tracer, recorder = Tracer(), IntervalRecorder(every=256)
        try:
            system = build_system(mode, spec.page_size,
                                  paranoid=kwargs.get("paranoid", True),
                                  **overrides)
            system.attach_observability(tracer=tracer, recorder=recorder)
            ScenarioRunner(system).run(scenario)
        except Exception:
            pass  # the trace up to the failure is exactly what we want
        path = reproducer_path[:-len(".json")] + ".trace.json"
        payload = trace_payload(tracer, recorder)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True,
                      separators=(",", ":"))
        return path


def specs_for(seeds, ops, profile="default", page_sizes=("4K",),
              modes=DEFAULT_MODES, options=None):
    """The campaign grid: one spec per (seed, page size)."""
    frozen = FuzzCaseSpec.freeze_options(options)
    return [FuzzCaseSpec(seed=seed, ops=ops, profile=profile,
                         page_size=page_size, modes=tuple(modes),
                         options=frozen)
            for seed in seeds for page_size in page_sizes]
