"""repro.fuzz: differential fuzzing and cross-mode equivalence checking.

The simulator's adversarial correctness subsystem. A seeded generator
(:mod:`~repro.fuzz.scenario`) emits random-but-replayable guest
histories; a differential oracle (:mod:`~repro.fuzz.oracle`) replays
each one on native/nested/shadow/agile machines in lockstep and
cross-checks translations, guest-visible A/D bits, trap-count ordering
relations, and the paranoid-mode invariant suite; failures are
delta-debugged to minimal reproducers (:mod:`~repro.fuzz.shrink`) and
persisted to a replayable corpus (:mod:`~repro.fuzz.corpus`). Campaigns
fan cases across the sweep-runner pool (:mod:`~repro.fuzz.campaign`).

CLI: ``repro fuzz --seeds 200 --ops 400`` / ``repro fuzz --replay case.json``.
See docs/fuzzing.md.
"""

from repro.fuzz.campaign import (
    CampaignReport,
    FuzzCampaign,
    FuzzCaseResult,
    FuzzCaseSpec,
    execute_fuzz_case,
    specs_for,
)
from repro.fuzz.corpus import (
    case_name,
    iter_cases,
    load_case,
    make_case,
    replay_case,
    save_case,
)
from repro.fuzz.oracle import (
    DEFAULT_MODES,
    DifferentialOracle,
    ScenarioRunner,
    Verdict,
    build_system,
)
from repro.fuzz.scenario import (
    PROFILES,
    Scenario,
    ScenarioGenerator,
)
from repro.fuzz.shrink import ddmin, shrink

__all__ = [
    "CampaignReport",
    "FuzzCampaign",
    "FuzzCaseResult",
    "FuzzCaseSpec",
    "execute_fuzz_case",
    "specs_for",
    "case_name",
    "iter_cases",
    "load_case",
    "make_case",
    "replay_case",
    "save_case",
    "DEFAULT_MODES",
    "DifferentialOracle",
    "ScenarioRunner",
    "Verdict",
    "build_system",
    "PROFILES",
    "Scenario",
    "ScenarioGenerator",
    "ddmin",
    "shrink",
]
