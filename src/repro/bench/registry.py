"""Benchmark target registration and discovery.

A benchmark file declares itself with one decorator::

    from repro.bench import Gate, bench_target

    @bench_target("core_throughput", output="BENCH_core_throughput.json",
                  gates=(Gate("summary.geomean_speedup", "higher", 0.2),))
    def bench(ctx):
        ...
        return {"summary": {"geomean_speedup": 4.4}, ...}

The decorator attaches a :class:`BenchTarget` to the function (it does
*not* maintain a process-global registry — repeated imports of the same
file under different module names must not produce duplicates);
:func:`discover` imports each ``benchmarks/bench_*.py`` and scans module
attributes for decorated functions. Lint rule REPRO302 enforces that
every bench file registers exactly this way.
"""

import importlib.util
import os
import re
import sys

#: Declared report filenames must look like this (REPRO302 checks the
#: same pattern at lint time).
OUTPUT_NAME_RE = re.compile(r"^BENCH_[A-Za-z0-9_]+\.json$")

_TARGET_ATTR = "__bench_target__"


class Gate:
    """One regression gate: a dotted metric path and its tolerance.

    ``metric`` is resolved inside the report's flattened numeric metric
    map (e.g. ``summary.geomean_speedup``). ``direction`` says which way
    is good: ``"higher"`` gates against drops, ``"lower"`` against
    rises. ``tolerance`` is the fractional change allowed before the
    comparison fails (0.2 = 20%).
    """

    __slots__ = ("metric", "direction", "tolerance")

    VALID_DIRECTIONS = ("higher", "lower")

    def __init__(self, metric, direction="higher", tolerance=0.2):
        if direction not in self.VALID_DIRECTIONS:
            raise ValueError("gate direction must be one of %s, got %r"
                             % (", ".join(self.VALID_DIRECTIONS), direction))
        if tolerance < 0:
            raise ValueError("gate tolerance must be >= 0, got %r"
                             % (tolerance,))
        self.metric = metric
        self.direction = direction
        self.tolerance = tolerance

    def to_dict(self):
        return {"metric": self.metric, "direction": self.direction,
                "tolerance": self.tolerance}

    @classmethod
    def from_dict(cls, data):
        return cls(metric=data["metric"], direction=data["direction"],
                   tolerance=data["tolerance"])

    def __repr__(self):
        return "Gate(%r, %r, %r)" % (self.metric, self.direction,
                                     self.tolerance)


class BenchTarget:
    """One discovered benchmark: name, output file, gates, callable."""

    __slots__ = ("name", "output", "gates", "func")

    def __init__(self, name, output, gates, func):
        self.name = name
        self.output = output
        self.gates = tuple(gates)
        self.func = func

    def __repr__(self):
        return "BenchTarget(%r -> %s)" % (self.name, self.output)


def bench_target(name, output, gates=()):
    """Register the decorated ``func(ctx) -> dict`` as a benchmark target.

    ``output`` must match ``BENCH_<name>.json`` — the repo-root report
    file this target owns. ``gates`` is a sequence of :class:`Gate`
    evaluated by ``repro bench --compare``.
    """
    if not OUTPUT_NAME_RE.match(output):
        raise ValueError(
            "bench output must match BENCH_<name>.json, got %r" % (output,))

    def decorate(func):
        setattr(func, _TARGET_ATTR, BenchTarget(name, output, gates, func))
        return func

    return decorate


def _load_module(path):
    """Import one bench file under a collision-free module name."""
    stem = os.path.splitext(os.path.basename(path))[0]
    module_name = "repro_bench_target_%s" % stem
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise ImportError("cannot load benchmark file %s" % path)
    module = importlib.util.module_from_spec(spec)
    # Registered under its name during exec so dataclasses/pickling in
    # the bench body resolve the module; dropped again by the caller.
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(module_name, None)
        raise
    return module


def discover(bench_dir, names=None):
    """Import every ``bench_*.py`` under ``bench_dir``; return its targets.

    Returns a sorted list of :class:`BenchTarget`. ``names`` restricts
    the result to specific target names (unknown names raise, so a CLI
    typo cannot silently run nothing). Files that import but register no
    target are skipped — REPRO302 flags them at lint time instead.
    """
    bench_dir = os.path.abspath(bench_dir)
    if not os.path.isdir(bench_dir):
        raise FileNotFoundError("benchmark directory %s does not exist"
                                % bench_dir)
    targets = {}
    # Bench files import shared helpers (`from _util import ...`) the
    # same way the pytest conftest allows; mirror that here.
    sys.path.insert(0, bench_dir)
    try:
        for filename in sorted(os.listdir(bench_dir)):
            if not (filename.startswith("bench_")
                    and filename.endswith(".py")):
                continue
            module = _load_module(os.path.join(bench_dir, filename))
            for attr in vars(module).values():
                target = getattr(attr, _TARGET_ATTR, None)
                if not isinstance(target, BenchTarget):
                    continue
                if target.name in targets:
                    raise ValueError(
                        "duplicate benchmark target %r (in %s)"
                        % (target.name, filename))
                targets[target.name] = target
    finally:
        sys.path.remove(bench_dir)
    if names:
        unknown = sorted(set(names) - set(targets))
        if unknown:
            raise KeyError(
                "unknown benchmark target(s): %s (available: %s)"
                % (", ".join(unknown), ", ".join(sorted(targets)) or "none"))
        return [targets[name] for name in sorted(names)]
    return [targets[name] for name in sorted(targets)]
