"""repro.bench: the continuous-benchmarking harness behind ``repro bench``.

Every ``benchmarks/bench_*.py`` registers one benchmark target via the
:func:`bench_target` decorator, declaring its output ``BENCH_*.json``
name and regression gates. The harness discovers targets, runs them
with warmup/repeat/min-time control, and writes schema-versioned
reports carrying the result, host/python/git provenance, and an
embedded ``repro.obs.metrics`` snapshot. ``repro bench --compare``
evaluates a fresh run against a committed baseline and fails on
regressions beyond each gate's declared tolerance (lint rule REPRO302
keeps the benchmarks tree registered).

See docs/observability.md ("Reading a BENCH file") for the report
vocabulary.
"""

from repro.bench.compare import CompareError, compare_reports, format_comparison
from repro.bench.harness import (
    BENCH_REPORT_SCHEMA_VERSION,
    BenchContext,
    provenance,
    run_target,
)
from repro.bench.registry import BenchTarget, Gate, bench_target, discover

__all__ = [
    "BENCH_REPORT_SCHEMA_VERSION",
    "BenchContext",
    "BenchTarget",
    "CompareError",
    "Gate",
    "bench_target",
    "compare_reports",
    "discover",
    "format_comparison",
    "provenance",
    "run_target",
]
