"""Baseline comparison: per-metric deltas and regression gating.

``compare_reports(baseline, fresh)`` evaluates the fresh report's
declared gates against the baseline's numbers and computes informational
deltas over every metric the two reports share. A gate regresses when
the fresh value crosses the baseline by more than the gate's tolerance
in the bad direction::

    direction="higher": fresh < baseline * (1 - tolerance)   # dropped
    direction="lower":  fresh > baseline * (1 + tolerance)   # rose

Gates come from the *fresh* report (the code under test declares its own
contract); the baseline only supplies reference values. A gated metric
missing from either side is itself a failure — silently ungated
regressions are the failure mode this module exists to prevent.
"""

from repro.bench.registry import Gate


class CompareError(ValueError):
    """A comparison that cannot be evaluated (wrong file, wrong schema)."""


def _delta(base, fresh):
    """Fractional change from base to fresh (None when base is 0)."""
    if base == 0:
        return None
    return (fresh - base) / abs(base)


def compare_reports(baseline, fresh):
    """Evaluate ``fresh`` against ``baseline``; returns a comparison dict.

    Both are loaded schema-2 report dicts. Raises :class:`CompareError`
    when they describe different benchmarks. The returned dict::

        {"benchmark": ..., "ok": bool,
         "gates": [{"metric", "direction", "tolerance", "baseline",
                    "fresh", "delta", "ok", "reason"}, ...],
         "deltas": {metric: {"baseline", "fresh", "delta"}, ...}}
    """
    base_name = baseline.get("benchmark")
    fresh_name = fresh.get("benchmark")
    if base_name != fresh_name:
        raise CompareError(
            "baseline is for benchmark %r but the fresh run is %r — "
            "compare against the matching BENCH file" % (base_name,
                                                         fresh_name))
    base_metrics = baseline.get("metrics", {})
    fresh_metrics = fresh.get("metrics", {})

    gate_rows = []
    ok = True
    for gate_data in fresh.get("gates", []):
        gate = Gate.from_dict(gate_data)
        row = dict(gate_data)
        base_value = base_metrics.get(gate.metric)
        fresh_value = fresh_metrics.get(gate.metric)
        row["baseline"] = base_value
        row["fresh"] = fresh_value
        if base_value is None or fresh_value is None:
            row["delta"] = None
            row["ok"] = False
            row["reason"] = ("gated metric %r missing from the %s report"
                             % (gate.metric,
                                "baseline" if base_value is None
                                else "fresh"))
        else:
            delta = _delta(base_value, fresh_value)
            row["delta"] = delta
            if gate.direction == "higher":
                regressed = fresh_value < base_value * (1 - gate.tolerance)
            else:
                regressed = fresh_value > base_value * (1 + gate.tolerance)
            row["ok"] = not regressed
            row["reason"] = (
                "%s regressed: %.6g -> %.6g (%+.1f%%, tolerance %.0f%%)"
                % (gate.metric, base_value, fresh_value,
                   100 * (delta or 0), 100 * gate.tolerance)
                if regressed else None)
        ok = ok and row["ok"]
        gate_rows.append(row)

    deltas = {}
    for metric in sorted(set(base_metrics) & set(fresh_metrics)):
        deltas[metric] = {
            "baseline": base_metrics[metric],
            "fresh": fresh_metrics[metric],
            "delta": _delta(base_metrics[metric], fresh_metrics[metric]),
        }
    return {"benchmark": fresh_name, "ok": ok, "gates": gate_rows,
            "deltas": deltas}


def format_comparison(comparison, limit=20):
    """Human-readable comparison: gate verdicts, then the top movers."""
    lines = ["Comparison for %s: %s" % (
        comparison["benchmark"], "ok" if comparison["ok"] else "REGRESSED")]
    for row in comparison["gates"]:
        if row["ok"]:
            delta = row["delta"]
            lines.append("  gate %-36s ok   (%+.1f%%, tolerance %.0f%%)"
                         % (row["metric"], 100 * (delta or 0),
                            100 * row["tolerance"]))
        else:
            lines.append("  gate %-36s FAIL %s" % (row["metric"],
                                                   row["reason"]))
    movers = sorted(
        ((metric, row) for metric, row in comparison["deltas"].items()
         if row["delta"] is not None),
        key=lambda pair: -abs(pair[1]["delta"]))[:limit]
    if movers:
        lines.append("  top deltas:")
        for metric, row in movers:
            lines.append("    %-40s %.6g -> %.6g (%+.1f%%)"
                         % (metric, row["baseline"], row["fresh"],
                            100 * row["delta"]))
    return "\n".join(lines)
