"""Run benchmark targets and write schema-versioned BENCH reports.

A report file looks like::

    {
      "schema": 2,
      "benchmark": "core_throughput",
      "quick": false,
      "provenance": {"host": ..., "platform": ..., "python": ...,
                     "git_sha": ..., "generated_at": ...},
      "gates": [{"metric": "summary.geomean_speedup", ...}],
      "result": {...},          # whatever the bench function returned
      "metrics": {...},         # flattened numeric view of result
      "obs_metrics": {...}      # repro.obs.metrics snapshot (schema'd)
    }

``metrics`` is the comparison surface: every numeric leaf of ``result``
under its dotted path, which is what gates and ``--compare`` deltas
resolve against. Schema 2 supersedes the ad-hoc schema-1 files the
standalone scripts used to write.
"""

import json
import os
import platform
import subprocess
import time

from repro.obs.metrics import MetricsRegistry

#: Version of the BENCH report wrapper. The *inner* ``result`` shape
#: belongs to each benchmark; this versions the envelope.
BENCH_REPORT_SCHEMA_VERSION = 2


def _wall_time():
    """Harness wall clock; never feeds back into simulated results."""
    return time.perf_counter()  # lint: disable=unseeded-random


class BenchContext:
    """What a benchmark body gets: budgets, a timer, a metrics registry.

    ``quick`` asks for a CI-smoke-sized run; :meth:`ops` is the budget
    helper benchmarks use to honour it. ``repeat`` overrides each
    target's timing repeat count; ``ops_override`` pins the op budget
    regardless of quick scaling (the ``repro bench --ops`` escape
    hatch). ``metrics`` accumulates instrumentation across the whole
    invocation and is embedded in every report.
    """

    def __init__(self, quick=False, ops_override=None, repeat=None,
                 metrics=None):
        self.quick = quick
        self.ops_override = ops_override
        self.repeat = repeat
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def ops(self, full, quick=None):
        """The op budget for this run: ``full``, its quick-mode version
        (default ``full // 10``, floor 1000), or the CLI override."""
        if self.ops_override is not None:
            return self.ops_override
        if self.quick:
            return quick if quick is not None else max(1000, full // 10)
        return full

    def best_of(self, func, repeat=3, min_time=0.0, warmup=0):
        """Best wall-clock seconds of ``repeat`` timed calls to ``func``.

        ``warmup`` extra untimed calls run first; ``min_time`` keeps
        re-running (beyond ``repeat``) until that much total measured
        time has accumulated, so very fast bodies still get a stable
        best-of. Best-of-N is the standard noise filter for wall-clock
        micro-timing (taking the min discards scheduler hiccups).
        """
        repeat = self.repeat if self.repeat is not None else repeat
        for _ in range(warmup):
            func()
        best = None
        spent = 0.0
        runs = 0
        while runs < repeat or spent < min_time:
            start = _wall_time()
            func()
            elapsed = _wall_time() - start
            spent += elapsed
            runs += 1
            if best is None or elapsed < best:
                best = elapsed
            if runs >= 1000:  # min_time guard against a mis-set budget
                break
        return best


def provenance():
    """Host/python/git identification stamped into every report."""
    sha = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10, cwd=os.path.dirname(os.path.abspath(__file__)))
        if proc.returncode == 0:
            sha = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "git_sha": sha,
        # Wall-clock stamp; provenance only, never compared.
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def flatten_numeric(value, prefix="", into=None):
    """Every numeric leaf of a nested dict/list as ``{dotted.path: number}``.

    Lists flatten by index. Booleans are excluded (they are ints to
    Python but deltas over them are meaningless).
    """
    if into is None:
        into = {}
    if isinstance(value, dict):
        for key in value:
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            flatten_numeric(value[key], path, into)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            path = "%s.%d" % (prefix, index) if prefix else str(index)
            flatten_numeric(item, path, into)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        into[prefix] = value
    return into


def run_target(target, ctx, out_dir="."):
    """Run one :class:`~repro.bench.registry.BenchTarget`; write its report.

    Returns ``(report, path)``. The bench function receives ``ctx`` and
    returns the JSON-safe ``result`` payload; everything else
    (provenance, gates, flattened metrics, obs snapshot) is the
    harness's job, so every BENCH file is uniform.
    """
    result = target.func(ctx)
    if not isinstance(result, dict):
        raise TypeError(
            "benchmark %r returned %s; bench functions must return a "
            "JSON-safe dict" % (target.name, type(result).__name__))
    report = {
        "schema": BENCH_REPORT_SCHEMA_VERSION,
        "benchmark": target.name,
        "quick": ctx.quick,
        "provenance": provenance(),
        "gates": [gate.to_dict() for gate in target.gates],
        "result": result,
        "metrics": flatten_numeric(result),
        "obs_metrics": ctx.metrics.snapshot().to_dict(),
    }
    if out_dir and not os.path.isdir(out_dir):
        os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, target.output)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report, path


def load_report(path):
    """Read one BENCH report; raises ValueError on a foreign schema."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if schema != BENCH_REPORT_SCHEMA_VERSION:
        raise ValueError(
            "%s has schema %r but this build reads schema %d; regenerate "
            "it with `repro bench`" % (path, schema,
                                       BENCH_REPORT_SCHEMA_VERSION))
    return report
