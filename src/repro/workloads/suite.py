"""The Table V workload suite, scaled for a functional simulator.

Eight synthetic workloads reproduce the *qualitative* profile of the
paper's suite — the ratio of TLB-miss traffic to page-table-update
traffic that determines which paging technique wins:

===========  ==========  =====================================================
Workload     Paper size  Scaled behaviour reproduced here
===========  ==========  =====================================================
memcached    75 GB       Zipf key lookups + slab churn + eviction pressure
canneal      780 MB      uniform random swap traffic, almost no PT updates
astar        350 MB      pointer chasing with a hot core, few updates
gcc          885 MB      allocation churn and short-lived child processes
graph500     73 GB       read-mostly BFS sweeps over a big footprint
mcf          1.7 GB      cold pointer chasing, the worst TLB behaviour
tigr         610 MB      long sequential scans + random index probes
dedup        1.4 GB      pipeline stages + content-based sharing: dedup
                         passes then COW-breaking writes (PT-update storm)
===========  ==========  =====================================================

Methodology notes (also in DESIGN.md):

* Footprints are scaled from GBs to MBs while keeping the Table III TLB
  geometry; each workload mixes a TLB-resident hot set with a calibrated
  cold fraction so steady-state miss rates land in the realistic
  0.2%–2.5%-of-accesses range the paper's native overheads imply.
* Each workload populates its memory (and lets the agile policies
  settle) before ``start_measurement``, mirroring how multi-minute runs
  amortize their setup phase.
* OS churn (mmap/munmap, forks, dedup passes, reclaim) is sparse per
  operation — as it is in reality, where VMtraps cost thousands of
  cycles yet shadow-paging overhead tops out around 57% (dedup).
"""

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.generators import (
    MixtureSampler,
    PointerChase,
    SequentialScanner,
    UniformSampler,
    ZipfSampler,
)

MB = 1 << 20
BATCH = 512


class SuiteWorkload(Workload):
    """Common skeleton: setup + warm + settle, then a measured loop."""

    footprint_mb = 16
    hot_pages = 384
    cold_fraction = 0.01
    write_fraction = 0.1
    hot_alpha = 1.0
    settle_passes = 2
    # Background OS noise: a daemon process scheduled every cs_period
    # ops. Each guest context switch is free under nested paging but a
    # VMtrap under shadow paging (Section III-B); agile paging's CR3
    # cache removes it again (Section IV).
    cs_period = 10_000

    def execute(self, api):
        self.reset()
        state = self.setup(api)
        main_proc = api.current
        daemon = api.spawn(code_pages=2)
        api.switch_to(daemon)
        daemon_heap = api.mmap(4 * self.granule)
        for i in range(4):
            api.write(daemon_heap + i * self.granule)
        api.switch_to(main_proc)
        self.warm_and_settle(api, state)
        api.start_measurement()
        done = 0
        while done < self.ops:
            n = min(BATCH, self.ops - done)
            self.batch(api, state, n, done)
            done += n
            if self.cs_period and done % self.cs_period < BATCH:
                # Timer tick: the daemon runs briefly.
                current = api.current
                api.switch_to(daemon)
                for i in range(4):
                    api.read(daemon_heap + i * self.granule)
                done += 4
                api.switch_to(current)

    # -- hooks ---------------------------------------------------------------

    def setup(self, api):
        """Spawn, map and return per-run state (a dict)."""
        api.spawn()
        npages = self.pages_for(self.footprint_mb * MB)
        base = api.mmap(npages * self.granule, kind="heap")
        return {"base": base, "npages": npages,
                "sampler": self.make_sampler(npages)}

    def make_sampler(self, npages):
        """Hot set (TLB-resident) + a calibrated cold tail."""
        hot = min(self.hot_pages, npages)
        return MixtureSampler(
            [ZipfSampler(hot, self.rng, alpha=self.hot_alpha),
             UniformSampler(npages, self.rng)],
            weights=[1.0 - self.cold_fraction, self.cold_fraction],
            rng=self.rng,
        )

    def warm_and_settle(self, api, state):
        """Fault everything in, then settle the VMM policies.

        Read passes give the policies steady-state evidence (misses, no
        page-table updates); the idle settles between them let interval
        timers fire, so one-time transitions happen before measurement.
        """
        self.warm_region(api, state["base"], state["npages"], write=True)
        for _pass in range(self.settle_passes):
            self.warm_region(api, state["base"], state["npages"], write=False)
            api.settle()

    def batch(self, api, state, n, done):
        indices = state["sampler"].sample(n)
        writes = self.rng.random(n) < self.write_fraction
        self.region_access(api, state["base"], indices, writes)


class MemcachedLike(SuiteWorkload):
    """Zipf key-value lookups with slab churn and eviction pressure."""

    name = "memcached"
    description = "in-memory key-value cache (75 GB in the paper)"
    footprint_mb = 48
    hot_pages = 384
    cold_fraction = 0.008
    write_fraction = 0.10

    def __init__(self, ops=100_000, seed=42, churn_period=40_000,
                 slab_pages=3, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.churn_period = churn_period
        self.slab_pages = slab_pages

    def setup(self, api):
        state = super().setup(api)
        state["slabs"] = []
        return state

    def batch(self, api, state, n, done):
        super().batch(api, state, n, done)
        if done % self.churn_period < BATCH and done:
            # Slab churn: retire the oldest slab, fill a fresh one (SET
            # traffic into new memory), and let the guest evict a little
            # under memory pressure (Section V).
            slabs = state["slabs"]
            if len(slabs) >= 4:
                api.munmap(slabs.pop(0), self.slab_pages * self.granule)
            slab = api.mmap(self.slab_pages * self.granule, kind="slab")
            slabs.append(slab)
            for i in range(self.slab_pages):
                api.write(slab + i * self.granule)
            api.reclaim(1)


class CannealLike(SuiteWorkload):
    """Uniform random element swaps: TLB stress, static page tables."""

    name = "canneal"
    description = "simulated-annealing netlist swaps (PARSEC)"
    footprint_mb = 24
    hot_pages = 384
    cold_fraction = 0.005
    write_fraction = 0.5

    def __init__(self, ops=100_000, seed=43, **kw):
        super().__init__(ops=ops, seed=seed, **kw)

    def make_sampler(self, npages):
        hot = min(self.hot_pages, npages)
        return MixtureSampler(
            [UniformSampler(hot, self.rng), UniformSampler(npages, self.rng)],
            weights=[1.0 - self.cold_fraction, self.cold_fraction],
            rng=self.rng,
        )


class AstarLike(SuiteWorkload):
    """Path-finding: pointer chasing through a graph with a hot core."""

    name = "astar"
    description = "SPEC 2006 astar (350 MB in the paper)"
    footprint_mb = 12
    hot_pages = 320
    cold_fraction = 0.005
    write_fraction = 0.05
    hot_alpha = 1.2

    def __init__(self, ops=100_000, seed=44, **kw):
        super().__init__(ops=ops, seed=seed, **kw)

    def make_sampler(self, npages):
        hot = min(self.hot_pages, npages)
        return MixtureSampler(
            [ZipfSampler(hot, self.rng, alpha=self.hot_alpha),
             PointerChase(npages, self.rng)],
            weights=[1.0 - self.cold_fraction, self.cold_fraction],
            rng=self.rng,
        )


class GccLike(SuiteWorkload):
    """Compiler: allocation churn and short-lived helper processes.

    Page-table update traffic — not TLB misses — is what makes gcc
    expensive under shadow paging (Figure 5).
    """

    name = "gcc"
    description = "SPEC 2006 gcc (885 MB in the paper)"
    footprint_mb = 16
    hot_pages = 320
    cold_fraction = 0.003
    write_fraction = 0.3
    hot_alpha = 1.1

    def __init__(self, ops=100_000, seed=45, buffer_period=30_000,
                 buffer_pages=2, child_period=100_000, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.buffer_period = buffer_period
        self.buffer_pages = buffer_pages
        self.child_period = child_period

    def setup(self, api):
        state = super().setup(api)
        state["parent"] = api.current
        return state

    def batch(self, api, state, n, done):
        super().batch(api, state, n, done)
        if done and done % self.buffer_period < BATCH:
            # A compilation phase: allocate, fill, discard a work buffer.
            work = api.mmap(self.buffer_pages * self.granule, kind="work")
            for i in range(self.buffer_pages):
                api.write(work + i * self.granule)
            api.munmap(work, self.buffer_pages * self.granule)
        if done and done % self.child_period < BATCH:
            # A short-lived helper process (cpp/as in a real build).
            child = api.spawn(code_pages=2)
            api.switch_to(child)
            scratch = api.mmap(2 * self.granule)
            api.write(scratch)
            api.write(scratch + self.granule)
            api.switch_to(state["parent"])
            api.exit(child)


class Graph500Like(SuiteWorkload):
    """Read-mostly BFS sweeps over a large graph."""

    name = "graph500"
    description = "generation, compression and search of graphs (73 GB in the paper)"
    footprint_mb = 48
    hot_pages = 384
    cold_fraction = 0.014
    write_fraction = 0.02
    hot_alpha = 0.9


class McfLike(SuiteWorkload):
    """Cold pointer chasing over a large arena: the worst TLB case."""

    name = "mcf"
    description = "SPEC 2006 mcf (1.7 GB in the paper)"
    footprint_mb = 32
    hot_pages = 352
    cold_fraction = 0.018
    write_fraction = 0.2

    def __init__(self, ops=100_000, seed=47, **kw):
        super().__init__(ops=ops, seed=seed, **kw)

    def make_sampler(self, npages):
        hot = min(self.hot_pages, npages)
        return MixtureSampler(
            [ZipfSampler(hot, self.rng, alpha=self.hot_alpha),
             PointerChase(npages, self.rng)],
            weights=[1.0 - self.cold_fraction, self.cold_fraction],
            rng=self.rng,
        )


class TigrLike(SuiteWorkload):
    """Sequence assembly: streaming scans plus random index probes."""

    name = "tigr"
    description = "BioBench tigr (610 MB in the paper)"
    footprint_mb = 20
    hot_pages = 384
    cold_fraction = 0.016
    write_fraction = 0.05

    def __init__(self, ops=100_000, seed=48, accesses_per_page=64, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.accesses_per_page = accesses_per_page

    def setup(self, api):
        state = super().setup(api)
        state["scan"] = SequentialScanner(state["npages"])
        state["scan_left"] = 0
        state["scan_page"] = 0
        return state

    def batch(self, api, state, n, done):
        """Interleave a streaming scan (reads) with hot-set probes.

        The scan touches each database page ``accesses_per_page`` times
        before moving on, like scoring a sequence window.
        """
        base = state["base"]
        sampler = state["sampler"]
        half = n // 2
        for _i in range(half):
            if state["scan_left"] == 0:
                state["scan_page"] = int(state["scan"].sample(1)[0])
                state["scan_left"] = self.accesses_per_page
            state["scan_left"] -= 1
            api.read(base + state["scan_page"] * self.granule)
        indices = sampler.sample(n - half)
        writes = self.rng.random(n - half) < self.write_fraction
        self.region_access(api, base, indices, writes)


class DedupLike(SuiteWorkload):
    """Pipeline compression with content-based page sharing.

    Dedup passes write-protect shared pages; subsequent writes break
    COW — the update storm behind dedup's 57% shadow-paging VMM
    overhead in Figure 5.
    """

    name = "dedup"
    description = "PARSEC dedup (1.4 GB in the paper)"
    footprint_mb = 16
    hot_pages = 320
    cold_fraction = 0.004
    write_fraction = 0.5

    def __init__(self, ops=100_000, seed=49, chunk_pages=4,
                 chunk_period=35_000, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.chunk_pages = chunk_pages
        self.chunk_period = chunk_period

    def setup(self, api):
        producer = api.spawn()
        consumer = api.spawn()
        api.switch_to(consumer)
        out = api.mmap(64 * self.granule, kind="out")
        api.switch_to(producer)
        npages = self.pages_for(self.footprint_mb * MB)
        base = api.mmap(npages * self.granule, kind="pool")
        return {
            "base": base,
            "npages": npages,
            "sampler": self.make_sampler(npages),
            "producer": producer,
            "consumer": consumer,
            "out": out,
            "out_scan": SequentialScanner(64),
            "chunk_index": 0,
        }

    def warm_and_settle(self, api, state):
        api.switch_to(state["consumer"])
        self.warm_region(api, state["out"], 64, write=True)
        api.switch_to(state["producer"])
        super().warm_and_settle(api, state)

    def batch(self, api, state, n, done):
        super().batch(api, state, n, done)
        if done and done % self.chunk_period < BATCH:
            self._chunk_cycle(api, state)

    def _chunk_cycle(self, api, state):
        """Fill a chunk, dedup it, emit output, rewrite (COW breaks)."""
        npages = state["npages"]
        offset = (state["chunk_index"] * self.chunk_pages) % max(
            1, npages - self.chunk_pages
        )
        state["chunk_index"] += 1
        chunk = state["base"] + offset * self.granule
        for i in range(self.chunk_pages):
            api.write(chunk + i * self.granule)
        api.dedup(chunk, self.chunk_pages * self.granule, group=2)
        # Consumer emits compressed output (a context-switch pair).
        api.switch_to(state["consumer"])
        for index in state["out_scan"].sample(4):
            api.write(state["out"] + int(index) * self.granule)
        api.switch_to(state["producer"])
        # Rewrites break the sharing the scanner just created.
        for i in range(self.chunk_pages):
            api.write(chunk + i * self.granule)


SUITE = (
    MemcachedLike,
    CannealLike,
    AstarLike,
    GccLike,
    Graph500Like,
    McfLike,
    TigrLike,
    DedupLike,
)

# Table V: paper-reported memory footprints.
PAPER_FOOTPRINTS = {
    "astar": "350 MB",
    "gcc": "885 MB",
    "mcf": "1.7 GB",
    "canneal": "780 MB",
    "dedup": "1.4 GB",
    "tigr": "610 MB",
    "graph500": "73 GB",
    "memcached": "75 GB",
}


def make_suite(ops=100_000, page_size=None, names=None):
    """Instantiate the suite (optionally a subset, or another granule)."""
    selected = []
    for cls in SUITE:
        if names is not None and cls.name not in names:
            continue
        kwargs = {"ops": ops}
        if page_size is not None:
            kwargs["page_size"] = page_size
        selected.append(cls(**kwargs))
    return selected
