"""The consolidation workload family: guests built to be multiplexed.

Unlike the Table V suite (one long ``execute``), these workloads are
*steppable*: :meth:`SteppedWorkload.program` returns a generator that
yields at preemption-safe points, so the host vCPU scheduler
(:mod:`repro.host.scheduler`) can interleave N of them on the shared
clock. ``execute`` drains the same generator, so the identical workload
also runs solo under :func:`repro.core.simulator.run_workload` — which
is exactly how the cross-VM isolation oracle builds its baseline.

Three members, one per consolidation stress the paper's claims meet:

* :class:`PackedHog` — a memcached-shaped tenant (zipf hot set plus a
  cold tail) for plain 4:1 packing.
* :class:`ContextSwitchStorm` — many guest processes switching every
  few operations: the CR3-cache traffic generator (Section IV).
* :class:`ReclaimThrasher` — a cyclic writer whose footprint exceeds
  its fair share of host RAM, so consolidation with overcommit forces
  balloon revocations and re-backing host faults.
"""

from repro.workloads.base import Workload

#: Guest operations issued between yields (one schedulable step).
STEP_OPS = 64


class SteppedWorkload(Workload):
    """Base: a generator program, drainable for solo runs."""

    name = "stepped"

    def execute(self, api):
        for _step in self.program(api):
            pass

    def program(self, api):
        """A generator issuing guest work, yielding between steps."""
        raise NotImplementedError


class PackedHog(SteppedWorkload):
    """A well-behaved tenant: zipf hot set, sparse writes, light churn."""

    name = "packed_hog"
    description = "zipf hot set + cold tail; the 4:1 packing tenant"

    def __init__(self, ops=20_000, seed=42, page_size=None, npages=512,
                 hot_pages=128, write_fraction=0.2, **kwargs):
        if page_size is not None:
            kwargs["page_size"] = page_size
        super().__init__(ops=ops, seed=seed, **kwargs)
        self.npages = npages
        self.hot_pages = min(hot_pages, npages)
        self.write_fraction = write_fraction

    def program(self, api):
        self.reset()
        granule = self.granule
        api.spawn()
        base = api.mmap(self.npages * granule, kind="heap")
        self.warm_region(api, base, self.npages, write=True)
        api.settle()
        api.start_measurement()
        # Zipf ranks over the hot set, a uniform cold tail.
        done = 0
        while done < self.ops:
            n = min(STEP_OPS, self.ops - done)
            ranks = self.rng.zipf(1.2, size=n)
            cold = self.rng.random(n) < 0.05
            writes = self.rng.random(n) < self.write_fraction
            for i in range(n):
                if cold[i]:
                    page = int(self.rng.integers(self.npages))
                else:
                    page = int(min(ranks[i], self.hot_pages) - 1)
                api.access(base + page * granule, bool(writes[i]))
            done += n
            yield


class ContextSwitchStorm(SteppedWorkload):
    """Process-switch-heavy guest: the CR3-cache stressor.

    Spawns ``procs`` processes, each with a small private heap, and
    switches between them every few accesses. Under shadow paging every
    switch is a CR3-write VMtrap; under agile paging the CR3 cache
    absorbs repeats (Section IV) — precisely the effect consolidation
    multiplies by N.
    """

    name = "cs_storm"
    description = "frequent guest context switches across many processes"

    def __init__(self, ops=20_000, seed=42, page_size=None, procs=8,
                 proc_pages=32, switch_every=8, **kwargs):
        if page_size is not None:
            kwargs["page_size"] = page_size
        super().__init__(ops=ops, seed=seed, **kwargs)
        self.procs = procs
        self.proc_pages = proc_pages
        self.switch_every = switch_every

    def program(self, api):
        self.reset()
        granule = self.granule
        procs = []
        heaps = []
        for _ in range(self.procs):
            proc = api.spawn(code_pages=2)
            api.switch_to(proc)
            heap = api.mmap(self.proc_pages * granule, kind="heap")
            self.warm_region(api, heap, self.proc_pages, write=True)
            procs.append(proc)
            heaps.append(heap)
        api.settle()
        api.start_measurement()
        done = 0
        turn = 0
        while done < self.ops:
            n = min(STEP_OPS, self.ops - done)
            issued = 0
            while issued < n:
                turn += 1
                index = turn % self.procs
                api.switch_to(procs[index])
                burst = min(self.switch_every, n - issued)
                pages = self.rng.integers(self.proc_pages, size=burst)
                writes = self.rng.random(burst) < 0.25
                for i in range(burst):
                    api.access(heaps[index] + int(pages[i]) * granule,
                               bool(writes[i]))
                issued += burst
            done += n
            yield


class ReclaimThrasher(SteppedWorkload):
    """A cyclic writer sized past its fair share of host RAM.

    Solo (or at 1:1 reservation) it simply streams over its footprint.
    Consolidated with overcommit, every VM's sweep pushes the commit
    ledger past the physical limit, ballooning revokes the coldest
    frames, and the next sweep re-faults them — the reclaim-thrash
    pattern HMM-V-style overcommit studies measure.
    """

    name = "reclaim_thrasher"
    description = "cyclic writes over a footprint exceeding the fair share"

    def __init__(self, ops=20_000, seed=42, page_size=None, npages=1024,
                 **kwargs):
        if page_size is not None:
            kwargs["page_size"] = page_size
        super().__init__(ops=ops, seed=seed, **kwargs)
        self.npages = npages

    def program(self, api):
        self.reset()
        granule = self.granule
        api.spawn()
        base = api.mmap(self.npages * granule, kind="heap")
        api.start_measurement()
        done = 0
        cursor = 0
        while done < self.ops:
            n = min(STEP_OPS, self.ops - done)
            jitter = self.rng.integers(4, size=n)
            for i in range(n):
                page = (cursor + int(jitter[i])) % self.npages
                cursor = (cursor + 1) % self.npages
                api.write(base + page * granule)
            done += n
            yield


CONSOLIDATION_FAMILY = (PackedHog, ContextSwitchStorm, ReclaimThrasher)
