"""Workload base classes.

A workload is plain Python code programmed against the
:class:`repro.core.simulator.MachineAPI`: it spawns processes, maps
memory, and issues the access stream. All randomness comes from a seeded
generator, so the same workload object class produces an identical
operation stream on every configuration — the property the paper's
two-step methodology (and any fair cross-mode comparison) relies on.
"""

import numpy as np

from repro.common.params import FOUR_KB


class Workload:
    """Base workload: named, sized, deterministic.

    Randomness is injected: either pass a ``seed`` (the default; every
    :meth:`reset` rewinds to the identical stream) or pass an explicit
    pre-seeded ``rng`` with ``seed=None`` for a single-shot stream the
    caller controls (e.g., sharing one generator across workloads).
    Constructing an *unseeded* stream is impossible by design — the
    REPRO101 lint rule enforces the same property statically.
    """

    name = "workload"
    description = ""

    def __init__(self, ops=100_000, seed=42, page_size=FOUR_KB, rng=None):
        if seed is None and rng is None:
            raise ValueError(
                "workloads must be deterministic: pass a seed or a "
                "pre-seeded rng")
        self.ops = ops
        self.seed = seed
        self.page_size = page_size
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def granule(self):
        return self.page_size.bytes

    def execute(self, api):
        raise NotImplementedError

    def reset(self):
        """Restore the deterministic starting state for a fresh run.

        With an injected ``rng`` (``seed=None``) the stream cannot be
        rewound, so the generator continues — the caller owns it.
        """
        if self.seed is not None:
            self.rng = np.random.default_rng(self.seed)

    # -- helpers shared by the suite ------------------------------------------

    def pages_for(self, size_bytes):
        return max(1, size_bytes // self.granule)

    def region_access(self, api, base, page_indices, write_mask=None):
        """Issue one access per page index; ``write_mask`` marks writes."""
        granule = self.granule
        if write_mask is None:
            for index in page_indices:
                api.read(base + int(index) * granule)
        else:
            for index, is_write in zip(page_indices, write_mask):
                api.access(base + int(index) * granule, bool(is_write))

    def warm_region(self, api, base, npages, write=True):
        """Touch every page once (demand-fault the region in)."""
        granule = self.granule
        for index in range(npages):
            api.access(base + index * granule, write)

    def __repr__(self):
        return "%s(ops=%d, seed=%r)" % (type(self).__name__, self.ops, self.seed)
