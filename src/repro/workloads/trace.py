"""Operation-trace recording and replay.

Wrapping a :class:`~repro.core.simulator.MachineAPI` in a
:class:`TraceRecorder` captures the exact operation stream a workload
issued; :func:`replay` re-executes it against any other machine. Because
the guest kernel is deterministic, replay reproduces identical virtual
addresses — giving a hard guarantee that two configurations saw exactly
the same work, the property the paper's cross-mode comparisons and
two-step methodology depend on.
"""

from repro.common.errors import SimulationError

ACCESS = "A"
SPAWN = "P"
EXIT = "X"
MMAP = "M"
MUNMAP = "U"
FORK = "F"
SWITCH = "S"
DEDUP = "D"
RECLAIM = "R"
MEASURE = "T"
SETTLE = "Z"


class TraceRecorder:
    """Records every MachineAPI call while forwarding it."""

    def __init__(self, api):
        self._api = api
        self.records = []

    # Processes are referred to by spawn order, not pid, so a replay on
    # a fresh machine resolves them independently.
    def _proc_index(self, proc):
        return self._procs.index(proc)

    @property
    def _procs(self):
        if not hasattr(self, "_proc_list"):
            self._proc_list = []
        return self._proc_list

    @property
    def current(self):
        return self._api.current

    def read(self, va):
        self.records.append((ACCESS, va, False))
        return self._api.read(va)

    def write(self, va):
        self.records.append((ACCESS, va, True))
        return self._api.write(va)

    def access(self, va, is_write):
        self.records.append((ACCESS, va, bool(is_write)))
        return self._api.access(va, is_write)

    def spawn(self, code_pages=None):
        proc = self._api.spawn(code_pages=code_pages)
        self._procs.append(proc)
        self.records.append((SPAWN, code_pages))
        return proc

    def exit(self, proc):
        self.records.append((EXIT, self._proc_index(proc)))
        return self._api.exit(proc)

    def mmap(self, size, writable=True, kind="anon", populate=False, proc=None):
        va = self._api.mmap(size, writable=writable, kind=kind,
                            populate=populate, proc=proc)
        self.records.append((MMAP, size, writable, kind, populate, va))
        return va

    def munmap(self, va, size, proc=None):
        self.records.append((MUNMAP, va, size))
        return self._api.munmap(va, size, proc=proc)

    def fork(self, proc=None):
        child = self._api.fork(proc=proc)
        self._procs.append(child)
        self.records.append((FORK,))
        return child

    def switch_to(self, proc):
        self.records.append((SWITCH, self._proc_index(proc)))
        return self._api.switch_to(proc)

    def dedup(self, va, size, group=2, proc=None):
        self.records.append((DEDUP, va, size, group))
        return self._api.dedup(va, size, group=group, proc=proc)

    def reclaim(self, pages, proc=None):
        self.records.append((RECLAIM, pages))
        return self._api.reclaim(pages, proc=proc)

    def settle(self, intervals=2):
        self.records.append((SETTLE, intervals))
        self._api.settle(intervals)

    def start_measurement(self):
        self.records.append((MEASURE,))
        self._api.start_measurement()


def record(workload, api):
    """Run ``workload`` against ``api``, returning its operation trace."""
    recorder = TraceRecorder(api)
    workload.execute(recorder)
    return recorder.records


def replay(records, api):
    """Re-execute a recorded trace on a fresh machine.

    Verifies determinism: replayed mmaps must land at the recorded
    addresses (they do, because the guest kernel is deterministic).
    """
    procs = []
    for entry in records:
        kind = entry[0]
        if kind == ACCESS:
            _k, va, is_write = entry
            api.access(va, is_write)
        elif kind == SPAWN:
            procs.append(api.spawn(code_pages=entry[1]))
        elif kind == EXIT:
            api.exit(procs[entry[1]])
        elif kind == MMAP:
            _k, size, writable, region_kind, populate, recorded_va = entry
            va = api.mmap(size, writable=writable, kind=region_kind,
                          populate=populate)
            if va != recorded_va:
                raise SimulationError(
                    "replay divergence: mmap returned %#x, trace had %#x"
                    % (va, recorded_va)
                )
        elif kind == MUNMAP:
            api.munmap(entry[1], entry[2])
        elif kind == FORK:
            procs.append(api.fork())
        elif kind == SWITCH:
            api.switch_to(procs[entry[1]])
        elif kind == DEDUP:
            api.dedup(entry[1], entry[2], group=entry[3])
        elif kind == RECLAIM:
            api.reclaim(entry[1])
        elif kind == MEASURE:
            api.start_measurement()
        elif kind == SETTLE:
            api.settle(entry[1])
        else:
            raise SimulationError("unknown trace record %r" % (entry,))
