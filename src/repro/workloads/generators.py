"""Address-stream generators.

Each generator produces *page indices* into a region; workloads turn
them into virtual addresses. They are the building blocks that give the
eight Table V workloads their characteristic TLB behaviour: Zipf-skewed
key lookups (memcached), uniform scatter (canneal/mcf), pointer chasing
(astar/mcf), and long sequential scans (tigr).

Sampling is batched through numpy for speed; iteration stays cheap.
"""

import numpy as np

from repro.common.addrspace import returns


class UniformSampler:
    """Uniform random pages: the TLB-hostile worst case."""

    def __init__(self, npages, rng):
        if npages <= 0:
            raise ValueError("npages must be positive")
        self.npages = npages
        self._rng = rng

    @returns("vpn")
    def sample(self, n):
        return self._rng.integers(0, self.npages, size=n)


class ZipfSampler:
    """Zipf-distributed pages with a shuffled hot set.

    ``alpha`` near 1 gives the classic key-value skew. Hot pages are
    scattered over the region (real heaps do not sort by popularity),
    which matters for page-table locality.
    """

    def __init__(self, npages, rng, alpha=0.99):
        if npages <= 0:
            raise ValueError("npages must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.npages = npages
        self._rng = rng
        ranks = np.arange(1, npages + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._mapping = rng.permutation(npages)

    @returns("vpn")
    def sample(self, n):
        uniform = self._rng.random(n)
        ranks = np.searchsorted(self._cdf, uniform)
        return self._mapping[ranks]


class SequentialScanner:
    """A cyclic streaming scan, optionally strided (tigr-style)."""

    def __init__(self, npages, stride=1, start=0):
        if npages <= 0:
            raise ValueError("npages must be positive")
        self.npages = npages
        self.stride = stride
        self._position = start % npages

    @returns("vpn")
    def sample(self, n):
        indices = (self._position + self.stride * np.arange(n)) % self.npages
        self._position = int((self._position + self.stride * n) % self.npages)
        return indices


class PointerChase:
    """Follows a random Hamiltonian cycle over the pages (mcf/astar-style).

    Every access depends on the previous one, so there is no spatial
    locality at all and each step is effectively a random page.
    """

    def __init__(self, npages, rng):
        if npages <= 0:
            raise ValueError("npages must be positive")
        self.npages = npages
        order = rng.permutation(npages)
        self._next = np.empty(npages, dtype=np.int64)
        self._next[order] = np.roll(order, -1)
        self._position = int(order[0])

    @returns("vpn")
    def sample(self, n):
        out = np.empty(n, dtype=np.int64)
        position = self._position
        nxt = self._next
        for i in range(n):
            position = nxt[position]
            out[i] = position
        self._position = int(position)
        return out


class MixtureSampler:
    """Draws each access from one of several samplers by weight."""

    def __init__(self, samplers, weights, rng):
        if len(samplers) != len(weights) or not samplers:
            raise ValueError("need matching, non-empty samplers and weights")
        total = float(sum(weights))
        self.samplers = samplers
        self._cum = np.cumsum([w / total for w in weights])
        self._rng = rng

    @returns("vpn")
    def sample(self, n):
        choices = np.searchsorted(self._cum, self._rng.random(n))
        out = np.empty(n, dtype=np.int64)
        for which, sampler in enumerate(self.samplers):
            mask = choices == which
            count = int(mask.sum())
            if count:
                out[mask] = sampler.sample(count)
        return out
