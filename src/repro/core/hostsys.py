"""The consolidated-host runner: ``HostSystem`` alongside ``System``.

Where :class:`repro.core.machine.System` is one guest machine and
:func:`repro.core.simulator.run_workload` runs one workload on it,
``HostSystem`` is N guest machines multiplexed over shared RAM
(:class:`repro.host.host.Host`) and :func:`run_consolidated` runs one
*stepped* workload per VM to completion under the vCPU scheduler.

Workloads must be steppable — expose ``program(api)`` returning a
generator that yields at preemption-safe points (the
:mod:`repro.workloads.consolidation` family does; any plain workload
can be adapted with :func:`stepped`).
"""

from repro.common.config import HostConfig
from repro.host.host import Host


def stepped(workload):
    """Adapt a plain workload into a one-step program factory.

    The whole ``execute`` runs as a single schedulable step — correct,
    but unpreemptible. Prefer workloads with a native ``program(api)``
    generator for realistic interleaving.
    """
    def factory(api):
        def run():
            workload.execute(api)
            return
            yield  # makes `run` a generator: execute() is one step
        return run()
    return factory


def _program_factory(workload):
    program = getattr(workload, "program", None)
    if callable(program):
        return program
    return stepped(workload)


class HostSystem:
    """N consolidated VMs behind a ``System``-shaped runner façade."""

    def __init__(self, host_config=None, machine_config=None, configs=None,
                 tracer=None, metrics=None):
        self.host = Host(host_config=host_config,
                         machine_config=machine_config, configs=configs,
                         tracer=tracer, metrics=metrics)
        self.config = self.host.config
        self.clock = self.host.clock

    @property
    def vms(self):
        return self.host.vms

    def run(self, workloads):
        """Run one workload per VM to completion; per-VM RunMetrics.

        ``workloads`` may mix steppable workloads (with ``program``),
        plain workloads, and raw program factories (bare callables).
        """
        programs = []
        for workload in workloads:
            if callable(workload) and not hasattr(workload, "execute"):
                programs.append(workload)
            else:
                programs.append(_program_factory(workload))
        self.host.load(programs)
        self.host.run()
        return self.host.collect_metrics()

    def host_report(self):
        return self.host.host_report()


def run_consolidated(workloads, host_config=None, machine_config=None,
                     configs=None, tracer=None, metrics=None):
    """One-call convenience: build a host, run, return per-VM metrics.

    Mirrors :func:`repro.core.simulator.run_workload` at host scale::

        from repro.core.hostsys import run_consolidated
        from repro.common.config import HostConfig, sandy_bridge_config
        from repro.workloads.consolidation import PackedHog

        per_vm = run_consolidated(
            [PackedHog(ops=5_000, seed=s) for s in (1, 2)],
            HostConfig(vms=2),
            sandy_bridge_config(mode="agile"))

    When ``host_config`` is omitted, one is derived with ``vms`` set to
    the number of workloads.
    """
    if host_config is None:
        host_config = HostConfig(vms=len(workloads))
    system = HostSystem(host_config=host_config,
                        machine_config=machine_config, configs=configs,
                        tracer=tracer, metrics=metrics)
    metrics_per_vm = system.run(workloads)
    return metrics_per_vm, system.host_report()
