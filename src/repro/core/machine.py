"""System assembly: one simulated machine in one paging configuration.

``System`` wires together the physical memories, the guest kernel, the
MMU, and (for virtualized modes) the VMM, and drives the retry loop that
models hardware re-executing a faulting access after the OS/VMM resolves
the fault. It is the object workloads talk to.
"""

from repro.common.clock import Clock
from repro.common.config import CORE_FASTPATH, CORE_REFERENCE, MODE_NATIVE, VALID_CORES
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
    SimulationError,
)
from repro.common.timedomain import advances, charges
from repro.core.metrics import RunMetrics
from repro.guest.kernel import GuestKernel, GuestPlatform
from repro.hw.mmu import MMU
from repro.hw.walkstats import TranslationContext
from repro.mem.physmem import PhysicalMemory
from repro.obs.events import MARK_MEASUREMENT_START
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.vmm.vmm import VMM

# How often (in operations) the periodic VMM policy work runs.
POLICY_EPOCH_OPS = 256
MAX_FAULT_RETRIES = 16


class System(GuestPlatform):
    """A complete machine: hardware + guest OS (+ VMM when virtualized)."""

    def __new__(cls, config, clock=None, host_mem=None):
        # Core selection: ``System(config)`` transparently assembles the
        # fastpath machine (repro.core.fastpath.FastSystem) when the
        # config asks for it, so every existing call site honors the
        # `core` key. Validate here too: configs built by other means
        # than MachineConfig.__post_init__ must still fail loudly.
        core = getattr(config, "core", CORE_REFERENCE)
        if core not in VALID_CORES:
            raise SimulationError(
                "unknown simulation core: %r (valid cores: %s)"
                % (core, ", ".join(VALID_CORES)))
        if cls is System and core == CORE_FASTPATH:
            from repro.core.fastpath import FastSystem

            return super().__new__(FastSystem)
        return super().__new__(cls)

    def __init__(self, config, clock=None, host_mem=None):
        """Assemble one machine.

        ``clock`` and ``host_mem`` exist for the consolidated host
        (:mod:`repro.host`): every VM on a host shares the host's clock,
        and each receives its host-physical reservation as an externally
        owned allocator. Solo machines leave both None and own their
        clock and memory, exactly as before.
        """
        self.config = config
        self.clock = clock if clock is not None else Clock()
        self.cost = config.cost
        if config.mode == MODE_NATIVE:
            # Bare metal: one RAM serves the OS and its page tables. It is
            # sized like the *guest* RAM of the virtualized modes — native
            # is the same guest machine minus the VMM, so the OS must
            # manage an identical frame pool (or frame-allocation order
            # would diverge from the virtualized modes under pressure).
            ram = (host_mem if host_mem is not None
                   else PhysicalMemory(config.guest_mem_frames, "ram"))
            self.guest_mem = ram
            self.host_mem = ram
        else:
            self.guest_mem = PhysicalMemory(config.guest_mem_frames, "guest")
            self.host_mem = (host_mem if host_mem is not None
                             else PhysicalMemory(config.host_mem_frames, "host"))
        self.mmu = MMU(config, self.host_mem, self.guest_mem)
        self.vmm = None
        if config.virtualized:
            self.vmm = VMM(config, self.guest_mem, self.host_mem, self.mmu, self.clock)
        self.kernel = GuestKernel(self.guest_mem, platform=self, page_size=config.page_size)
        self._native_ctxs = {}
        # Accounting.
        self.ops = 0
        self.reads = 0
        self.writes = 0
        self.ideal_cycles = 0
        self.walk_cycles = 0
        self.tlb_l2_cycles = 0
        self.guest_fault_cycles = 0
        self.guest_fault_count = 0
        self._epoch_ops = 0
        self._epoch_misses_base = 0
        self._measurement_start = 0
        # Observability: null objects until attach_observability.
        self.tracer = NULL_TRACER
        self.recorder = None
        self.metrics = NULL_METRICS

    def attach_observability(self, tracer=None, recorder=None, metrics=None):
        """Install a tracer, interval recorder, and/or metrics registry.

        Threads the tracer into every instrumented component (MMU, page
        walker, VMM trap accounting, per-process policies) and hooks the
        recorder into the policy epoch so sampling adds no per-op work.
        A metrics registry is threaded the same way (MMU and walker) and
        sampled at policy epochs for occupancy gauges; unlike a tracer it
        does *not* disable the fastpath inline loop — the fast loop
        attributes its own fallbacks to per-reason counters instead.
        Idempotent; call any time after construction.
        """
        if tracer is not None:
            self.tracer = tracer
            self.mmu.tracer = tracer
            self.mmu.clock = self.clock
            self.mmu.walker.tracer = tracer
            self.mmu.walker.clock = self.clock
            if self.vmm is not None:
                self.vmm.attach_tracer(tracer)
        if recorder is not None:
            self.recorder = recorder
        if metrics is not None:
            self.metrics = metrics
            self.mmu.metrics = metrics
            self.mmu.walker.metrics = metrics

    # -- GuestPlatform plumbing (kernel -> VMM/hardware) ----------------------

    def observer_for(self, pid):
        if self.vmm is not None:
            return self.vmm.observer_for(pid)
        return None

    def process_created(self, proc):
        if self.vmm is not None:
            self.vmm.process_created(proc)
        else:
            self._native_ctxs[proc.pid] = TranslationContext(
                asid=proc.asid, mode=MODE_NATIVE, root_frame=proc.page_table.root_frame
            )

    def process_destroyed(self, proc):
        if self.vmm is not None:
            self.vmm.process_destroyed(proc)
        else:
            self._native_ctxs.pop(proc.pid, None)
            self.mmu.invalidate_asid(proc.asid)

    def invlpg(self, proc, va):
        if self.vmm is not None:
            self.vmm.invlpg(proc, va)
        else:
            self.mmu.invalidate_page(proc.asid, va)

    def flush_tlb(self, proc):
        if self.vmm is not None:
            self.vmm.flush_tlb(proc)
        else:
            self.mmu.invalidate_asid(proc.asid)

    def context_switch(self, old, new):
        if self.tracer.enabled:
            self.tracer.ctx_switch(self.clock.now,
                                   old.pid if old is not None else None,
                                   new.pid)
        if self.vmm is not None:
            self.vmm.context_switch(old, new)

    # -- the access path ---------------------------------------------------------

    def _ctx_for(self, proc):
        if self.vmm is not None:
            return self.vmm.ctx_for(proc)
        return self._native_ctxs[proc.pid]

    @advances("guest_sim")
    @charges("ideal_cycles")
    def access(self, va, is_write=False, kind="data"):
        """One memory access by the current process.

        Models the full hardware/software dance: TLB probe, page walk,
        guest faults resolved by the guest kernel, VM exits resolved by
        the VMM, then the retry — charging cycles for each step.
        """
        proc = self.kernel.current
        if proc is None:
            raise SimulationError("no runnable process")
        self.ops += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.ideal_cycles += self.cost.cycles_per_op
        self.clock.advance(self.cost.cycles_per_op)
        ctx = self._ctx_for(proc)
        for _attempt in range(MAX_FAULT_RETRIES):
            try:
                outcome = self.mmu.translate(ctx, va, is_write, kind)
            except GuestPageFault as fault:
                self._charge_refs(fault.refs)
                self._handle_guest_fault(proc, va, fault.is_write)
                continue
            except HostPageFault as fault:
                self._charge_refs(fault.refs)
                self.vmm.handle_host_fault(proc, fault)
                continue
            except ShadowNotPresentFault as fault:
                self._charge_refs(fault.refs)
                if self.vmm.handle_shadow_fault(proc, fault) == "guest_fault":
                    self._handle_guest_fault(proc, va, fault.is_write)
                continue
            except ShadowProtectionFault as fault:
                self._charge_refs(fault.refs)
                if self.vmm.handle_shadow_protection(proc, fault) == "guest_fault":
                    self._handle_guest_fault(proc, va, True)
                continue
            self._charge_translation(outcome)
            self._epoch_ops += 1
            if self._epoch_ops >= POLICY_EPOCH_OPS:
                self._policy_epoch()
            return outcome
        raise SimulationError(
            "translation livelock at va=%#x (pid %d, mode %s)"
            % (va, proc.pid, self.config.mode)
        )

    def read(self, va):
        return self.access(va, is_write=False)

    def write(self, va):
        return self.access(va, is_write=True)

    @advances("guest_sim")
    @charges("walk_cycles")
    def _charge_refs(self, refs):
        cycles = refs * self.cost.cycles_per_walk_ref
        self.walk_cycles += cycles
        self.clock.advance(cycles)

    @advances("guest_sim")
    @charges("walk_cycles", "tlb_l2_cycles", "sink:tlb_l1_hit")
    def _charge_translation(self, outcome):
        if outcome.hit_level == "l1":
            if self.cost.cycles_tlb_l1_hit:
                self.clock.advance(self.cost.cycles_tlb_l1_hit)
        elif outcome.hit_level == "l2":
            self.tlb_l2_cycles += self.cost.cycles_tlb_l2_hit
            self.clock.advance(self.cost.cycles_tlb_l2_hit)
        elif outcome.walk is not None:
            if outcome.cached_refs:
                uncached = outcome.walk.refs - outcome.cached_refs
                cycles = (uncached * self.cost.cycles_per_walk_ref
                          + outcome.cached_refs * self.cost.cycles_per_cached_ref)
                self.walk_cycles += cycles
                self.clock.advance(cycles)
            else:
                self._charge_refs(outcome.walk.refs)

    @advances("guest_sim")
    @charges("guest_fault_cycles")
    def _handle_guest_fault(self, proc, va, is_write):
        self.guest_fault_count += 1
        self.guest_fault_cycles += self.cost.guest_fault_cycles
        if self.tracer.enabled:
            self.tracer.guest_fault(self.clock.now, proc.pid, va, is_write)
        self.clock.advance(self.cost.guest_fault_cycles)
        self.kernel.handle_page_fault(proc, va, is_write)

    def _policy_epoch(self):
        self._epoch_ops = 0
        if self.recorder is not None:
            self.recorder.maybe_sample(self)
        if self.metrics.enabled:
            self._sample_occupancy()
        if self.vmm is None:
            return
        misses = self.mmu.counters.tlb_misses
        epoch_misses = misses - self._epoch_misses_base
        self._epoch_misses_base = misses
        self.vmm.set_miss_rate(1000.0 * epoch_misses / POLICY_EPOCH_OPS)
        self.vmm.policy_tick()

    def _sample_occupancy(self):
        """Gauge TLB/PWC fill levels (sampled at policy epochs only).

        Gauges are last-value instruments merged as high-water marks, so
        epoch-rate sampling is enough to answer "did the structure ever
        fill up" without per-op cost.
        """
        metrics = self.metrics
        l1 = l2 = 0
        for hierarchy in self.mmu.hierarchy.hierarchies.values():
            l1 += hierarchy.l1d.occupancy()
            if hierarchy.l1i is not None:
                l1 += hierarchy.l1i.occupancy()
            if hierarchy.l2 is not None:
                l2 += hierarchy.l2.occupancy()
        metrics.set_gauge("tlb.l1.occupancy", l1)
        metrics.set_gauge("tlb.l2.occupancy", l2)
        if self.mmu.pwc is not None:
            # A metric name, not a CellSpec override key — REPRO502
            # would otherwise try to resolve `pwc.*` against PWCConfig.
            metrics.set_gauge(
                "pwc.occupancy",  # lint: disable=config-keys
                self.mmu.pwc.occupancy())
        if self.mmu.nested_tlb is not None:
            metrics.set_gauge("nested_tlb.occupancy",
                              self.mmu.nested_tlb.occupancy())

    @advances("guest_sim")
    @charges("sink:warmup")
    def settle_policies(self, intervals=2):
        """Let VMM policy epochs elapse with the guest idle.

        Advances virtual time by ``intervals`` policy intervals, running
        the periodic VMM work in between. Workloads use this before
        ``start_measurement`` to stand in for the minutes of runtime a
        scaled simulation does not execute, so one-time transitions
        (agile reversion, SHSP technique selection and its whole-table
        rebuild) land in warmup where a long real run amortizes them.
        """
        if self.vmm is None:
            return
        # Flush the partial epoch so the policies see an up-to-date
        # TLB-miss rate before the idle ticks.
        self._policy_epoch()
        step = max(self.config.policy.revert_interval,
                   self.config.policy.write_interval)
        for _interval in range(intervals):
            self.clock.advance(step)
            self.vmm.policy_tick()

    def reset_counters(self):
        """Begin the measurement window: zero all accounting.

        Simulated *state* (page tables, TLB contents, policy decisions)
        is untouched — only counters restart, so metrics describe steady
        state rather than setup/warmup. The analogue of skipping the
        ramp-up phase when profiling a long-running workload.
        """
        self.ops = 0
        self.reads = 0
        self.writes = 0
        self.ideal_cycles = 0
        self.walk_cycles = 0
        self.tlb_l2_cycles = 0
        self.guest_fault_cycles = 0
        self.guest_fault_count = 0
        self.mmu.counters.reset()
        if self.vmm is not None:
            self.vmm.traps.reset()
        self._measurement_start = self.clock.now
        if self.tracer.enabled:
            self.tracer.mark(self.clock.now, MARK_MEASUREMENT_START)
        if self.recorder is not None:
            self.recorder.note_reset(self)

    # -- invariant checking (paranoid mode) -------------------------------------------

    def check_invariants(self):
        """Run a full paranoid sweep now; no-op unless paranoid mode is on.

        Raises :class:`repro.vmm.invariants.InvariantViolation` on any
        shadow/guest/TLB incoherence.
        """
        if self.vmm is not None and self.vmm.invariants is not None:
            self.vmm.invariants.check_all()

    # -- metrics -----------------------------------------------------------------------

    def collect_metrics(self, label="run"):
        """Snapshot all counters into a :class:`RunMetrics`."""
        # Final paranoid sweep: a run's numbers are only worth reporting
        # if the machine state they came from is still coherent.
        self.check_invariants()
        metrics = RunMetrics(label, self.config.mode, self.config.page_size)
        metrics.ops = self.ops
        metrics.reads = self.reads
        metrics.writes = self.writes
        metrics.total_cycles = self.clock.now - self._measurement_start
        metrics.ideal_cycles = self.ideal_cycles
        metrics.walk_cycles = self.walk_cycles
        metrics.tlb_l2_cycles = self.tlb_l2_cycles
        metrics.guest_fault_cycles = self.guest_fault_cycles
        counters = self.mmu.counters
        metrics.tlb_hits_l1 = counters.tlb_hits_l1
        metrics.tlb_hits_l2 = counters.tlb_hits_l2
        metrics.tlb_misses = counters.tlb_misses
        metrics.walk_refs = counters.walk_refs
        metrics.fault_refs = counters.fault_refs
        metrics.walks_by_depth = dict(counters.walks_by_depth)
        metrics.guest_faults = self.guest_fault_count
        if self.vmm is not None:
            metrics.trap_counts = dict(self.vmm.traps.counts)
            metrics.trap_cycles = dict(self.vmm.traps.cycles)
            metrics.vmm_cycles = self.vmm.traps.total_attributed_cycles
        return metrics
