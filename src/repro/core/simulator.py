"""The trace-driven run loop and the API workloads program against."""

from repro.common.config import sandy_bridge_config
from repro.core.machine import System


class MachineAPI:
    """What a workload may do to the machine.

    A thin façade over :class:`System` and its guest kernel, so workload
    code reads like an application plus the syscalls it makes.
    """

    def __init__(self, system):
        self.system = system
        self.kernel = system.kernel

    # -- plain memory traffic ------------------------------------------------

    def read(self, va):
        return self.system.access(va, is_write=False)

    def write(self, va):
        return self.system.access(va, is_write=True)

    def access(self, va, is_write):
        return self.system.access(va, is_write=is_write)

    # -- "syscalls" -------------------------------------------------------------

    @property
    def current(self):
        return self.kernel.current

    def spawn(self, code_pages=None):
        return self.kernel.create_process(code_pages=code_pages)

    def exit(self, proc):
        self.kernel.destroy_process(proc)

    def mmap(self, size, writable=True, kind="anon", populate=False, proc=None):
        proc = proc if proc is not None else self.kernel.current
        return self.kernel.mmap(proc, size, writable=writable, kind=kind,
                                populate=populate)

    def munmap(self, va, size, proc=None):
        proc = proc if proc is not None else self.kernel.current
        self.kernel.munmap(proc, va, size)

    def fork(self, proc=None):
        proc = proc if proc is not None else self.kernel.current
        return self.kernel.fork(proc)

    def switch_to(self, proc):
        return self.kernel.context_switch(proc.pid)

    def settle(self, intervals=2):
        """Idle long enough for periodic VMM policies to converge."""
        self.system.settle_policies(intervals)

    def start_measurement(self):
        """End setup/warmup: metrics describe steady state from here."""
        self.system.reset_counters()

    def mprotect(self, va, size, writable, proc=None):
        proc = proc if proc is not None else self.kernel.current
        return self.kernel.mprotect(proc, va, size, writable)

    def dedup(self, va, size, group=2, proc=None):
        proc = proc if proc is not None else self.kernel.current
        return self.kernel.dedup_region(proc, va, size, group=group)

    def reclaim(self, pages, proc=None, precise_aging=False):
        proc = proc if proc is not None else self.kernel.current
        return self.kernel.reclaim(proc, pages, precise_aging=precise_aging)


class Simulator:
    """Runs one workload on one system configuration."""

    def __init__(self, system):
        self.system = system
        self.api = MachineAPI(system)

    def run(self, workload):
        """Execute the workload to completion; returns RunMetrics."""
        workload.execute(self.api)
        return self.system.collect_metrics(label=workload.name)


def run_workload(workload, config=None, seed=None, rng=None, ops=None,
                 tracer=None, recorder=None, **config_overrides):
    """One-call convenience: build a system, run, return metrics.

    This is the primary public entry point::

        from repro import run_workload, sandy_bridge_config
        metrics = run_workload(my_workload,
                               sandy_bridge_config(mode="agile"))

    ``tracer``/``recorder`` (a :class:`repro.obs.Tracer` and
    :class:`repro.obs.IntervalRecorder`) are attached to the built
    system before the run, capturing its full event stream and interval
    time-series alongside the returned metrics.

    ``workload`` may also be a workload *class*; it is then constructed
    here with the config's page size and, when given, ``ops`` and either
    ``seed`` or a pre-seeded ``rng`` — threading the caller's randomness
    through to construction under the ``Workload(rng=...)`` contract::

        metrics = run_workload(McfLike, seed=7, ops=20_000, mode="agile")

    Passing ``seed``/``rng``/``ops`` alongside an already-constructed
    workload instance is an error: an instance's stream is fixed at
    construction, and silently ignoring the arguments would break the
    determinism they are meant to pin down.
    """
    if config is None:
        config = sandy_bridge_config(**config_overrides)
    if isinstance(workload, type):
        kwargs = {"page_size": config.page_size}
        if ops is not None:
            kwargs["ops"] = ops
        if rng is not None:
            kwargs["rng"] = rng
            kwargs["seed"] = None
        elif seed is not None:
            kwargs["seed"] = seed
        workload = workload(**kwargs)
    elif seed is not None or rng is not None or ops is not None:
        raise TypeError(
            "seed=/rng=/ops= require a workload class; %r is already "
            "constructed (pass them to its constructor instead)"
            % (type(workload).__name__,))
    system = System(config)
    if tracer is not None or recorder is not None:
        system.attach_observability(tracer=tracer, recorder=recorder)
    return Simulator(system).run(workload)
