"""The fastpath simulation core: batched access over flat-array stores.

``FastSystem`` is a drop-in :class:`~repro.core.machine.System` whose
MMU is assembled from the packed-array structures (``hw/fasttlb``,
``hw/fastpwc``, ``hw/fastwalker``) and which adds :meth:`access_batch`:
a single dispatch that retires a whole stream of independent accesses,
keeping the per-op bookkeeping in local accumulators and touching the
real counters only at batch boundaries, policy epochs, and fallbacks.

The fast loop inlines exactly two cases — a clean L1 hit and a clean L2
hit (with its L1 promotion) in the run's primary TLB hierarchy. Every
other case (TLB miss, write upgrade, multi-granule configs, tracing
enabled, non-data access kinds) falls back to the unmodified
``System.access`` path, and the inline probe is side-effect free until
the moment a clean hit is certain — so the observable machine state
after any stream is bit-identical to the reference core's, which
``tests/fastpath`` proves over the fuzz corpus and seeded campaigns.
``NULL_TRACER`` stays the zero-cost observability path: the fast loop
runs only when tracing is off, and pays nothing for it.
"""

from repro.common.addrspace import returns, takes
from repro.common.errors import SimulationError
from repro.common.params import level_shift
from repro.common.timedomain import advances, charges
from repro.core.machine import POLICY_EPOCH_OPS, System
from repro.hw.fasttlb import KEY_ASID_BITS, VAL_FRAME_BITS
from repro.mem.flatpt import FlatLeafMap, pack_meta

# Snapshot keys pack the owning ASID above the 4 KB VPN.
SNAPSHOT_ASID_BITS = 44
# Sentinel frame for a guest leaf whose gfn the host has not backed yet.
UNBACKED_FRAME = -1


class FastSystem(System):
    """A ``System`` running on the fastpath core."""

    @advances("guest_sim")
    @charges("ideal_cycles", "tlb_l2_cycles", "sink:tlb_l1_hit")
    def access_batch(self, vas, is_write=False, kind="data", collect_frames=False):
        """Retire every access in ``vas`` (all reads or all writes).

        Equivalent to ``[self.access(va, is_write, kind) for va in vas]``
        in every observable way — counters, stats, LRU orders, clock,
        policy epochs, fault handling — but one call instead of many.
        Returns the translated frames as a list when ``collect_frames``
        is true, else None.
        """
        frames = [] if collect_frames else None
        mmu = self.mmu
        metrics = self.metrics
        m_on = metrics.enabled
        order = mmu.hierarchy._order
        if kind != "data" or self.tracer.enabled or len(order) != 1:
            # Streams the inline loop does not model: take the reference
            # path per op (still faster than caller-side loops). Note a
            # live metrics registry does NOT land here — the inline loop
            # attributes its own fallbacks below.
            if m_on:
                if kind != "data":
                    reason = "fastpath.fallback.kind"
                elif self.tracer.enabled:
                    reason = "fastpath.fallback.tracing"
                else:
                    reason = "fastpath.fallback.multi_granule"
                stream_ops = 0
            access = self.access
            if frames is None:
                for va in vas:
                    access(va, is_write, kind)
                    if m_on:
                        stream_ops += 1
            else:
                for va in vas:
                    frames.append(access(va, is_write, kind).frame)
                    if m_on:
                        stream_ops += 1
            if m_on:
                metrics.inc(reason, stream_ops)
            return frames

        proc = self.kernel.current
        if proc is None:
            raise SimulationError("no runnable process")
        hierarchy = mmu.hierarchy.hierarchies[order[0]]
        l1 = hierarchy.l1d
        l2 = hierarchy.l2
        page_shift = l1.page_shift
        l1_keys = l1._keys
        l1_vals = l1._vals
        l1_nsets = l1.num_sets
        l1_ways = l1.ways
        l1_stats = l1.stats
        l2_stats = l2.stats if l2 is not None else None
        if l2 is not None:
            l2_keys = l2._keys
            l2_vals = l2._vals
            l2_nsets = l2.num_sets
        counters = mmu.counters
        cost = self.cost
        c_op = cost.cycles_per_op
        c_l1 = cost.cycles_tlb_l1_hit
        c_l2 = cost.cycles_tlb_l2_hit
        clock = self.clock
        access = self.access
        ctx = self._ctx_for(proc)
        asid = ctx.asid
        # Local accumulators, flushed at epochs/fallbacks/return. Every
        # inline op is a clean L1 or L2 hit, so ops = l1h + l2h.
        a_l1h = 0  # clean L1 hits
        a_l2h = 0  # clean L2 hits (each implies one L1 miss + promotion)
        a_evict = 0  # L1 evictions caused by promotions
        epoch_ops = self._epoch_ops

        def _flush():
            nonlocal a_l1h, a_l2h, a_evict
            a_ops = a_l1h + a_l2h
            if a_ops:
                if m_on:
                    metrics.inc("fastpath.inline_ops", a_ops)
                self.ops += a_ops
                if is_write:
                    self.writes += a_ops
                else:
                    self.reads += a_ops
                self.ideal_cycles += a_ops * c_op
                cycles = a_ops * c_op
                if c_l1:
                    cycles += a_l1h * c_l1
                if a_l2h:
                    l2_cycles = a_l2h * c_l2
                    cycles += l2_cycles
                    self.tlb_l2_cycles += l2_cycles
                    l1_stats.misses += a_l2h
                    l1_stats.fills += a_l2h
                    l1_stats.evictions += a_evict
                    l2_stats.hits += a_l2h
                    counters.tlb_hits_l2 += a_l2h
                clock.advance(cycles)
                l1_stats.hits += a_l1h
                counters.tlb_hits_l1 += a_l1h
                a_l1h = a_l2h = a_evict = 0
            self._epoch_ops = epoch_ops

        def _resync():
            nonlocal proc, ctx, asid, epoch_ops
            proc = self.kernel.current
            ctx = self._ctx_for(proc)
            asid = ctx.asid
            epoch_ops = self._epoch_ops

        for va in vas:
            vpn = va >> page_shift
            key = (vpn << KEY_ASID_BITS) | asid
            set_index = vpn % l1_nsets
            keys = l1_keys[set_index]
            if keys and keys[-1] == key:
                # Already MRU: hit with no LRU work at all.
                val = l1_vals[set_index][-1]
                if is_write and val & 3 != 3:
                    # Write upgrade: re-walk on the reference path. The
                    # probe above left no trace, so access() redoes it
                    # with reference-identical effects.
                    if m_on:
                        metrics.inc("fastpath.fallback.write_upgrade")
                    _flush()
                    outcome = access(va, is_write, kind)
                    if frames is not None:
                        frames.append(outcome.frame)
                    _resync()
                    continue
                a_l1h += 1
                epoch_ops += 1
                if frames is not None:
                    frames.append(val >> VAL_FRAME_BITS)
                if epoch_ops >= POLICY_EPOCH_OPS:
                    _flush()
                    self._policy_epoch()
                    _resync()
                continue
            if key in keys:
                i = keys.index(key)
                vals = l1_vals[set_index]
                val = vals[i]
                if is_write and val & 3 != 3:
                    if m_on:
                        metrics.inc("fastpath.fallback.write_upgrade")
                    _flush()
                    outcome = access(va, is_write, kind)
                    if frames is not None:
                        frames.append(outcome.frame)
                    _resync()
                    continue
                # LRU -> MRU (the tail check above proves i isn't last).
                del keys[i]
                del vals[i]
                keys.append(key)
                vals.append(val)
                a_l1h += 1
                epoch_ops += 1
                if frames is not None:
                    frames.append(val >> VAL_FRAME_BITS)
                if epoch_ops >= POLICY_EPOCH_OPS:
                    _flush()
                    self._policy_epoch()
                    _resync()
                continue
            if l2 is not None:
                set2 = vpn % l2_nsets
                keys2 = l2_keys[set2]
                if key in keys2:
                    j = keys2.index(key)
                    vals2 = l2_vals[set2]
                    val = vals2[j]
                    if not is_write or val & 3 == 3:
                        # Clean L2 hit: refresh L2 LRU, promote into L1
                        # (evicting its LRU victim if the set is full).
                        if j != len(keys2) - 1:
                            del keys2[j]
                            del vals2[j]
                            keys2.append(key)
                            vals2.append(val)
                        vals = l1_vals[set_index]
                        if len(keys) >= l1_ways:
                            del keys[0]
                            del vals[0]
                            a_evict += 1
                        keys.append(key)
                        vals.append(val)
                        a_l2h += 1
                        epoch_ops += 1
                        if frames is not None:
                            frames.append(val >> VAL_FRAME_BITS)
                        if epoch_ops >= POLICY_EPOCH_OPS:
                            _flush()
                            self._policy_epoch()
                            _resync()
                        continue
                    # Dirty/read-only L2 hit under a write: an upgrade
                    # re-walk, same fallback sequence as the L1 sites.
                    if m_on:
                        metrics.inc("fastpath.fallback.write_upgrade")
                    _flush()
                    outcome = access(va, is_write, kind)
                    if frames is not None:
                        frames.append(outcome.frame)
                    _resync()
                    continue
            # Full miss: reference path.
            if m_on:
                metrics.inc("fastpath.fallback.miss")
            _flush()
            outcome = access(va, is_write, kind)
            if frames is not None:
                frames.append(outcome.frame)
            _resync()
        _flush()
        return frames


# -- final translation state (the equivalence suite's third witness) -------


@takes(gfn="gfn")
@returns("hfn")
def _composed_host_frame(hostpt, gfn):
    """The host frame backing ``gfn``, or UNBACKED_FRAME if none yet."""
    hfn = hostpt.translate(gfn)
    return UNBACKED_FRAME if hfn is None else hfn


@takes(va="gva", gfn="gfn")
def _record_page(state, hostpt, asid, va, gfn, meta):
    """Record one 4 KB page's end-to-end translation into ``state``."""
    key = (asid << SNAPSHOT_ASID_BITS) | (va >> 12)
    if hostpt is None:
        state.add(key, gfn, meta)
    else:
        state.add(key, _composed_host_frame(hostpt, gfn), meta)


@takes(va="gva")
def _record_leaf(state, hostpt, asid, va, pte, level):
    """Break one guest leaf into 4 KB pages and record each one."""
    span_frames = 1 << (level_shift(level) - 12)
    meta = pack_meta(level_shift(level), pte.writable, pte.dirty)
    for index in range(span_frames):
        _record_page(state, hostpt, asid, va + (index << 12),
                     pte.frame + index, meta)


def final_translation_state(system):
    """Every live process's composed translations as a FlatLeafMap.

    For virtualized modes each present guest leaf is composed through
    the VMM's host table (gVA -> gPA -> hPA); native records VA -> PA
    directly. Two systems that executed the same stream must produce
    equal maps — this is the "final translation state" leg of the
    fastpath equivalence argument, alongside RunMetrics and trap counts.
    """
    hostpt = system.vmm.hostpt if system.vmm is not None else None
    state = FlatLeafMap()
    for pid in sorted(system.kernel.processes):
        proc = system.kernel.processes[pid]
        for va, pte, level in proc.page_table.iter_leaves():
            if pte.present:
                _record_leaf(state, hostpt, proc.asid, va, pte, level)
    return state
