"""Run metrics: the simulator's answer to `perf` + the Table IV model.

``RunMetrics`` carries raw counts plus the derived quantities the paper
reports: execution-time overheads split into page-walk and VMM
components (Figure 5), the degree-of-nesting mix and average memory
references per TLB miss (Table VI).
"""

from repro.hw.walkstats import NESTED_FULL
from repro.vmm import traps as T

# Table VI column order: full shadow, switch after 3/2/1/0 shadow levels,
# full nested. Keys into MMUCounters.walks_by_depth.
TABLE6_COLUMNS = (
    ("Shadow", 0),
    ("L4", 1),
    ("L3", 2),
    ("L2", 3),
    ("L1", 4),
    ("Nested", NESTED_FULL),
)


#: Version of the ``to_dict`` wire format. Bump on any change to its
#: keys or value encodings; ``from_dict`` refuses payloads from other
#: versions so a stale result cache or mixed-version worker pool fails
#: loudly instead of silently misreading counters.
METRICS_SCHEMA_VERSION = 1


class RunMetrics:
    """Everything measured during one simulated run."""

    def __init__(self, label, mode, page_size):
        self.label = label
        self.mode = mode
        self.page_size = page_size
        # Operation stream.
        self.ops = 0
        self.reads = 0
        self.writes = 0
        # Cycles by component.
        self.total_cycles = 0
        self.ideal_cycles = 0
        self.walk_cycles = 0
        self.tlb_l2_cycles = 0
        self.vmm_cycles = 0
        self.guest_fault_cycles = 0
        # Hardware counter snapshot.
        self.tlb_hits_l1 = 0
        self.tlb_hits_l2 = 0
        self.tlb_misses = 0
        self.walk_refs = 0
        self.fault_refs = 0
        self.walks_by_depth = {}
        # VMM counter snapshot.
        self.trap_counts = {}
        self.trap_cycles = {}
        self.guest_faults = 0
        self.cow_faults = 0

    # -- derived quantities (the paper's reporting) --------------------------

    @property
    def vmtraps(self):
        return sum(self.trap_counts.get(k, 0) for k in T.ALL_TRAP_KINDS)

    @property
    def page_walk_overhead(self):
        """Figure 5 bottom bar: page-walk cycles / ideal cycles.

        L2-TLB hit latency is excluded, matching the paper's use of the
        WALK_DURATION performance counters (STLB hits are part of the
        memory-system baseline, not of walk overhead).
        """
        if not self.ideal_cycles:
            return 0.0
        return self.walk_cycles / self.ideal_cycles

    @property
    def vmm_overhead(self):
        """Figure 5 top bar: VMM intervention cycles / ideal cycles."""
        if not self.ideal_cycles:
            return 0.0
        return self.vmm_cycles / self.ideal_cycles

    @property
    def total_overhead(self):
        if not self.ideal_cycles:
            return 0.0
        return (self.total_cycles - self.ideal_cycles) / self.ideal_cycles

    @property
    def avg_refs_per_miss(self):
        """Table VI right column: average memory accesses per TLB miss."""
        if not self.tlb_misses:
            return 0.0
        return self.walk_refs / self.tlb_misses

    @property
    def miss_rate_per_kop(self):
        if not self.ops:
            return 0.0
        return 1000.0 * self.tlb_misses / self.ops

    def mode_mix(self):
        """Fraction of TLB misses served at each degree of nesting.

        Only meaningful for agile-mode runs (Table VI); other modes
        return an empty dict.
        """
        total = sum(self.walks_by_depth.values())
        if not total:
            return {}
        return {
            name: self.walks_by_depth.get(key, 0) / total
            for name, key in TABLE6_COLUMNS
        }

    # -- serialization (result cache / pool workers) --------------------------

    def to_dict(self):
        """Full-fidelity, JSON-safe form: every raw counter, no rounding.

        ``from_dict(to_dict(m))`` reproduces ``m`` exactly (ints and
        floats bit-identical), which is what lets the sweep runner treat
        cached, serial, and pool-worker results interchangeably.
        ``walks_by_depth`` is stored as sorted pairs because its keys mix
        ints with the :data:`NESTED_FULL` sentinel string.
        """
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "label": self.label,
            "mode": self.mode,
            "page_size": str(self.page_size),
            "ops": self.ops,
            "reads": self.reads,
            "writes": self.writes,
            "total_cycles": self.total_cycles,
            "ideal_cycles": self.ideal_cycles,
            "walk_cycles": self.walk_cycles,
            "tlb_l2_cycles": self.tlb_l2_cycles,
            "vmm_cycles": self.vmm_cycles,
            "guest_fault_cycles": self.guest_fault_cycles,
            "tlb_hits_l1": self.tlb_hits_l1,
            "tlb_hits_l2": self.tlb_hits_l2,
            "tlb_misses": self.tlb_misses,
            "walk_refs": self.walk_refs,
            "fault_refs": self.fault_refs,
            "walks_by_depth": sorted(
                ([key, count] for key, count in self.walks_by_depth.items()),
                key=lambda pair: str(pair[0])),
            "trap_counts": dict(self.trap_counts),
            "trap_cycles": dict(self.trap_cycles),
            "guest_faults": self.guest_faults,
            "cow_faults": self.cow_faults,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`RunMetrics` from its :meth:`to_dict` form.

        Raises ``ValueError`` on an unknown ``schema_version`` — payloads
        written before versioning (no key) are version 1.
        """
        from repro.common.params import PAGE_SIZES

        version = data.get("schema_version", 1)
        if version != METRICS_SCHEMA_VERSION:
            raise ValueError(
                "RunMetrics payload has schema_version %r but this build "
                "reads version %d; clear the result cache (or regenerate "
                "the payload) and retry" % (version, METRICS_SCHEMA_VERSION))

        metrics = cls(data["label"], data["mode"], PAGE_SIZES[data["page_size"]])
        for name in (
                "ops", "reads", "writes", "total_cycles", "ideal_cycles",
                "walk_cycles", "tlb_l2_cycles", "vmm_cycles",
                "guest_fault_cycles", "tlb_hits_l1", "tlb_hits_l2",
                "tlb_misses", "walk_refs", "fault_refs", "guest_faults",
                "cow_faults"):
            setattr(metrics, name, data[name])
        metrics.walks_by_depth = {key: count
                                  for key, count in data["walks_by_depth"]}
        metrics.trap_counts = dict(data["trap_counts"])
        metrics.trap_cycles = dict(data["trap_cycles"])
        return metrics

    def summary(self):
        """A compact dict for reports and benchmarks."""
        return {
            "label": self.label,
            "mode": self.mode,
            "page_size": str(self.page_size),
            "ops": self.ops,
            "tlb_misses": self.tlb_misses,
            "avg_refs_per_miss": round(self.avg_refs_per_miss, 2),
            "vmtraps": self.vmtraps,
            "page_walk_overhead": round(self.page_walk_overhead, 4),
            "vmm_overhead": round(self.vmm_overhead, 4),
            "total_overhead": round(self.total_overhead, 4),
        }

    def __repr__(self):
        return "RunMetrics(%r)" % (self.summary(),)
