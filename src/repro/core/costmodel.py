"""The Table IV performance model.

The paper evaluates agile paging with a linear model over measured
fractions (Section VI). This module is a formula-for-formula port:

* ``E_ideal = E_2M - T_2M`` — ideal time: best measured execution minus
  its TLB-miss cycles,
* ``PW = (E - E_ideal - H) / E_ideal`` — page-walk overhead,
* ``VMM = H / E_ideal`` — hypervisor overhead,
* ``C = T / M`` — average cycles per TLB miss,
* the agile projections ``PW_A`` and ``VMM_A`` built from the two-step
  fractions ``FN_i`` (TLB misses served with the switch at level *i*)
  and ``FV_i`` (VMtraps eliminated, by reason *i*).

The model is usable standalone (fed by the two-step methodology in
:mod:`repro.analysis.twostep`) and is cross-checked against the direct
simulation in the test suite.

Units: this is the one layer where cycles are *floats* — averages,
scaled projections, and overhead ratios, not integer clock ticks. Every
cycle-valued input and output is still a ``duration`` in the
``repro.common.timedomain`` sense (an interval, never an epoch on some
clock), and the annotations below declare exactly that; the simulator's
integer clocks stay on the other side of
:func:`measured_run_from_metrics`. Overhead ratios (``PW``, ``VMM``)
are dimensionless and carry no annotation.
"""

from dataclasses import dataclass, field

from repro.common.timedomain import cycles


def _ratio(numerator, denominator):
    """``numerator / denominator`` with the model's uniform zero guard.

    Every division in the model means "per unit of a measured count or
    time"; a zero (or unmeasured) denominator means the quantity is
    undefined and the paper's tables would show a dash — rendered here
    as 0.0 so downstream arithmetic stays total.
    """
    if not denominator:
        return 0.0
    return numerator / denominator


@dataclass(frozen=True)
class MeasuredRun:
    """Counters for one (workload, configuration) run, as `perf` gives.

    Fields mirror Section VI: E (total cycles), M (TLB misses), T
    (cycles spent on TLB misses), H (cycles spent in the hypervisor).
    All cycle fields are durations (elapsed intervals, no epoch).
    """

    total_cycles: float
    tlb_misses: float
    tlb_miss_cycles: float
    hypervisor_cycles: float = 0.0

    @property
    @cycles("duration")
    def avg_cycles_per_miss(self):
        """Table IV: C = T / M."""
        return _ratio(self.tlb_miss_cycles, self.tlb_misses)


@cycles("duration")
def ideal_cycles(best_run):
    """Table IV: E_ideal = E_2M - T_2M (from the best native run)."""
    return best_run.total_cycles - best_run.tlb_miss_cycles


@cycles(e_ideal="duration")
def page_walk_overhead(run, e_ideal):
    """Table IV: PW = (E - E_ideal - H) / E_ideal."""
    return _ratio(run.total_cycles - e_ideal - run.hypervisor_cycles,
                  e_ideal)


@cycles(e_ideal="duration")
def vmm_overhead(run, e_ideal):
    """Table IV: VMM = H / E_ideal."""
    return _ratio(run.hypervisor_cycles, e_ideal)


@dataclass
class AgileFractions:
    """The two-step methodology's outputs (Section VI).

    ``fn[i]`` — fraction of TLB misses whose translation switches to
    nested mode at level ``i`` (1 = leaf ... 4 = root); misses not in
    any ``fn`` bucket are full-shadow. ``fv[reason]`` — fraction of each
    VMtrap category that agile paging eliminates.
    """

    fn: dict = field(default_factory=dict)  # level -> fraction
    fv: dict = field(default_factory=dict)  # trap kind -> fraction eliminated

    @property
    def shadow_fraction(self):
        return max(0.0, 1.0 - sum(self.fn.values()))


@cycles(e_ideal="duration")
def agile_walk_overhead(fractions, shadow_run, nested_run, base_misses, e_ideal):
    """Table IV: PW_A, the projected agile page-walk overhead.

    The paper's conservative assumption: a miss switching at level 1
    (FN1, leaf-only nesting) pays half the nested *extra* cost beyond
    native; switches at levels 2–4 pay the full nested cost; everything
    else pays shadow cost. ``base_misses`` is M_B: the paper scales by
    the base-native miss count.
    """
    if not base_misses:
        return 0.0
    c_nested = nested_run.avg_cycles_per_miss
    c_shadow = shadow_run.avg_cycles_per_miss
    fn1 = fractions.fn.get(1, 0.0)
    fn_upper = sum(fractions.fn.get(level, 0.0) for level in (2, 3, 4))
    shadow_frac = max(0.0, 1.0 - fn1 - fn_upper)
    cycles_per_miss = (
        c_nested * fn_upper
        + c_shadow * shadow_frac
        + 0.5 * (c_nested + c_shadow) * fn1
    )
    return _ratio(cycles_per_miss * base_misses, e_ideal)


@cycles(e_ideal="duration")
def agile_vmm_overhead(fractions, shadow_run, trap_cycles_by_reason, e_ideal):
    """Table IV: VMM_A = OS - sum_i(FV_i * CE_i).

    ``trap_cycles_by_reason`` maps each VMtrap reason to the cycles
    shadow paging spent on it; agile eliminates fraction FV_i of each.
    """
    eliminated = sum(
        fractions.fv.get(reason, 0.0) * cycles
        for reason, cycles in trap_cycles_by_reason.items()
    )
    remaining = shadow_run.hypervisor_cycles - eliminated
    return _ratio(max(0.0, remaining), e_ideal)


def measured_run_from_metrics(metrics):
    """Adapt a simulator :class:`RunMetrics` to the model's input shape."""
    return MeasuredRun(
        total_cycles=metrics.total_cycles,
        tlb_misses=metrics.tlb_misses,
        tlb_miss_cycles=metrics.walk_cycles,
        hypervisor_cycles=metrics.vmm_cycles,
    )
