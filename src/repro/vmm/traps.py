"""VMtrap taxonomy and accounting.

The paper defines VMtrap latency as "the cycles required for a VMexit
trap and its return plus the work done by the VMM in response to the
VMexit" (Section II-B) and measures costs per trap type with LMbench.
We keep the same taxonomy so the Figure 5 VMM-overhead bars can be
decomposed the same way.
"""

# Trap kinds (VMexits that reach the VMM).
PT_WRITE = "pt_write"  # mediated write to a shadow-covered guest PT page
CONTEXT_SWITCH = "context_switch"  # guest CR3 write under shadow/agile
SHADOW_FILL = "shadow_fill"  # shadow not-present fault: VMM merges an entry
DIRTY_SYNC = "dirty_sync"  # first write to a page: A/D protocol VMtrap
GUEST_FAULT_EXIT = "guest_fault_exit"  # guest #PF intercepted under shadow
HOST_FAULT = "host_fault"  # host PT (EPT) violation: VMM backs a gfn
INVLPG = "invlpg"  # guest INVLPG intercepted under shadow coverage

ALL_TRAP_KINDS = (
    PT_WRITE,
    CONTEXT_SWITCH,
    SHADOW_FILL,
    DIRTY_SYNC,
    GUEST_FAULT_EXIT,
    HOST_FAULT,
    INVLPG,
)

# Hardware-assisted events that *replace* traps (Section IV); tracked
# separately because they cost a page walk, not a VMexit.
AD_ASSIST = "ad_assist"
CR3_CACHE_HIT = "cr3_cache_hit"
# Background VMM work done during the policy scan (nested=>shadow
# reversion rebuilds shadow entries in bulk) — charged, but not a trap.
REVERT_REBUILD = "revert_rebuild"
# SHSP baseline: full shadow-table rebuild on a nested=>shadow switch.
SHSP_REBUILD = "shsp_rebuild"
# VMM-initiated content-based page sharing (Section V): scan + protect.
HOST_SHARE = "host_share"
# Balloon/reclaim under host memory pressure (repro.host): the VMM
# revokes backed frames — host-PT unmaps plus shadow invalidations —
# charged to the victim VM, but not a guest-visible trap.
BALLOON_REVOKE = "balloon_revoke"


class TrapStats:
    """Counts (and attributed cycles) per trap kind.

    :meth:`record` is the single choke point every trap kind flows
    through, which makes it the tracing instrumentation point too: when
    a tracer and clock are attached (``attach_tracer``), every recorded
    kind also becomes a ``vmtrap`` event — so per-kind event counts
    equal ``RunMetrics.trap_counts`` by construction.
    """

    def __init__(self):
        self.counts = {}
        self.cycles = {}
        self._tracer = None
        self._clock = None

    def attach_tracer(self, tracer, clock):
        """Mirror every future :meth:`record` into ``tracer``."""
        self._tracer = tracer
        self._clock = clock

    def record(self, kind, cycles=0):
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.cycles[kind] = self.cycles.get(kind, 0) + cycles
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            # record() runs before the clock advances by `cycles`, so
            # `now` is the trap's begin timestamp and `cycles` its span.
            tracer.vmtrap(self._clock.now, kind, cycles)

    def reset(self):
        """Zero all accounting (start of a measurement window)."""
        self.counts.clear()
        self.cycles.clear()

    @property
    def total_traps(self):
        return sum(self.counts.get(k, 0) for k in ALL_TRAP_KINDS)

    @property
    def total_cycles(self):
        return sum(self.cycles.get(k, 0) for k in ALL_TRAP_KINDS)

    @property
    def total_attributed_cycles(self):
        """All VMM-attributed cycles: traps plus hardware-assist and
        background-scan work done on the VMM's behalf."""
        return sum(self.cycles.values())

    def count(self, kind):
        return self.counts.get(kind, 0)

    def snapshot(self):
        return dict(self.counts)

    def __repr__(self):
        return "TrapStats(%r)" % (self.counts,)
