"""SHSP: selective hardware/software paging (Wang et al., VEE 2011).

The paper's closest prior work and its implicit baseline: a VMM that
monitors TLB misses and guest page-table activity and periodically
switches an *entire* guest process between nested and shadow paging —
temporal selection only, where agile paging is temporal *and* spatial.

The crucial cost SHSP pays (and agile paging avoids) is rebuilding the
entire shadow page table on every nested=>shadow switch, which grows
with the process footprint ("expensive for multi-GB to TB workloads",
Section I). We charge that rebuild per resident page.

Section VII-C: "SHSP performs similarly to the best of the two
techniques ... [agile] exceeds the best of shadow and nested paging";
the ablation benchmark reproduces exactly that comparison.
"""

from repro.common.effects import policy_decision
from repro.common.timedomain import cycles
from repro.vmm import traps as T

# Cycles to merge one guest mapping into the shadow table during a full
# rebuild (KVM-sync-page-scale work, amortized per PTE).
REBUILD_CYCLES_PER_PAGE = 60
# Hysteresis so marginal workloads do not oscillate between techniques.
SWITCH_MARGIN = 1.3

TECH_NESTED = "nested"
TECH_SHADOW = "shadow"


class SHSPWindow:
    """Activity observed during one decision interval."""

    __slots__ = ("tlb_misses", "pt_writes", "trap_cycles")

    def __init__(self):
        self.tlb_misses = 0
        self.pt_writes = 0
        self.trap_cycles = 0


class SHSPController:
    """Per-process technique selection for SHSP mode.

    ``decide`` runs every ``interval`` cycles, following the original
    SHSP heuristic: switch to nested when page-table updates would cost
    more in VMtraps than shadow walks save; switch back to shadow only
    after the update traffic has been quiet for two consecutive windows
    (hysteresis against rebuild thrashing). The whole-table rebuild is
    *charged* on every nested=>shadow switch — it is the price of
    temporal-only selection, not an input the controller can dodge.
    """

    def __init__(self, interval=150_000, miss_save_cycles=40,
                 pt_trap_cycles=2200, quiet_threshold=4):
        self.interval = interval
        self.miss_save_cycles = miss_save_cycles
        self.pt_trap_cycles = pt_trap_cycles
        self.quiet_threshold = quiet_threshold
        self.technique = TECH_SHADOW
        self.window = SHSPWindow()
        self._last_decision = 0
        self._consecutive_quiet = 0
        self.switches = 0

    def note_miss(self):
        self.window.tlb_misses += 1

    def note_pt_write(self):
        self.window.pt_writes += 1

    @policy_decision
    @cycles(now="guest_sim")
    def decide(self, now, resident_pages):
        """Returns the technique to use from now on (may be unchanged)."""
        if now - self._last_decision < self.interval:
            return self.technique
        self._last_decision = now
        window, self.window = self.window, SHSPWindow()
        shadow_savings = window.tlb_misses * self.miss_save_cycles
        shadow_costs = window.pt_writes * self.pt_trap_cycles
        if self.technique == TECH_SHADOW:
            if shadow_costs > shadow_savings * SWITCH_MARGIN:
                self.technique = TECH_NESTED
                self._consecutive_quiet = 0
                self.switches += 1
        else:
            if window.pt_writes <= self.quiet_threshold:
                self._consecutive_quiet += 1
            else:
                self._consecutive_quiet = 0
            if (self._consecutive_quiet >= 2
                    and shadow_savings > shadow_costs * SWITCH_MARGIN):
                self.technique = TECH_SHADOW
                self._consecutive_quiet = 0
                self.switches += 1
        return self.technique


@cycles("duration")
def rebuild_cost_cycles(resident_pages):
    """The full shadow-table (re)build cost SHSP pays on each
    nested=>shadow switch."""
    return resident_pages * REBUILD_CYCLES_PER_PAGE
