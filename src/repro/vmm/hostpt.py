"""The per-VM host (nested) page table: gPA => hPA.

Under nested and agile paging the hardware walks this table, so it must
be a real architectural radix table (Section III-B: "the VMM must build
and maintain a complete host page table"). The VMM backs guest frames
on demand — an unbacked gfn produces a host page fault (EPT violation)
VMexit, which :class:`repro.vmm.vmm.VMM` resolves through this class.
"""

from repro.common.addrspace import returns, takes, translates
from repro.common.params import FOUR_KB
from repro.mem.pagetable import PageTable


class HostPageTable:
    """Maps guest frame numbers to host frames at a fixed granule."""

    def __init__(self, host_mem, page_size=FOUR_KB):
        self.host_mem = host_mem
        self.page_size = page_size
        self.table = PageTable(host_mem, "hPT")

    @property
    def root_frame(self):
        return self.table.root_frame

    @property
    def _frames_per_page(self):
        return 1 << (self.page_size.shift - 12)

    @translates("gfn", "hfn")
    @takes(gfn="gfn")
    @returns("hfn")
    def translate(self, gfn):
        """Host frame backing ``gfn`` or None."""
        translated = self.table.translate(gfn << 12)
        return translated[0] if translated is not None else None

    @takes(gfn="gfn")
    @returns("hfn", None)
    def ensure_mapped(self, gfn):
        """Back ``gfn`` (and, at large granules, its whole block).

        Returns (hfn, was_fault): ``was_fault`` tells the caller whether
        this was a genuine EPT violation needing trap accounting.
        """
        hfn = self.translate(gfn)
        if hfn is not None:
            return hfn, False
        span = self._frames_per_page
        gpa_base = (gfn // span) * span << 12
        if span == 1:
            base_hfn = self.host_mem.alloc_frame()
        else:
            base_hfn = self.host_mem.alloc_contiguous(span)
        self.table.map(gpa_base, base_hfn, self.page_size)
        return self.translate(gfn), True

    @takes(gfn="gfn")
    def leaf_for_gfn(self, gfn):
        """The host leaf PTE covering ``gfn`` (None if unbacked)."""
        _node, _index, pte = self.table.leaf_entry(gfn << 12, self.page_size)
        return pte

    @takes(gfn="gfn")
    def set_writable(self, gfn, writable):
        """Write-(un)protect the host mapping of ``gfn`` (host COW)."""
        return self.table.set_flags(gfn << 12, self.page_size, writable=writable)

    @takes(gfn="gfn")
    def is_dirty(self, gfn):
        """Host-PT dirty bit covering ``gfn`` (False if unbacked)."""
        pte = self.leaf_for_gfn(gfn)
        return bool(pte is not None and pte.dirty)

    @takes(gfn="gfn")
    def clear_dirty(self, gfn):
        """Clear the host dirty bit covering ``gfn`` (policy scan reset)."""
        pte = self.leaf_for_gfn(gfn)
        if pte is not None:
            pte.dirty = False

    @takes(gfn="gfn")
    def mark_dirty(self, gfn):
        """Set the host dirty bit covering ``gfn``.

        Called when the guest writes a gfn through a nested-mode path the
        functional simulator short-circuits (direct gPT updates).
        """
        pte = self.leaf_for_gfn(gfn)
        if pte is not None:
            pte.dirty = True

    @takes(gfn="gfn")
    def unmap(self, gfn):
        """Remove the mapping covering ``gfn`` (ballooning / host swap)."""
        span = self._frames_per_page
        gpa_base = (gfn // span) * span << 12
        return self.table.unmap(gpa_base, self.page_size)

    @returns("gfn")
    def iter_mapped_gfns(self):
        """All backed guest frame numbers, in deterministic (va) order.

        The balloon driver walks this to pick revocation victims; the
        order must be a pure function of mapping history so consolidated
        runs replay identically.
        """
        for va, _pte, _level in self.table.iter_leaves():
            yield va >> 12
