"""The virtual machine monitor.

A KVM-shaped hypervisor for one guest VM. It owns the host page table,
dispatches every VM exit, maintains per-process shadow/agile state, and
runs the Section III-C policies. It also implements the guest-platform
hooks (CR3 writes, INVLPG, process lifecycle) whose costs differ per
paging mode — the heart of the paper's trade-off.

Cost accounting: every trap advances the shared clock by that trap
kind's cost and records it in :class:`repro.vmm.traps.TrapStats`, so
Figure 5's "VMM intervention" bars can be regenerated directly.
"""

from repro.common.config import MODE_AGILE, MODE_NESTED, MODE_SHADOW, MODE_SHSP
from repro.common.effects import policy_decision, trap_handler
from repro.common.errors import SimulationError
from repro.common.params import LEAF_LEVEL, ROOT_LEVEL, pt_index
from repro.common.timedomain import advances, charges, cycles
from repro.guest.kernel import GuestPlatform
from repro.hw.cr3cache import CR3Cache
from repro.hw.walkstats import TranslationContext
from repro.mem.pagetable import PageTableObserver
from repro.obs.events import POLICY_SHSP_SWITCH
from repro.obs.tracer import NULL_TRACER
from repro.vmm import traps as T
from repro.vmm.hostpt import HostPageTable
from repro.vmm.invariants import InvariantChecker
from repro.vmm.policies import ProcessPolicy
from repro.vmm.shadowmgr import NODE_SHADOW, ShadowManager
from repro.vmm.shsp import SHSPController, TECH_SHADOW, rebuild_cost_cycles
from repro.vmm.traps import TrapStats


class GuestPTObserver(PageTableObserver):
    """Routes one process's guest-PT mutations into the VMM."""

    def __init__(self, vmm, pid):
        self.vmm = vmm
        self.pid = pid

    def node_allocated(self, table, node, parent):
        self.vmm._on_gpt_node_allocated(self.pid, node, parent)

    def pte_written(self, table, node, index, old, new):
        self.vmm._on_gpt_write(self.pid, node, index, old, new)

    def node_freed(self, table, node):
        self.vmm._on_gpt_node_freed(self.pid, node)


class ProcState:
    """Everything the VMM keeps per guest process."""

    __slots__ = ("pid", "manager", "policy", "ctx", "proc", "shsp")

    def __init__(self, pid):
        self.pid = pid
        self.manager = None
        self.policy = None
        self.ctx = None
        self.proc = None
        self.shsp = None


class VMM(GuestPlatform):
    """The hypervisor for one VM, in nested, shadow, or agile mode."""

    def __init__(self, config, guest_mem, host_mem, mmu, clock):
        if not config.virtualized:
            raise SimulationError("VMM instantiated for a native machine")
        self.config = config
        self.mode = config.mode
        self.guest_mem = guest_mem
        self.host_mem = host_mem
        self.mmu = mmu
        self.clock = clock
        self.cost = config.cost
        self.hostpt = HostPageTable(host_mem, config.host_granule)
        self.traps = TrapStats()
        self.states = {}
        self.cr3cache = None
        if self.mode == MODE_AGILE and config.hw_cr3_cache:
            self.cr3cache = CR3Cache(config.cr3_cache_entries)
        self._miss_rate_per_kop = 0.0
        # Paranoid mode: re-derive the coherence invariants after every
        # trap and mode switch (simulation-time only, never cycles).
        self.invariants = InvariantChecker(self) if config.paranoid else None
        # Trace-cmd analogue (two-step methodology, Section VI): when set,
        # called as pt_write_hook(node, leaf_va, now) on every mediated
        # guest page-table write.
        self.pt_write_hook = None
        # Observability: null object until System.attach_observability
        # installs a tracer (see attach_tracer).
        self.tracer = NULL_TRACER
        # Balloon clock hand: the last gfn revoked, so successive reclaim
        # episodes sweep the backed set round-robin instead of thrashing
        # the same pages (deterministic: a pure function of revocations).
        self._balloon_hand = -1

    def attach_tracer(self, tracer):
        """Thread ``tracer`` into trap accounting and per-process policies."""
        self.tracer = tracer
        self.traps.attach_tracer(tracer, self.clock)
        for state in self.states.values():
            if state.policy is not None:
                state.policy.attach_tracer(tracer, state.pid)

    # -- cost plumbing --------------------------------------------------------

    @advances("guest_sim")
    @charges("vmm_cycles")
    @cycles(cycles="duration")
    def _trap(self, kind, cycles):
        self.traps.record(kind, cycles)
        self.clock.advance(cycles)

    def _paranoid_after_trap(self, pid, va=None):
        if self.invariants is not None:
            self.invariants.after_trap(pid, va)

    def _paranoid_after_switch(self, pid):
        if self.invariants is not None:
            self.invariants.after_mode_switch(pid)

    def _needs_shadow(self):
        return self.mode in (MODE_SHADOW, MODE_AGILE, MODE_SHSP)

    def _shsp_technique(self, state):
        return state.shsp.technique if state.shsp is not None else None

    # -- GuestPlatform: process lifecycle ----------------------------------------

    def observer_for(self, pid):
        state = ProcState(pid)
        self.states[pid] = state
        if not self._needs_shadow():
            return None
        state.manager = ShadowManager(
            pid,
            self.host_mem,
            self.guest_mem,
            self.hostpt,
            self.config.page_size,
            inval=self.mmu,
            agile=self.mode == MODE_AGILE,
            start_nested=self.config.policy.start_nested,
            ad_assist=self.mode == MODE_AGILE and self.config.hw_ad_assist,
        )
        if self.mode == MODE_AGILE:
            state.policy = ProcessPolicy(self.config.policy)
            if self.tracer.enabled:
                state.policy.attach_tracer(self.tracer, pid)
        elif self.mode == MODE_SHSP:
            state.shsp = SHSPController(interval=self.config.policy.revert_interval)
        return GuestPTObserver(self, pid)

    def process_created(self, proc):
        state = self.states[proc.pid]
        state.proc = proc
        state.ctx = TranslationContext(
            asid=proc.asid,
            mode=self.mode,
            gptr=proc.gptr,
            hptr=self.hostpt.root_frame,
        )
        if state.manager is not None:
            state.ctx.sptr = state.manager.spt.root_frame

    @trap_handler
    def process_destroyed(self, proc):
        state = self.states.pop(proc.pid, None)
        if state is None:
            return
        if state.manager is not None:
            state.manager.destroy()
        if self.cr3cache is not None:
            self.cr3cache.invalidate(proc.gptr)
        self.mmu.invalidate_asid(proc.asid)

    # -- GuestPlatform: TLB maintenance and CR3 ------------------------------------

    @trap_handler
    def invlpg(self, proc, va):
        """Guest INVLPG: free under nested mode, a trap under shadow
        coverage (the paper's "one [VMtrap] to force a TLB flush")."""
        self.mmu.invalidate_page(proc.asid, va)
        if self.mode == MODE_SHADOW:
            self._trap(T.INVLPG, self.cost.vmtrap_base_cycles)
        elif self.mode == MODE_AGILE and self._leaf_under_shadow(proc, va):
            self._trap(T.INVLPG, self.cost.vmtrap_base_cycles)
        elif self.mode == MODE_SHSP:
            state = self.states.get(proc.pid)
            if state is not None and self._shsp_technique(state) == TECH_SHADOW:
                self._trap(T.INVLPG, self.cost.vmtrap_base_cycles)

    @trap_handler
    def flush_tlb(self, proc):
        self.mmu.invalidate_asid(proc.asid)
        if self._needs_shadow():
            self._trap(T.INVLPG, self.cost.vmtrap_base_cycles)

    @trap_handler
    def context_switch(self, old, new):
        """Guest CR3 write.

        Nested: direct. Shadow: always a VMtrap so the VMM can install
        the matching sCR3. Agile + CR3-cache: a hit installs the shadow
        root in hardware with no exit (Section IV).
        """
        if not self._needs_shadow():
            return
        state = self.states.get(new.pid)
        if state is None or state.manager is None:
            self._trap(T.CONTEXT_SWITCH, self.cost.vmtrap_context_switch_cycles)
            return
        if self.mode == MODE_SHSP and self._shsp_technique(state) != TECH_SHADOW:
            return  # nested phase: the guest writes CR3 directly
        if self.cr3cache is not None:
            if self.cr3cache.lookup(new.gptr) is not None:
                self.traps.record(T.CR3_CACHE_HIT, 0)
                return
            self._trap(T.CONTEXT_SWITCH, self.cost.vmtrap_context_switch_cycles)
            self.cr3cache.insert(new.gptr, state.manager.spt.root_frame)
            return
        self._trap(T.CONTEXT_SWITCH, self.cost.vmtrap_context_switch_cycles)

    def _leaf_under_shadow(self, proc, va):
        """Is the guest PT *leaf node* covering ``va`` shadow-covered?"""
        state = self.states.get(proc.pid)
        if state is None or state.manager is None:
            return False
        manager = state.manager
        if manager.fully_nested:
            return False
        node = manager._guest_node(manager.root_gfn)
        meta = manager.node_meta[manager.root_gfn]
        for level in range(ROOT_LEVEL, LEAF_LEVEL, -1):
            if meta.mode != NODE_SHADOW:
                return False
            pte = node.get(pt_index(va, level))
            if pte is None or not pte.present or pte.huge:
                break
            child_meta = manager.node_meta.get(pte.frame)
            if child_meta is None:
                break
            node = manager._guest_node(pte.frame)
            meta = child_meta
        return meta.mode == NODE_SHADOW

    # -- guest PT observer events ------------------------------------------------------

    @trap_handler
    def _on_gpt_node_allocated(self, pid, node, parent):
        state = self.states[pid]
        state.manager.on_node_allocated(node, parent)

    @trap_handler
    def _on_gpt_node_freed(self, pid, node):
        state = self.states.get(pid)
        if state is not None and state.manager is not None:
            state.manager.on_node_freed(node)

    @trap_handler
    def _on_gpt_write(self, pid, node, index, old, new):
        state = self.states[pid]
        kind, leaf_va = state.manager.on_pte_written(node, index, old, new)
        if state.shsp is not None:
            # SHSP monitors PT update rates in both phases.
            state.shsp.note_pt_write()
        if kind != "mediated":
            return
        self._trap(T.PT_WRITE, self.cost.vmtrap_pt_write_cycles)
        if self.pt_write_hook is not None:
            self.pt_write_hook(node, leaf_va, self.clock.now)
        switched = False
        if state.policy is not None:
            switched = state.policy.note_write(
                state.manager, node.frame, self.clock.now)
        if switched:
            self._paranoid_after_switch(pid)
        else:
            self._paranoid_after_trap(pid, leaf_va)

    # -- VM exit handlers (walker faults) --------------------------------------------------

    @trap_handler
    def handle_host_fault(self, proc, fault):
        """EPT-violation analogue: back the gfn (or resolve host COW)."""
        gfn = fault.gpa >> 12
        hfn, was_new = self.hostpt.ensure_mapped(gfn)
        if not was_new and fault.is_write:
            # Existing read-only mapping: host-side COW resolution.
            self.hostpt.set_writable(gfn, True)
        self._trap(T.HOST_FAULT, self.cost.vmtrap_host_fault_cycles)
        self.mmu.invalidate_nested_gfn(gfn)
        self._paranoid_after_trap(proc.pid, fault.va)
        return "retry"

    @trap_handler
    def handle_shadow_fault(self, proc, fault):
        """Shadow not-present: merge an entry, or inject a guest #PF."""
        state = self.states[proc.pid]
        outcome = state.manager.fill_for(fault.va)
        self._trap(T.SHADOW_FILL, self.cost.vmtrap_shadow_fill_cycles)
        self._paranoid_after_trap(proc.pid, fault.va)
        if outcome == "guest_fault":
            return "guest_fault"
        return "retry"

    @trap_handler
    @advances("guest_sim")
    @charges("vmm_cycles")
    def handle_shadow_protection(self, proc, fault):
        """Write to a read-only shadow leaf: A/D protocol or guest COW.

        With the Section IV hardware assist the dirty-bit update is done
        by the page walker (charged as a nested walk's worth of memory
        references) instead of a VMtrap.
        """
        state = self.states[proc.pid]
        manager = state.manager
        outcome = manager.protection_fix(fault.va)
        if outcome == "dirty_fixed":
            if manager.ad_assist:
                cycles = 24 * self.cost.cycles_per_walk_ref
                self.traps.record(T.AD_ASSIST, cycles)
                self.clock.advance(cycles)
            else:
                self._trap(T.DIRTY_SYNC, self.cost.vmtrap_dirty_sync_cycles)
            self._paranoid_after_trap(proc.pid, fault.va)
            return "retry"
        if outcome == "refill":
            return self.handle_shadow_fault(proc, fault)
        self._trap(T.GUEST_FAULT_EXIT, self.cost.vmtrap_base_cycles)
        self._paranoid_after_trap(proc.pid, fault.va)
        return "guest_fault"

    # -- translation context -----------------------------------------------------------------

    def ctx_for(self, proc):
        """The hardware translation context, refreshed from agile state."""
        state = self.states[proc.pid]
        ctx = state.ctx
        if self.mode == MODE_AGILE:
            manager = state.manager
            ctx.sptr = None if manager.fully_nested else manager.spt.root_frame
            ctx.root_switch = manager.root_switched
        elif self.mode == MODE_SHSP:
            # Temporal selection: the whole process runs one technique.
            ctx.mode = self._shsp_technique(state)
            ctx.sptr = state.manager.spt.root_frame
        return ctx

    # -- policy driving --------------------------------------------------------------------------

    def set_miss_rate(self, miss_rate_per_kop):
        """Recent TLB miss pressure, fed by the simulator each epoch."""
        self._miss_rate_per_kop = miss_rate_per_kop

    @policy_decision
    @advances("guest_sim")
    @charges("vmm_cycles")
    def policy_tick(self):
        """Run periodic policy work for every agile process."""
        if self.mode == MODE_SHSP:
            return self._shsp_tick()
        if self.mode != MODE_AGILE:
            return 0
        now = self.clock.now
        reverted = 0
        for state in self.states.values():
            if state.policy is None or state.manager is None:
                continue
            was_fully_nested = state.manager.fully_nested
            state_reverted = state.policy.tick(
                state.manager, self.hostpt, now, self._miss_rate_per_kop
            )
            reverted += state_reverted
            if state_reverted or was_fully_nested != state.manager.fully_nested:
                self._paranoid_after_switch(state.pid)
        if reverted:
            # Background scan work: rebuilding reverted shadow nodes.
            cycles = 1200 * reverted
            self.traps.record(T.REVERT_REBUILD, cycles)
            self.clock.advance(cycles)
        return reverted

    @policy_decision
    def _shsp_tick(self):
        """SHSP decision epoch: pick one technique per process."""
        misses = self.mmu.counters.tlb_misses
        # max() guards against hardware-counter resets at measurement
        # boundaries (the counter restarts below its previous value).
        delta = max(0, misses - getattr(self, "_shsp_miss_base", 0))
        self._shsp_miss_base = misses
        switched = 0
        for state in self.states.values():
            if state.shsp is None or state.proc is None:
                continue
            # Approximation: recent misses are attributed to every
            # controller (one main process dominates in practice).
            state.shsp.window.tlb_misses += delta
            before = state.shsp.technique
            after = state.shsp.decide(self.clock.now, state.proc.resident_pages)
            if after != before:
                self._shsp_switch(state, after)
                switched += 1
        return switched

    @policy_decision
    @advances("guest_sim")
    @charges("vmm_cycles")
    def _shsp_switch(self, state, technique):
        """Move one whole process between the two constituent modes."""
        manager = state.manager
        if self.tracer.enabled:
            # `node` reuses its slot to carry the chosen technique name.
            self.tracer.policy(self.clock.now, POLICY_SHSP_SWITCH,
                               pid=state.pid, node=technique)
        self.mmu.flush_pwc()
        if technique == TECH_SHADOW:
            manager.enable_shadow_coverage()
            rebuilt = manager.rebuild_full(state.proc.page_table)
            cycles = rebuild_cost_cycles(rebuilt)
            self.traps.record(T.SHSP_REBUILD, cycles)
            self.clock.advance(cycles)
        else:
            manager.fully_nested = True
        self._paranoid_after_switch(state.pid)

    # -- host-level content-based page sharing (Section V) -----------------------

    @trap_handler
    @advances("guest_sim")
    @charges("vmm_cycles")
    def host_share_pages(self, gfns, cycles_per_page=200):
        """VMM-initiated page sharing: write-protect guest frames.

        Models KSM-style reclamation *by the VMM* (Section V): the host
        page-table entries covering ``gfns`` are marked read-only so the
        next guest write takes a host COW fault, and every cached or
        shadowed translation of those frames is invalidated ("changes to
        the host page table (and shadow page table if applicable)").

        The memory dedup itself is abstracted — what the paper's
        evaluation cares about is the fault/invalidation traffic, which
        this reproduces exactly. Returns the number of frames protected.
        """
        protected = 0
        shared_hfns = set()
        for gfn in gfns:
            pte = self.hostpt.leaf_for_gfn(gfn)
            if pte is None:
                continue
            self.hostpt.set_writable(gfn, False)
            shared_hfns.add(self.hostpt.translate(gfn))
            self.mmu.invalidate_nested_gfn(gfn)
            protected += 1
        if not protected:
            return 0
        # Shadow tables embed host frames: drop the affected leaves.
        for state in self.states.values():
            if state.manager is None:
                continue
            spt = state.manager.spt
            for va, spte, _level in list(spt.iter_leaves()):
                if spte.frame in shared_hfns:
                    state.manager._zap_position(
                        _level, va
                    )
                    self.mmu.invalidate_page(state.manager.asid, va)
        # Host-PT permissions changed: all combined (gVA=>hPA) TLB
        # entries derived from them are suspect — INVEPT-style flush.
        self.mmu.flush_all()
        cycles = cycles_per_page * protected
        self.traps.record(T.HOST_SHARE, cycles)
        self.clock.advance(cycles)
        return protected

    # -- consolidated-host entry points (repro.host) ------------------------------

    def vm_preempt(self):
        """The host descheduled this VM's vCPU.

        VMCS state save is the *host's* cost (charged as part of the
        world switch by :class:`repro.host.scheduler.VCpuScheduler`), so
        nothing is recorded against this VM — a preempted guest must
        replay identically to an uninterrupted one.
        """

    def vm_resume(self, flush_tlb=False):
        """This VM's vCPU is back on a core.

        ``flush_tlb`` models hardware without VPID-style address-space
        tags: the incoming world's TLB entries cannot coexist with the
        outgoing one's, so every cached translation is dropped. With
        tags (the default) resume is free, as on modern hardware.
        """
        if flush_tlb:
            self.mmu.flush_all()

    @trap_handler
    def balloon_revoke(self, count, cycles_per_page=300):
        """Revoke up to ``count`` backed host frames (balloon inflate).

        The host is under memory pressure and this VM is the victim: the
        balloon driver "allocates" guest pages whose backing frames the
        VMM hands back. For each revoked mapping the host PT entry is
        unmapped, shadow leaves embedding the freed host frame are
        zapped, and cached translations are invalidated — the next guest
        touch takes a host fault and gets re-backed (agile switching-bit
        churn and shadow refills included). Clean pages are preferred,
        swept round-robin from the balloon hand.

        Returns the number of host frames freed to this VM's allocator
        (the host ledger is credited by the metered memory itself).
        """
        mapped = sorted(self.hostpt.iter_mapped_gfns())
        if not mapped:
            return 0
        # Rotate the sweep to start just past the last revoked gfn.
        start = 0
        while start < len(mapped) and mapped[start] <= self._balloon_hand:
            start += 1
        order = mapped[start:] + mapped[:start]
        victims = [g for g in order if not self.hostpt.is_dirty(g)]
        victims += [g for g in order if self.hostpt.is_dirty(g)]
        span = self.hostpt._frames_per_page
        freed = 0
        revoked_hfns = set()
        for gfn in victims:
            if freed >= count:
                break
            pte = self.hostpt.unmap(gfn)
            if pte is None:
                continue
            for offset in range(span):
                self.host_mem.free_frame(pte.frame + offset)
                revoked_hfns.add(pte.frame + offset)
            freed += span
            self._balloon_hand = gfn
            self.mmu.invalidate_nested_gfn(gfn)
        if not revoked_hfns:
            return 0
        # Shadow tables embed host frames: drop leaves pointing at the
        # frames we just gave back (same protocol as host_share_pages).
        for state in self.states.values():
            if state.manager is None:
                continue
            spt = state.manager.spt
            for va, spte, _level in list(spt.iter_leaves()):
                if spte.frame in revoked_hfns:
                    state.manager._zap_position(_level, va)
                    self.mmu.invalidate_page(state.manager.asid, va)
        # Host mappings vanished: every combined translation is suspect.
        self.mmu.flush_all()
        cycles = cycles_per_page * (freed // span or 1)
        self._trap(T.BALLOON_REVOKE, cycles)
        return freed

    # -- introspection ------------------------------------------------------------------------------

    def nested_coverage(self, proc):
        """Fraction of this process's guest PT nodes in nested mode."""
        state = self.states[proc.pid]
        if state.manager is None:
            return 1.0
        meta = state.manager.node_meta
        if not meta:
            return 0.0
        nested = sum(1 for m in meta.values() if m.mode != NODE_SHADOW)
        if state.manager.fully_nested:
            return 1.0
        return nested / len(meta)
