"""Runtime invariant checking for the VMM — "paranoid mode".

The whole point of agile paging is that the shadow page table is
*exactly* coherent with the guest ⊕ host composition, up to the
per-entry switching bit (Sections III-A/III-B). A silent divergence
anywhere in the shadow machinery corrupts every reproduced number, so
this module re-derives the expected state from first principles and
compares, raising a structured :class:`InvariantViolation` carrying the
full walk context when anything disagrees.

Invariants checked (names appear in violations):

* ``shadow-coherence`` — every present, non-switching shadow leaf
  translates its VA exactly as the composed guest ⊕ host tables do, and
  its permissions never exceed them (including the Section III-B
  accessed/dirty protocol: no write-enable before the guest dirty bit,
  unless the Section IV hardware assist maintains A/D bits).
* ``switching-bits`` — a switching entry appears at most once per walk
  path and always names a *nested-mode* guest page-table node at the
  next-lower level (``guest_node`` flag set); the root switching bit
  agrees with the root node's mode.
* ``nested-subtrees`` — nested mode is inherited downward (a shadow-mode
  node never hangs under a nested parent) and no stale shadow coverage
  exists over a nested subtree.
* ``tlb-coherence`` — every cached translation for the process agrees
  with the current composed mapping (no stale frames, no write-enabled
  entries the guest tables forbid).

Enable with ``MachineConfig(paranoid=True)`` (CLI: ``--paranoid``). The
VMM then runs a *scoped* check of the affected walk path after every
VMtrap and a *full-process* sweep after every policy mode switch; the
System runs one final sweep when metrics are collected.
"""

from repro.common.errors import SimulationError
from repro.common.params import LEAF_LEVEL, ROOT_LEVEL, level_shift, pt_index
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW

SHADOW_COHERENCE = "shadow-coherence"
SWITCHING_BITS = "switching-bits"
NESTED_SUBTREES = "nested-subtrees"
TLB_COHERENCE = "tlb-coherence"


class InvariantViolation(SimulationError):
    """A paranoid-mode check failed; carries the full walk context.

    ``invariant`` is one of the module-level invariant names;
    ``context`` maps descriptive keys (pid, va, shadow_path, expected,
    actual, ...) to values. VAs/prefixes are rendered in hex.
    """

    def __init__(self, invariant, message, **context):
        self.invariant = invariant
        self.message = message
        self.context = dict(context)
        lines = ["[%s] %s" % (invariant, message)]
        for key in sorted(self.context):
            lines.append("    %s = %s" % (key, self._render(key, self.context[key])))
        super().__init__("\n".join(lines))

    @staticmethod
    def _render(key, value):
        if isinstance(value, int) and ("va" in key or "prefix" in key):
            return hex(value)
        if isinstance(value, (list, tuple)):
            return " -> ".join(str(item) for item in value)
        return repr(value)

    def to_dict(self):
        """JSON-safe form, for fuzz reproducers and trace payloads."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "context": {key: self._render(key, value)
                        for key, value in sorted(self.context.items())},
        }


class InvariantChecker:
    """Validates one VMM's shadow/guest/host/TLB state on demand.

    ``checks``/``full_checks`` count scoped and full-sweep runs so tests
    can assert paranoid mode actually exercised the machinery.
    """

    def __init__(self, vmm):
        self.vmm = vmm
        self.checks = 0
        self.full_checks = 0

    # -- entry points the VMM calls ------------------------------------------

    def after_trap(self, pid, va=None):
        """Scoped check of the walk path for ``va`` after one VMtrap."""
        state = self.vmm.states.get(pid)
        if state is None:
            return
        self.checks += 1
        if (va is not None and state.manager is not None
                and not state.manager.fully_nested):
            self.check_va(state, va)
        if va is not None:
            self._check_tlb_va(state, va)

    def after_mode_switch(self, pid):
        """Full-process sweep after a shadow<=>nested transition."""
        state = self.vmm.states.get(pid)
        if state is not None:
            self.check_process(state)

    def check_all(self):
        """Sweep every live process (end of run / after policy epochs)."""
        for state in list(self.vmm.states.values()):
            self.check_process(state)

    def check_process(self, state):
        """All four invariants for one process, whole address space."""
        self.full_checks += 1
        manager = state.manager
        if manager is not None and manager.root_gfn is not None:
            if manager.fully_nested:
                pass  # sPT is detached from hardware (ctx.sptr is None)
            else:
                self._check_root_switch(state)
                self._sweep_shadow(state)
                self._check_node_modes(state)
        self._check_tlb(state)

    # -- shadow table sweep ----------------------------------------------------

    def _sweep_shadow(self, state):
        manager = state.manager

        def recurse(node, prefix, path):
            for index, spte in sorted(node.entries.items()):
                va = prefix | (index << level_shift(node.level))
                step = "sPT L%d[%d]=%r" % (node.level, index, spte)
                here = path + [step]
                if not spte.present:
                    continue
                if spte.switching:
                    self._check_switch_entry(state, spte, node.level, va, here)
                    continue  # the walk leaves the shadow table here
                if spte.huge or node.level == LEAF_LEVEL:
                    self._check_leaf(state, spte, node.level, va, here)
                    continue
                child = self._shadow_child(state, spte, va, here)
                recurse(child, va, here)

        recurse(manager.spt.root, 0, [])

    def _shadow_child(self, state, spte, va, path):
        try:
            return state.manager.spt.node_at(spte.frame)
        except SimulationError as error:
            raise InvariantViolation(
                SWITCHING_BITS,
                "shadow interior entry does not reference a shadow node "
                "(a switching bit lost, or a frame corrupted): %s" % error,
                pid=state.pid, va=va, shadow_path=path) from error

    def _check_root_switch(self, state):
        manager = state.manager
        root_meta = manager.node_meta.get(manager.root_gfn)
        if root_meta is None:
            raise InvariantViolation(
                NESTED_SUBTREES, "guest root node is untracked",
                pid=state.pid, root_gfn=manager.root_gfn)
        root_nested = root_meta.mode == NODE_NESTED
        if root_nested != manager.root_switched:
            raise InvariantViolation(
                SWITCHING_BITS,
                "root switching bit disagrees with the root node's mode",
                pid=state.pid, root_mode=root_meta.mode,
                root_switched=manager.root_switched)
        if manager.root_switched and manager.spt.root.entries:
            raise InvariantViolation(
                NESTED_SUBTREES,
                "stale shadow entries survive under a switched root "
                "(the whole walk is nested; they must be dropped)",
                pid=state.pid,
                stale_indices=sorted(manager.spt.root.entries))

    # -- single-entry checks --------------------------------------------------

    def _check_switch_entry(self, state, spte, entry_level, va, path):
        manager = state.manager
        if not spte.guest_node:
            raise InvariantViolation(
                SWITCHING_BITS,
                "switching entry does not carry the guest_node flag; its "
                "frame would be walked as host-physical",
                pid=state.pid, va=va, level=entry_level, shadow_path=path)
        meta = manager.node_meta.get(spte.frame)
        if meta is None:
            raise InvariantViolation(
                SWITCHING_BITS,
                "switching entry names an untracked guest PT node",
                pid=state.pid, va=va, level=entry_level, frame=spte.frame,
                shadow_path=path)
        if meta.mode != NODE_NESTED:
            raise InvariantViolation(
                SWITCHING_BITS,
                "switching entry points at a shadow-mode node: the walk "
                "would carry a second switching boundary (at most one per "
                "walk path)",
                pid=state.pid, va=va, level=entry_level, node_mode=meta.mode,
                shadow_path=path)
        if meta.level != entry_level - 1:
            raise InvariantViolation(
                SWITCHING_BITS,
                "switching entry at level %d must name a level-%d guest "
                "node" % (entry_level, entry_level - 1),
                pid=state.pid, va=va, level=entry_level,
                target_level=meta.level, shadow_path=path)

    def _check_leaf(self, state, spte, leaf_level, va, path):
        """One shadow leaf against the composed guest ⊕ host translation."""
        manager = state.manager
        gpte, guest_level, guest_path = self._guest_walk(state, va, path)
        expected_gfn, expected_level = manager._leaf_backing_gfn(
            va, guest_level, gpte)
        if leaf_level != expected_level:
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "shadow leaf granule disagrees with guest/host granules",
                pid=state.pid, va=va, shadow_level=leaf_level,
                expected_level=expected_level, shadow_path=path,
                guest_path=guest_path)
        expected_hfn = manager.hostpt.translate(expected_gfn)
        if expected_hfn is None:
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "shadow leaf maps a guest frame the host table does not back",
                pid=state.pid, va=va, gfn=expected_gfn, shadow_path=path,
                guest_path=guest_path)
        if spte.frame != expected_hfn:
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "shadow leaf frame diverges from the guest ⊕ host composition",
                pid=state.pid, va=va, actual=spte.frame, expected=expected_hfn,
                gfn=expected_gfn, shadow_path=path, guest_path=guest_path)
        host_pte = manager.hostpt.leaf_for_gfn(expected_gfn)
        if spte.writable and not (gpte.writable and host_pte.writable):
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "shadow leaf is write-enabled beyond the composed permissions",
                pid=state.pid, va=va, guest_writable=gpte.writable,
                host_writable=host_pte.writable, shadow_path=path,
                guest_path=guest_path)
        if spte.writable and not manager.ad_assist and not gpte.dirty:
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "accessed/dirty protocol violated: shadow leaf write-enabled "
                "before the guest dirty bit is set (Section III-B)",
                pid=state.pid, va=va, shadow_path=path, guest_path=guest_path)
        if spte.dirty and not manager.ad_assist and not gpte.dirty:
            # With the Section IV assist the walker sets shadow dirty bits
            # directly, so the guest bit may legitimately lag behind.
            raise InvariantViolation(
                SHADOW_COHERENCE,
                "shadow leaf dirty bit set but the guest leaf is clean",
                pid=state.pid, va=va, shadow_path=path, guest_path=guest_path)

    def _guest_walk(self, state, va, shadow_path):
        """Software-walk the guest table for ``va``; every node on the
        path must be shadow-mode (else the shadow entry is stale
        coverage of a nested subtree). Returns (gpte, level, path)."""
        manager = state.manager
        gnode = manager._guest_node(manager.root_gfn)
        guest_path = []
        for glevel in range(ROOT_LEVEL, LEAF_LEVEL - 1, -1):
            meta = manager.node_meta.get(gnode.frame)
            if meta is None:
                raise InvariantViolation(
                    NESTED_SUBTREES, "guest PT node on a shadowed path is "
                    "untracked", pid=state.pid, va=va, frame=gnode.frame,
                    shadow_path=shadow_path, guest_path=guest_path)
            if meta.mode != NODE_SHADOW:
                raise InvariantViolation(
                    NESTED_SUBTREES,
                    "stale shadow coverage: a shadow entry resolves a VA "
                    "whose guest walk crosses a nested-mode node (the walk "
                    "should divert through a switching bit instead)",
                    pid=state.pid, va=va, node_level=meta.level,
                    node_mode=meta.mode, shadow_path=shadow_path,
                    guest_path=guest_path)
            index = pt_index(va, glevel)
            gpte = gnode.get(index)
            guest_path.append("gPT L%d[%d]=%r" % (glevel, index, gpte))
            if gpte is None or not gpte.present:
                raise InvariantViolation(
                    SHADOW_COHERENCE,
                    "stale shadow entry: the guest table has no mapping here",
                    pid=state.pid, va=va, miss_level=glevel,
                    shadow_path=shadow_path, guest_path=guest_path)
            if gpte.huge or glevel == LEAF_LEVEL:
                return gpte, glevel, guest_path
            gnode = manager._guest_node(gpte.frame)
        raise SimulationError("guest walk fell off the table")  # pragma: no cover

    # -- scoped single-VA check ------------------------------------------------

    def check_va(self, state, va):
        """Validate the shadow walk path covering one VA (post-trap)."""
        manager = state.manager
        node = manager.spt.root
        path = []
        for level in range(ROOT_LEVEL, LEAF_LEVEL - 1, -1):
            index = pt_index(va, level)
            spte = node.get(index)
            path.append("sPT L%d[%d]=%r" % (level, index, spte))
            if spte is None or not spte.present:
                return  # lazy shadow miss: nothing cached, nothing to check
            if spte.switching:
                self._check_switch_entry(state, spte, level, va, path)
                return
            if spte.huge or level == LEAF_LEVEL:
                base = va & ~(level_span_mask(level))
                self._check_leaf(state, spte, level, base, path)
                return
            node = self._shadow_child(state, spte, va, path)

    # -- node-mode map checks ---------------------------------------------------

    def _check_node_modes(self, state):
        """Mode inheritance + no stale shadow coverage of nested nodes."""
        manager = state.manager
        for gfn, meta in manager.node_meta.items():
            if gfn == manager.root_gfn or meta.parent_gfn is None:
                continue
            parent_meta = manager.node_meta.get(meta.parent_gfn)
            if parent_meta is None:
                continue  # parent freed; node is unreachable
            if parent_meta.mode == NODE_NESTED and meta.mode == NODE_SHADOW:
                raise InvariantViolation(
                    NESTED_SUBTREES,
                    "a shadow-mode node hangs under a nested parent; mode "
                    "switches move whole subtrees (Section III-C)",
                    pid=state.pid, node_gfn=gfn, node_level=meta.level,
                    parent_gfn=meta.parent_gfn)
            if (meta.mode == NODE_NESTED and parent_meta.mode == NODE_SHADOW
                    and meta.prefix is not None):
                entry = self._shadow_entry_at(manager, meta.level + 1,
                                              meta.prefix)
                if entry is not None and entry.present and not entry.switching:
                    raise InvariantViolation(
                        NESTED_SUBTREES,
                        "the shadow boundary entry over a nested node is a "
                        "regular entry, not a switching bit",
                        pid=state.pid, node_gfn=gfn, prefix=meta.prefix,
                        boundary_level=meta.level + 1)
                if (entry is not None and entry.present and entry.switching
                        and entry.frame != gfn):
                    raise InvariantViolation(
                        SWITCHING_BITS,
                        "the switching bit over a nested node names a "
                        "different guest node",
                        pid=state.pid, node_gfn=gfn, entry_frame=entry.frame,
                        prefix=meta.prefix)

    @staticmethod
    def _shadow_entry_at(manager, level, va):
        node = manager._descend(level, va)
        if node is None:
            return None
        return node.get(pt_index(va, level))

    # -- TLB coherence -----------------------------------------------------------

    def _check_tlb(self, state):
        if state.proc is None:
            return
        for entry in self.vmm.mmu.hierarchy.iter_entries():
            if entry.asid == state.proc.asid:
                self._check_tlb_entry(state, entry)

    def _check_tlb_va(self, state, va):
        if state.proc is None:
            return
        for entry in self.vmm.mmu.hierarchy.peek_entries(state.proc.asid, va):
            self._check_tlb_entry(state, entry)

    def _check_tlb_entry(self, state, entry):
        va = entry.vpn << entry.page_shift
        translated = state.proc.page_table.translate(va)
        if translated is None:
            raise InvariantViolation(
                TLB_COHERENCE,
                "stale TLB entry: the guest table no longer maps this page",
                pid=state.pid, va=va, entry=repr(entry))
        gfn, _shift = translated
        hfn = self.vmm.hostpt.translate(gfn)
        if hfn is None:
            raise InvariantViolation(
                TLB_COHERENCE,
                "stale TLB entry: the host table no longer backs this frame",
                pid=state.pid, va=va, gfn=gfn, entry=repr(entry))
        if entry.frame != hfn:
            raise InvariantViolation(
                TLB_COHERENCE,
                "TLB entry frame diverges from the composed translation",
                pid=state.pid, va=va, actual=entry.frame, expected=hfn,
                gfn=gfn, entry=repr(entry))
        if entry.writable:
            gpte, _level = state.proc.page_table.lookup(va)
            if gpte is None or not gpte.writable:
                raise InvariantViolation(
                    TLB_COHERENCE,
                    "write-enabled TLB entry over a read-only (or absent) "
                    "guest mapping",
                    pid=state.pid, va=va, entry=repr(entry))


def level_span_mask(level):
    """Mask of the VA bits below ``level``'s entry span."""
    return (1 << level_shift(level)) - 1
