"""Per-process shadow page-table management, including agile mode.

The manager owns the shadow table (gVA=>hPA) for one guest process and
keeps it coherent with the guest and host tables, exactly as Section
III-B describes:

* guest-PT pages covered by the shadow table are write-protected: the
  VMM observes every write (a VMtrap) and invalidates/updates the
  affected shadow entries,
* under agile paging only *part* of the guest table is shadow-covered;
  a per-node mode map tracks the rest, the shadow table carries
  switching-bit entries at the boundary, and writes to nested-mode
  guest-PT pages go straight through (setting the host-PT dirty bit the
  reversion policy reads),
* the accessed/dirty protocol: fresh shadow leaves never get the
  write-enable bit, so the first write faults and the VMM sets dirty
  bits in both tables (unless the Section IV hardware assist is on).

Pure shadow paging is the degenerate case: every node stays in shadow
mode and no switching bit is ever installed.
"""

from repro.common.addrspace import returns, takes
from repro.common.effects import mutates
from repro.common.errors import SimulationError
from repro.common.params import LEAF_LEVEL, ROOT_LEVEL, level_shift, pt_index
from repro.mem.pagetable import PageTable
from repro.mem.pte import PTE

NODE_SHADOW = "shadow"
NODE_NESTED = "nested"


class NodeMeta:
    """Placement and mode of one guest page-table node."""

    __slots__ = ("level", "prefix", "parent_gfn", "mode")

    def __init__(self, level, prefix, parent_gfn, mode):
        self.level = level
        self.prefix = prefix  # VA bits above this node's index field
        self.parent_gfn = parent_gfn
        self.mode = mode

    def __repr__(self):
        return "NodeMeta(level=%d, prefix=%#x, mode=%s)" % (
            self.level,
            -1 if self.prefix is None else self.prefix,
            self.mode,
        )


class InvalidationSink:
    """TLB/PWC shootdown interface the manager calls into (the MMU)."""

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        pass

    def invalidate_asid(self, asid):
        pass

    def flush_pwc(self):
        pass


class ShadowManager:
    """Shadow (and agile) page-table state for one guest process."""

    def __init__(self, pid, host_mem, guest_mem, hostpt, page_size, inval,
                 agile=False, start_nested=False, ad_assist=False):
        self.pid = pid
        self.asid = pid
        self.host_mem = host_mem
        self.guest_mem = guest_mem
        self.hostpt = hostpt
        self.page_size = page_size
        self.inval = inval
        self.agile = agile
        self.ad_assist = ad_assist
        self.spt = PageTable(host_mem, "sPT[%d]" % pid)
        self.node_meta = {}
        self.root_gfn = None
        self.root_switched = False
        # Start-in-nested (short-lived process policy, Section III-C):
        # no shadow coverage at all until enabled.
        self.fully_nested = bool(start_nested and agile)

    # -- guest PT structure tracking (observer events) -----------------------

    @mutates("shadow_pt")
    def on_node_allocated(self, node, parent):
        if parent is None:
            mode = NODE_NESTED if self.fully_nested else NODE_SHADOW
            self.node_meta[node.frame] = NodeMeta(node.level, 0, None, mode)
            self.root_gfn = node.frame
        else:
            parent_meta = self.node_meta[parent.frame]
            mode = NODE_NESTED if self.fully_nested else parent_meta.mode
            self.node_meta[node.frame] = NodeMeta(node.level, None, parent.frame, mode)
        # The hardware may walk this node's frame: back it in the host PT.
        self.hostpt.ensure_mapped(node.frame)

    @mutates("shadow_pt")
    def on_node_freed(self, node):
        self.node_meta.pop(node.frame, None)

    @mutates("shadow_pt")
    def on_pte_written(self, node, index, old, new):
        """A guest write to its page table landed at ``node[index]``.

        Returns ``("mediated", leaf_va_or_None)`` when the write hit
        shadow-covered state (a VMtrap happened and the shadow table was
        synced) or ``("direct", None)`` when it hit nested-covered state
        (no trap; host dirty bit recorded for the reversion policy).
        """
        meta = self.node_meta.get(node.frame)
        if meta is None:
            raise SimulationError("write to untracked guest PT node %d" % node.frame)
        self._track_link(meta, node, index, old, new)
        if self.fully_nested or meta.mode == NODE_NESTED:
            self.hostpt.mark_dirty(node.frame)
            return "direct", None
        leaf_va = self._sync_shadow(meta, node, index, old, new)
        return "mediated", leaf_va

    @mutates("shadow_pt")
    def _track_link(self, meta, node, index, old, new):
        """Maintain child metadata when an entry links a guest node."""
        if new is None or not new.present or new.huge or node.level == LEAF_LEVEL:
            return
        child_meta = self.node_meta.get(new.frame)
        if child_meta is None:
            return
        if meta.prefix is None:
            raise SimulationError("linking under a node with unknown prefix")
        child_meta.prefix = meta.prefix | (index << level_shift(node.level))
        child_meta.parent_gfn = node.frame

    @mutates("shadow_pt")
    def _sync_shadow(self, meta, node, index, old, new):
        """Invalidate shadow state affected by one mediated guest write."""
        if meta.prefix is None:
            raise SimulationError("write into a node with unknown prefix")
        va = meta.prefix | (index << level_shift(node.level))
        is_leaf_entry = node.level == LEAF_LEVEL or (
            (new is not None and new.huge) or (old is not None and old.huge)
        )
        removed = self._zap_position(node.level, va)
        if is_leaf_entry:
            if removed:
                self.inval.invalidate_page(self.asid, va)
            return va
        # Structural change above the leaves: drop everything under it.
        if removed:
            self.inval.invalidate_asid(self.asid)
            self.inval.flush_pwc()
        return None

    # -- shadow-table position arithmetic ------------------------------------

    @takes(va="gva")
    def _descend(self, level, va):
        """Shadow node holding the entry at (level, va), or None."""
        node = self.spt.root
        for current in range(ROOT_LEVEL, level, -1):
            pte = node.get(pt_index(va, current))
            if pte is None or not pte.present or pte.huge or pte.switching:
                return None
            node = self.spt.node_at(pte.frame)
        return node

    @mutates("shadow_pt")
    @takes(va="gva")
    def _zap_position(self, level, va):
        """Clear the shadow entry at (level, va); True if one existed."""
        node = self._descend(level, va)
        if node is None:
            return False
        index = pt_index(va, level)
        if node.get(index) is None:
            return False
        self.spt.clear_subtree(node, index)
        return True

    # -- shadow fills (ShadowNotPresentFault handling) -------------------------

    @mutates("shadow_pt")
    @takes(va="gva")
    def fill_for(self, va):
        """Resolve a shadow not-present fault for ``va``.

        Returns one of:
        * ``"filled"`` — a merged leaf entry was installed,
        * ``"switch_installed"`` — the walk crossed into a nested-mode
          subtree; the switching-bit entry is now in place,
        * ``"root_switch"`` — the whole table is nested from the root,
        * ``"guest_fault"`` — the guest table has no mapping; the VMM
          injects a page fault into the guest.
        """
        if self.root_gfn is None:
            raise SimulationError("fill before guest root exists")
        root_meta = self.node_meta[self.root_gfn]
        if root_meta.mode == NODE_NESTED:
            self.root_switched = True
            return "root_switch"
        gnode = self._guest_node(self.root_gfn)
        for level in range(ROOT_LEVEL, LEAF_LEVEL - 1, -1):
            gpte = gnode.get(pt_index(va, level))
            if gpte is None or not gpte.present:
                return "guest_fault"
            if gpte.huge or level == LEAF_LEVEL:
                self._install_leaf(va, level, gpte)
                return "filled"
            child_meta = self.node_meta.get(gpte.frame)
            if child_meta is None:
                raise SimulationError("guest link to untracked node %d" % gpte.frame)
            if child_meta.mode == NODE_NESTED:
                self._install_switch(va, level, gpte.frame)
                return "switch_installed"
            gnode = self._guest_node(gpte.frame)
        raise SimulationError("fill walk fell off the guest table")  # pragma: no cover

    @takes(gfn="gfn")
    def _guest_node(self, gfn):
        node = self.guest_mem.read(gfn)
        if node is None:
            raise SimulationError("guest PT node %d vanished" % gfn)
        return node

    @mutates("shadow_pt")
    @takes(va="gva")
    def _install_leaf(self, va, level, gpte):
        """Merge one guest leaf with the host table into the shadow table.

        Section III-B accessed/dirty protocol: the VMM sets the accessed
        bit in the guest PTE and the new shadow PTE, but does *not*
        propagate write-enable unless the dirty bit is already set (or
        the Section IV hardware assist maintains A/D bits for us).

        When the host granule is smaller than the guest page (Section V
        mixed-size case), the shadow leaf is installed at the host
        granule — the large page is "broken into smaller pages".
        """
        gfn, leaf_level = self._leaf_backing_gfn(va, level, gpte)
        hfn, _faulted = self.hostpt.ensure_mapped(gfn)
        host_pte = self.hostpt.leaf_for_gfn(gfn)
        gpte.accessed = True
        if self.ad_assist:
            writable = gpte.writable and host_pte.writable
        else:
            writable = gpte.writable and host_pte.writable and gpte.dirty
        snode = self.spt.ensure_path(va, leaf_level)
        spte = PTE(
            frame=hfn,
            writable=writable,
            accessed=True,
            dirty=gpte.dirty,
            huge=leaf_level > LEAF_LEVEL,
        )
        snode.set(pt_index(va, leaf_level), spte)

    @takes(va="gva")
    @returns("gfn", None)
    def _leaf_backing_gfn(self, va, level, gpte):
        """The guest frame (and shadow leaf level) backing ``va``.

        Equal granules: the guest leaf's own frame. Mixed granules
        (guest page larger than the host granule): the host-granule
        piece containing ``va`` — the Section V break-down.
        """
        leaf_level = min(level, self.hostpt.page_size.leaf_level)
        if leaf_level < level:
            gfn_4k = gpte.frame + ((va & ((1 << level_shift(level)) - 1)) >> 12)
            span = 1 << (level_shift(leaf_level) - 12)
            return gfn_4k - ((va >> 12) & (span - 1)), leaf_level
        return gpte.frame, leaf_level

    @mutates("shadow_pt")
    @mutates("switching_bits")
    @takes(va="gva", child_gfn="gfn")
    def _install_switch(self, va, level, child_gfn):
        """Install the switching-bit entry at (level, va) -> guest node."""
        snode = self.spt.ensure_path(va, level)
        index = pt_index(va, level)
        existing = snode.get(index)
        if existing is not None and not existing.switching:
            self.spt.clear_subtree(snode, index)
        snode.set(index, PTE(frame=child_gfn, switching=True, guest_node=True))

    # -- dirty-bit protocol (ShadowProtectionFault handling) ----------------------

    @mutates("shadow_pt")
    @takes(va="gva")
    def protection_fix(self, va):
        """Resolve a write to a read-only shadow leaf.

        Returns ``"dirty_fixed"`` (A/D protocol completed), ``"refill"``
        (the shadow leaf vanished; fill again), or ``"guest_fault"``
        (the guest PTE is genuinely read-only: inject into the guest —
        e.g., a COW break).
        """
        found = self._guest_leaf(va)
        if found is None:
            return "refill"
        gpte, guest_level = found
        if not gpte.writable:
            return "guest_fault"
        gfn, _leaf_level = self._leaf_backing_gfn(va, guest_level, gpte)
        host_pte = self.hostpt.leaf_for_gfn(gfn)
        if host_pte is None:
            return "refill"  # host mapping vanished: re-merge from scratch
        if not host_pte.writable:
            # Host-side COW (e.g., inter-VM page sharing): the VMM makes
            # a private copy and write-enables the host mapping.
            self.hostpt.set_writable(gfn, True)
        gpte.dirty = True
        spte, _level = self.spt.lookup(va)
        if spte is None or not spte.present:
            return "refill"
        spte.writable = True
        spte.dirty = True
        self.inval.invalidate_page(self.asid, va)
        return "dirty_fixed"

    @takes(va="gva")
    def _guest_leaf(self, va):
        """The guest leaf PTE and its level for ``va``, or None."""
        gnode = self._guest_node(self.root_gfn)
        for level in range(ROOT_LEVEL, LEAF_LEVEL - 1, -1):
            gpte = gnode.get(pt_index(va, level))
            if gpte is None or not gpte.present:
                return None
            if gpte.huge or level == LEAF_LEVEL:
                return gpte, level
            gnode = self._guest_node(gpte.frame)
        return None

    # -- agile mode transitions -------------------------------------------------

    @mutates("shadow_pt")
    @mutates("switching_bits")
    @takes(node_gfn="gfn")
    def switch_to_nested(self, node_gfn):
        """Move one guest PT node (and its whole subtree) to nested mode.

        Installs the switching bit in the shadow parent entry and drops
        the shadow subtree it replaces (Section III-C, shadow=>nested).
        """
        if not self.agile:
            raise SimulationError("mode switching requires agile paging")
        meta = self.node_meta.get(node_gfn)
        if meta is None or meta.mode == NODE_NESTED:
            return False
        for gfn in self._subtree_gfns(node_gfn):
            self.node_meta[gfn].mode = NODE_NESTED
        if node_gfn == self.root_gfn:
            self.root_switched = True
            # Everything below the root is now walked nested; the old
            # shadow contents are garbage.
            for index in list(self.spt.root.entries):
                self.spt.clear_subtree(self.spt.root, index)
        elif meta.prefix is not None:
            self._install_switch(meta.prefix, meta.level + 1, node_gfn)
        # No TLB shootdown: cached gVA=>hPA translations stay valid when
        # only the *walk mode* changes; just the PWC mode bits go stale.
        self.inval.flush_pwc()
        return True

    @mutates("shadow_pt")
    @mutates("switching_bits")
    @takes(node_gfn="gfn")
    def revert_to_shadow(self, node_gfn):
        """Move one node back to shadow mode (nested=>shadow).

        Parents must revert before children (Section III-C); the policy
        layer guarantees the ordering, this method enforces it. The
        node's shadow entries are rebuilt eagerly — the VMM already
        decided the node is stable, and rebuilding during the policy
        scan avoids a fill-fault storm afterwards (KVM resyncs whole
        shadow pages the same way).
        """
        if not self.agile:
            raise SimulationError("mode switching requires agile paging")
        meta = self.node_meta.get(node_gfn)
        if meta is None or meta.mode == NODE_SHADOW:
            return False
        if node_gfn != self.root_gfn:
            parent_meta = self.node_meta.get(meta.parent_gfn)
            if parent_meta is None or parent_meta.mode == NODE_NESTED:
                raise SimulationError("revert of node under a nested parent")
        meta.mode = NODE_SHADOW
        if node_gfn == self.root_gfn:
            self.root_switched = False
        elif meta.prefix is not None:
            # Remove the switching entry before rebuilding in place.
            self._zap_position(meta.level + 1, meta.prefix)
        self._rebuild_node(node_gfn, meta)
        self.inval.flush_pwc()
        return True

    @mutates("shadow_pt")
    @takes(node_gfn="gfn")
    def _rebuild_node(self, node_gfn, meta):
        """Eagerly re-merge one guest node's entries into the shadow table.

        Leaf-entry nodes get merged leaves; interior nodes get switching
        bits for children that remain nested (they revert later, parents
        first). Returns the number of entries rebuilt.
        """
        if meta.prefix is None:
            return 0
        node = self._guest_node(node_gfn)
        rebuilt = 0
        for index, gpte in node.present_items():
            va = meta.prefix | (index << level_shift(node.level))
            at_leaf = gpte.huge or node.level == LEAF_LEVEL
            if at_leaf:
                # Only prefill leaves the guest has actually accessed:
                # _install_leaf stamps the guest accessed bit (the III-B
                # protocol assumes demand fills, where the fault proves
                # an access), so eagerly merging a never-accessed gPTE
                # would invent an A bit the guest never earned. Skipped
                # entries refill on demand like any other miss.
                if not gpte.accessed:
                    continue
                self._install_leaf(va, node.level, gpte)
                rebuilt += 1
            else:
                child_meta = self.node_meta.get(gpte.frame)
                if child_meta is not None and child_meta.mode == NODE_NESTED:
                    self._install_switch(va, node.level, gpte.frame)
                    rebuilt += 1
        return rebuilt

    @mutates("shadow_pt")
    @mutates("switching_bits")
    def revert_all(self):
        """The simple reversion policy: everything back to shadow mode."""
        reverted = 0
        for gfn in self._gfns_top_down():
            meta = self.node_meta[gfn]
            if meta.mode == NODE_NESTED:
                self.revert_to_shadow(gfn)
                reverted += 1
        return reverted

    def nested_node_gfns(self):
        """Nested-mode nodes, top (root) level first."""
        return [g for g in self._gfns_top_down() if self.node_meta[g].mode == NODE_NESTED]

    def _gfns_top_down(self):
        return sorted(self.node_meta, key=lambda g: -self.node_meta[g].level)

    @takes(node_gfn="gfn")
    def _subtree_gfns(self, node_gfn):
        """``node_gfn`` and every guest PT node beneath it."""
        result = []
        stack = [node_gfn]
        while stack:
            gfn = stack.pop()
            result.append(gfn)
            node = self._guest_node(gfn)
            if node.level == LEAF_LEVEL:
                continue
            for _index, pte in node.present_items():
                if not pte.huge and pte.frame in self.node_meta:
                    stack.append(pte.frame)
        return result

    @mutates("shadow_pt")
    def rebuild_full(self, page_table):
        """Merge *every* guest mapping into the shadow table.

        This is the whole-table rebuild SHSP pays when switching a
        process from nested to shadow paging — the cost that motivates
        agile paging's partial shadowing (Section I). Returns the number
        of mappings merged.
        """
        rebuilt = 0
        for va, gpte, level in page_table.iter_leaves():
            if not gpte.accessed:
                continue  # never-accessed gPTEs demand-fill later (A-bit protocol)
            self._install_leaf(va, level, gpte)
            rebuilt += 1
        return rebuilt

    # -- start-in-nested (short-lived process) policy -----------------------------

    @mutates("shadow_pt")
    @mutates("switching_bits")
    def enable_shadow_coverage(self):
        """Leave fully-nested mode: agile paging proper begins.

        All nodes start in shadow mode; the write policy will push the
        dynamic ones back to nested.
        """
        if not self.fully_nested:
            return
        self.fully_nested = False
        # Guest PT updates during the fully-nested phase went direct, so
        # any shadow entries from before it are stale (e.g., leaves for
        # since-unmapped pages) — drop the whole table before rebuilding.
        for index in list(self.spt.root.entries):
            self.spt.clear_subtree(self.spt.root, index)
        for meta in self.node_meta.values():
            meta.mode = NODE_SHADOW
        self.root_switched = False
        self.inval.invalidate_asid(self.asid)
        self.inval.flush_pwc()

    # -- teardown ---------------------------------------------------------------------

    def destroy(self):
        self.spt.destroy()
        self.node_meta.clear()
