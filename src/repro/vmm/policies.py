"""VMM policies: what degree of nesting to use (Section III-C).

Three decisions, exactly as the paper frames them:

* **shadow=>nested** (:class:`WriteTriggerPolicy`): page-table updates
  are bimodal within a time interval — one write, or many. Two mediated
  writes to the same guest PT page within the interval move that level
  and everything below it to nested mode ("a small threshold like the
  one used in branch predictors").
* **nested=>shadow** (:class:`SimpleReversionPolicy` /
  :class:`DirtyBitReversionPolicy`): periodically move quiescent parts
  back so TLB misses get cheap again. The simple policy reverts
  everything each interval; the dirty-bit policy scans host-PT dirty
  bits over the guest PT pages and reverts only untouched subtrees,
  parents before children.
* **short-lived processes** (:class:`ShortLivedPolicy`): start fully
  nested; enable shadow coverage only once the process has lived past a
  grace period with enough TLB-miss pressure to pay for shadowing.
"""

from repro.common.effects import policy_decision
from repro.common.timedomain import cycles
from repro.obs.events import POLICY_PROMOTE, POLICY_TO_NESTED, POLICY_TO_SHADOW
from repro.vmm.shadowmgr import NODE_NESTED, NODE_SHADOW


class WriteTriggerPolicy:
    """Shadow=>nested trigger: N mediated writes within a window."""

    def __init__(self, threshold=2, interval=200_000):
        if threshold < 1:
            raise ValueError("write threshold must be >= 1")
        self.threshold = threshold
        self.interval = interval
        self._windows = {}  # node gfn -> (window_start, count)

    @policy_decision
    @cycles(now="guest_sim")
    def note_write(self, manager, node_gfn, now):
        """Record a mediated write; switch the subtree when triggered.

        Returns True if the node was moved to nested mode.
        """
        start, count = self._windows.get(node_gfn, (now, 0))
        if now - start > self.interval:
            start, count = now, 0
        count += 1
        self._windows[node_gfn] = (start, count)
        if count >= self.threshold:
            del self._windows[node_gfn]
            return manager.switch_to_nested(node_gfn)
        return False

    def forget(self, node_gfn):
        self._windows.pop(node_gfn, None)


class SimpleReversionPolicy:
    """Nested=>shadow: revert everything every interval."""

    def __init__(self, interval=1_000_000):
        self.interval = interval
        self._last = 0

    @policy_decision
    @cycles(now="guest_sim")
    def tick(self, manager, hostpt, now):
        """Returns the number of nodes reverted this tick."""
        if now - self._last < self.interval:
            return 0
        self._last = now
        return manager.revert_all()


class DirtyBitReversionPolicy:
    """Nested=>shadow: revert only quiescent subtrees, parents first.

    At each interval boundary the VMM inspects the host-PT dirty bits
    covering nested-mode guest PT pages: a clean page saw no guest
    writes during the interval and is a reversion candidate; a dirty
    page has its bit cleared so the next interval can observe it afresh.
    """

    def __init__(self, interval=1_000_000):
        self.interval = interval
        self._last = 0

    @policy_decision
    @cycles(now="guest_sim")
    def tick(self, manager, hostpt, now):
        if now - self._last < self.interval:
            return 0
        self._last = now
        reverted = 0
        for gfn in manager.nested_node_gfns():  # top (root) level first
            meta = manager.node_meta.get(gfn)
            if meta is None or meta.mode != NODE_NESTED:
                continue
            if hostpt.is_dirty(gfn):
                hostpt.clear_dirty(gfn)
                continue
            parent_ok = (
                gfn == manager.root_gfn
                or manager.node_meta[meta.parent_gfn].mode == NODE_SHADOW
            )
            if parent_ok and manager.revert_to_shadow(gfn):
                reverted += 1
        return reverted


class NoReversionPolicy:
    """Ablation baseline: once nested, always nested."""

    @policy_decision
    @cycles(now="guest_sim")
    def tick(self, manager, hostpt, now):
        return 0


class ShortLivedPolicy:
    """Start fully nested; enable agile shadowing if the process earns it."""

    def __init__(self, grace_cycles=500_000, miss_rate_threshold=5.0):
        self.grace_cycles = grace_cycles
        self.miss_rate_threshold = miss_rate_threshold
        self._birth = None
        self.decided = False

    @policy_decision
    @cycles(now="guest_sim")
    def tick(self, manager, now, miss_rate_per_kop):
        """``miss_rate_per_kop``: recent TLB misses per 1000 operations
        (the paper reads this from hardware performance counters)."""
        if self.decided or not manager.fully_nested:
            self.decided = True
            return False
        if self._birth is None:
            self._birth = now
        if now - self._birth < self.grace_cycles:
            return False
        self.decided = True
        if miss_rate_per_kop >= self.miss_rate_threshold:
            manager.enable_shadow_coverage()
            return True
        return False


def make_reversion_policy(name, interval):
    """Factory keyed by PolicyConfig.revert_policy."""
    if name == "dirty":
        return DirtyBitReversionPolicy(interval)
    if name == "simple":
        return SimpleReversionPolicy(interval)
    if name == "none":
        return NoReversionPolicy()
    raise ValueError("unknown reversion policy %r" % (name,))


class ProcessPolicy:
    """Bundle of the three per-process policy mechanisms."""

    def __init__(self, config):
        self.write_trigger = WriteTriggerPolicy(
            config.write_threshold, config.write_interval
        )
        self.reversion = make_reversion_policy(
            config.revert_policy, config.revert_interval
        )
        self.short_lived = ShortLivedPolicy(
            config.grace_cycles, config.miss_rate_threshold
        )
        self.miss_rate_threshold = config.miss_rate_threshold
        self.switches_to_nested = 0
        self.reversions = 0
        # Observability: set by VMM.attach_tracer; decisions become
        # `policy` events when tracing.
        self.tracer = None
        self.pid = None

    def attach_tracer(self, tracer, pid):
        self.tracer = tracer
        self.pid = pid

    @policy_decision
    @cycles(now="guest_sim")
    def note_write(self, manager, node_gfn, now):
        switched = self.write_trigger.note_write(manager, node_gfn, now)
        if switched:
            self.switches_to_nested += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                meta = manager.node_meta.get(node_gfn)
                tracer.policy(now, POLICY_TO_NESTED, pid=self.pid,
                              node=node_gfn,
                              level=meta.level if meta is not None else None)
        return switched

    @policy_decision
    @cycles(now="guest_sim")
    def tick(self, manager, hostpt, now, miss_rate_per_kop):
        promoted = self.short_lived.tick(manager, now, miss_rate_per_kop)
        tracer = self.tracer
        if promoted and tracer is not None and tracer.enabled:
            tracer.policy(now, POLICY_PROMOTE, pid=self.pid)
        # Section III-C: "programs with very few TLB misses should use
        # nested paging for the whole address space, as shadow mode has
        # no benefit" — without miss pressure, leave nested parts alone.
        if miss_rate_per_kop < self.miss_rate_threshold:
            return 0
        reverted = self.reversion.tick(manager, hostpt, now)
        self.reversions += reverted
        if reverted and tracer is not None and tracer.enabled:
            tracer.policy(now, POLICY_TO_SHADOW, pid=self.pid, count=reverted)
        return reverted
