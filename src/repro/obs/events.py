"""The typed event taxonomy of the tracing subsystem.

Every instrumentation point in the simulator emits one of these kinds.
An :class:`Event` is deliberately tiny and JSON-safe: a kind, a begin
timestamp in simulated cycles, a duration in cycles (0 for instants),
and a flat ``data`` dict of scalars. Timestamps come exclusively from
the simulated :class:`repro.common.clock.Clock`, never from wall time,
so two runs of the same seeded workload produce byte-identical streams
(the trace-determinism contract the differential harness asserts).

Taxonomy (mirrors the paper's cost accounting):

=================  =========================================================
kind               emitted by / meaning
=================  =========================================================
``vmtrap``         every :meth:`TrapStats.record` — VMexits *and* the
                   hardware-assist / background-work kinds, with the trap
                   kind and its attributed cycles as the duration
``walk``           every completed hardware page walk (= every TLB miss):
                   mode, memory references, degree of nesting, page shift
``tlb_hit``        an L1/L2 TLB hit (the fast path the walk events skip)
``pwc``            a page-walk-cache / nested-TLB probe: structure + hit
``policy``         a Section III-C policy decision: shadow→nested switch,
                   nested→shadow reversion, short-lived promotion, SHSP
                   technique switch — with the subtree level where known
``ctx_switch``     a guest context switch (CR3 write), old/new pid
``guest_fault``    a guest page fault resolved by the guest OS
``vm_switch``      a cross-VM world switch on a consolidated host
                   (``repro.host``): old/new vm id, with the charged
                   world-switch cycles as the duration
``balloon``        a balloon/reclaim episode: the victim VM, frames
                   revoked, and the requesting VM under pressure
``mark``           a named point in the run; ``measurement_start`` is
                   emitted by ``System.reset_counters`` and separates
                   warmup from the measured window
=================  =========================================================
"""

import json

EV_VMTRAP = "vmtrap"
EV_WALK = "walk"
EV_TLB_HIT = "tlb_hit"
EV_PWC = "pwc"
EV_POLICY = "policy"
EV_CTX_SWITCH = "ctx_switch"
EV_GUEST_FAULT = "guest_fault"
EV_VM_SWITCH = "vm_switch"
EV_BALLOON = "balloon"
EV_MARK = "mark"

ALL_EVENT_KINDS = (
    EV_VMTRAP,
    EV_WALK,
    EV_TLB_HIT,
    EV_PWC,
    EV_POLICY,
    EV_CTX_SWITCH,
    EV_GUEST_FAULT,
    EV_VM_SWITCH,
    EV_BALLOON,
    EV_MARK,
)

#: The mark name System.reset_counters emits; events after the last such
#: mark belong to the measured window that RunMetrics reports.
MARK_MEASUREMENT_START = "measurement_start"

#: Policy-decision directions (the ``data["direction"]`` values).
POLICY_TO_NESTED = "shadow_to_nested"
POLICY_TO_SHADOW = "nested_to_shadow"
POLICY_PROMOTE = "enable_shadow"
POLICY_SHSP_SWITCH = "shsp_switch"


class Event:
    """One traced occurrence: ``(kind, ts, dur, data)``.

    ``ts`` is the simulated-cycle begin time; ``dur`` the attributed
    cycles (0 for instantaneous events); ``data`` a flat dict of JSON
    scalars specific to the kind.
    """

    __slots__ = ("kind", "ts", "dur", "data")

    def __init__(self, kind, ts, dur=0, data=None):
        self.kind = kind
        self.ts = ts
        self.dur = dur
        self.data = data if data is not None else {}

    def as_dict(self):
        """A JSON-safe dict with a stable shape (all four keys, always)."""
        return {"kind": self.kind, "ts": self.ts, "dur": self.dur,
                "data": self.data}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["kind"], payload["ts"], payload.get("dur", 0),
                   payload.get("data") or {})

    def to_json(self):
        """One canonical JSONL line (sorted keys, no whitespace)."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def __repr__(self):
        return "Event(%s, ts=%d, dur=%d, %r)" % (self.kind, self.ts,
                                                 self.dur, self.data)


def measured_events(events):
    """The sub-stream after the last ``measurement_start`` mark.

    When no such mark exists (a workload that never called
    ``start_measurement``) the whole stream is returned, matching how
    ``RunMetrics`` then covers the whole run.
    """
    start = 0
    for index, event in enumerate(events):
        if (event.kind == EV_MARK
                and event.data.get("name") == MARK_MEASUREMENT_START):
            start = index + 1
    return events[start:]


def vmtrap_counts(events, measured_only=True):
    """Per-kind VMtrap event counts, mirroring ``RunMetrics.trap_counts``.

    With ``measured_only`` (the default) only events after the last
    measurement mark are counted — exactly the window ``TrapStats``
    describes after ``reset_counters`` — so for any run the returned
    dict equals the run's ``RunMetrics.trap_counts``.
    """
    stream = measured_events(events) if measured_only else events
    counts = {}
    for event in stream:
        if event.kind == EV_VMTRAP:
            trap_kind = event.data["trap"]
            counts[trap_kind] = counts.get(trap_kind, 0) + 1
    return counts
