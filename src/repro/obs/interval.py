"""Interval time-series: RunMetrics-style counters sampled over time.

``RunMetrics`` answers *how much* a run cost; the interval recorder
answers *when*. Every ``every`` operations (rounded up to the policy
epoch the simulator already runs, so sampling adds no per-op work) it
snapshots the cumulative counters into one row. Figure-5-style
overheads then become plottable over time: the agile policy's
convergence, the short-lived-process grace period, and trap storms all
show up as slope changes instead of disappearing into end-of-run
aggregates.

Rows store *cumulative* values; :meth:`IntervalRecorder.deltas` derives
per-interval rates. Both forms are JSON-safe lists of dicts.
"""

# Counter fields copied verbatim from the live system into each row.
_CUMULATIVE_FIELDS = (
    "tlb_misses",
    "tlb_hits_l1",
    "tlb_hits_l2",
    "walk_refs",
)


class IntervalRecorder:
    """Samples the live system's counters into a time-series.

    ``every`` is the nominal sampling period in operations; actual
    samples land on the first policy epoch at or past each multiple
    (the simulator's epoch is 256 ops), so the series is deterministic
    for a given run regardless of host conditions.
    """

    def __init__(self, every=1024):
        if every <= 0:
            raise ValueError("sampling interval must be positive")
        self.every = every
        self.rows = []
        self._last_op = 0

    def __len__(self):
        return len(self.rows)

    def note_reset(self, system):
        """Counters were zeroed (measurement start): restart the deltas.

        A boundary row is recorded so the series marks where the
        measured window begins.
        """
        self._last_op = 0
        self.sample(system, boundary=True)

    def maybe_sample(self, system):
        """Sample iff ``every`` ops have elapsed since the last sample."""
        if system.ops - self._last_op >= self.every:
            self.sample(system)

    def sample(self, system, boundary=False):
        """Record one row of cumulative counters from the live system."""
        self._last_op = system.ops
        counters = system.mmu.counters
        row = {
            "op": system.ops,
            "cycle": system.clock.now,
            "ideal_cycles": system.ideal_cycles,
            "walk_cycles": system.walk_cycles,
            "tlb_l2_cycles": system.tlb_l2_cycles,
            "guest_fault_cycles": system.guest_fault_cycles,
            "guest_faults": system.guest_fault_count,
        }
        for name in _CUMULATIVE_FIELDS:
            row[name] = getattr(counters, name)
        if system.vmm is not None:
            row["vmm_cycles"] = system.vmm.traps.total_attributed_cycles
            row["vmtraps"] = system.vmm.traps.total_traps
        else:
            row["vmm_cycles"] = 0
            row["vmtraps"] = 0
        if boundary:
            row["boundary"] = True
        self.rows.append(row)

    def deltas(self):
        """Per-interval rows: the difference between adjacent samples.

        Rows following a boundary (counter reset) restart from zero, so
        deltas never go negative across ``start_measurement``.
        """
        out = []
        prev = None
        for row in self.rows:
            if row.get("boundary") or prev is None:
                prev = row
                continue
            delta = {"op": row["op"], "cycle": row["cycle"]}
            for key, value in row.items():
                if key in ("op", "cycle", "boundary"):
                    continue
                delta[key] = value - prev.get(key, 0)
            out.append(delta)
            prev = row
        return out

    def to_rows(self):
        """The raw cumulative rows (JSON-safe; stable key order on dump)."""
        return list(self.rows)
