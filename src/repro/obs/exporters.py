"""Trace exporters: JSONL, Chrome/Perfetto trace JSON, cycle flamegraph.

Three output formats, one event stream:

* :func:`write_jsonl` / :func:`load_jsonl` — one canonical JSON object
  per line (sorted keys, no whitespace). Byte-identical for identical
  runs, which is what the trace-determinism differential test asserts.
* :func:`perfetto_trace` / :func:`write_perfetto` — the Chrome Trace
  Event format that ``chrome://tracing`` and https://ui.perfetto.dev
  load directly. VMtraps become complete ("X") slices with their cycle
  cost as the duration; walks, policy decisions, context switches,
  faults and marks become instants ("i"); interval samples become
  counter ("C") tracks. One simulated cycle maps to one microsecond of
  trace time.
* :func:`render_cycle_flame` — a flamegraph-style text attribution of a
  run's cycles: where did the time beyond ideal execution go, VMM time
  split per trap kind, walks split by degree of nesting.

:func:`trace_payload` bundles events + intervals into the JSON-safe
dict the sweep runner ships from worker processes alongside the cell's
metrics.
"""

import json

from repro.obs.events import (
    EV_BALLOON,
    EV_CTX_SWITCH,
    EV_GUEST_FAULT,
    EV_MARK,
    EV_POLICY,
    EV_VMTRAP,
    EV_VM_SWITCH,
    EV_WALK,
    Event,
)

TRACE_PAYLOAD_SCHEMA = 1


# -- JSONL --------------------------------------------------------------------

def write_jsonl(events, stream):
    """Write one canonical JSON line per event; returns the line count."""
    count = 0
    for event in events:
        stream.write(event.to_json())
        stream.write("\n")
        count += 1
    return count


def jsonl_bytes(events):
    """The full JSONL stream as bytes (for hashing / equality checks)."""
    return "".join(event.to_json() + "\n" for event in events).encode("utf-8")


def load_jsonl(stream):
    """Parse a JSONL event stream back into :class:`Event` objects."""
    events = []
    for line in stream:
        line = line.strip()
        if line:
            events.append(Event.from_dict(json.loads(line)))
    return events


# -- Chrome / Perfetto trace JSON --------------------------------------------

_INSTANT_KINDS = {
    EV_WALK: "walk",
    EV_POLICY: "policy",
    EV_CTX_SWITCH: "ctx_switch",
    EV_GUEST_FAULT: "guest_fault",
    EV_BALLOON: "balloon",
    EV_MARK: "mark",
}

#: Interval-row fields exported as Perfetto counter tracks.
_COUNTER_FIELDS = ("tlb_misses", "vmtraps", "vmm_cycles", "walk_cycles")


def perfetto_trace(events, intervals=None, label="repro"):
    """Build a Chrome Trace Event Format dict from an event stream.

    The result is a plain dict; dump it with :func:`write_perfetto` or
    ``json.dump``. Trap slices land on the "vmm" thread, instants on a
    thread named after their kind, counters on their own tracks — so
    the Perfetto timeline groups the streams the way the paper's cost
    model does.
    """
    trace_events = []
    for event in events:
        if event.kind == EV_VMTRAP:
            trace_events.append({
                "name": event.data["trap"],
                "cat": EV_VMTRAP,
                "ph": "X",
                "ts": event.ts,
                "dur": event.dur,
                "pid": 1,
                "tid": "vmm",
                "args": dict(event.data),
            })
        elif event.kind == EV_VM_SWITCH:
            trace_events.append({
                "name": "vm%s -> vm%s" % (event.data.get("old"),
                                          event.data.get("new")),
                "cat": EV_VM_SWITCH,
                "ph": "X",
                "ts": event.ts,
                "dur": event.dur,
                "pid": 1,
                "tid": "host",
                "args": dict(event.data),
            })
        elif event.kind in _INSTANT_KINDS:
            name = event.data.get("name") or event.data.get(
                "direction") or event.data.get("mode") or event.kind
            trace_events.append({
                "name": name,
                "cat": event.kind,
                "ph": "i",
                "s": "t",
                "ts": event.ts,
                "pid": 1,
                "tid": _INSTANT_KINDS[event.kind],
                "args": dict(event.data),
            })
        # TLB-hit / PWC probe instants are deliberately left out of the
        # Perfetto view: they dominate the event count without adding
        # timeline structure. They remain in the JSONL stream.
    for row in intervals or ():
        for field in _COUNTER_FIELDS:
            if field in row:
                trace_events.append({
                    "name": field,
                    "cat": "interval",
                    "ph": "C",
                    "ts": row["cycle"],
                    "pid": 1,
                    "args": {field: row[field]},
                })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "label": label,
            "time_unit": "1 trace us = 1 simulated cycle",
        },
    }


def write_perfetto(events, stream, intervals=None, label="repro"):
    """Dump the Perfetto trace JSON; returns the trace-event count."""
    trace = perfetto_trace(events, intervals=intervals, label=label)
    json.dump(trace, stream, sort_keys=True, separators=(",", ":"))
    return len(trace["traceEvents"])


# -- flamegraph-style cycle attribution ---------------------------------------

_BAR_WIDTH = 24


def _bar(fraction):
    filled = int(round(_BAR_WIDTH * min(1.0, max(0.0, fraction))))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def _line(depth, name, cycles, total, extra=""):
    frac = cycles / total if total else 0.0
    label = "  " * depth + name
    text = "%-26s %s %6.2f%% %14d" % (label, _bar(frac), 100 * frac, cycles)
    if extra:
        text += "  " + extra
    return text


def render_cycle_flame(metrics):
    """Text flamegraph of one run's cycle attribution.

    Rooted at total cycles, split the way the paper's Figure 5 splits
    overheads — ideal execution, page walks (by degree of nesting), L2
    TLB hit latency, VMM intervention (per trap kind), guest faults —
    each with a share bar, percentage, and raw cycle count.
    """
    total = metrics.total_cycles or 1
    lines = [
        "cycle attribution — %s (%s, %s)" % (metrics.label, metrics.mode,
                                             metrics.page_size),
        _line(0, "total", metrics.total_cycles, total),
        _line(1, "ideal", metrics.ideal_cycles, total),
        _line(1, "page_walk", metrics.walk_cycles, total,
              "%d walks" % metrics.tlb_misses),
    ]
    walks_total = sum(metrics.walks_by_depth.values())
    for key, count in sorted(metrics.walks_by_depth.items(),
                             key=lambda pair: str(pair[0])):
        if not count:
            continue
        # Attribute walk cycles to depths proportionally by walk count;
        # exact per-walk costs are in the event stream.
        share = metrics.walk_cycles * count / walks_total if walks_total else 0
        lines.append(_line(2, "depth=%s" % key, int(round(share)), total,
                           "%d walks" % count))
    lines.append(_line(1, "tlb_l2_hit", metrics.tlb_l2_cycles, total,
                       "%d hits" % metrics.tlb_hits_l2))
    lines.append(_line(1, "vmm", metrics.vmm_cycles, total,
                       "%d traps" % metrics.vmtraps))
    for kind in sorted(metrics.trap_cycles,
                       key=lambda k: -metrics.trap_cycles[k]):
        count = metrics.trap_counts.get(kind, 0)
        cycles = metrics.trap_cycles[kind]
        avg = cycles / count if count else 0.0
        lines.append(_line(2, kind, cycles, total,
                           "n=%d avg=%.0f" % (count, avg)))
    lines.append(_line(1, "guest_fault", metrics.guest_fault_cycles, total,
                       "%d faults" % metrics.guest_faults))
    return "\n".join(lines)


# -- sweep-runner payload -----------------------------------------------------

def trace_payload(tracer, recorder=None):
    """Bundle a tracer (+ optional interval recorder) for shipping.

    The JSON-safe dict travels over the worker pipe next to the cell's
    metrics and is written to ``--trace-dir`` by the sweep runner; the
    serial path produces the identical structure, preserving the
    serial == parallel guarantee for telemetry too.
    """
    return {
        "schema": TRACE_PAYLOAD_SCHEMA,
        "events": [event.as_dict() for event in tracer.events],
        "intervals": recorder.to_rows() if recorder is not None else [],
    }


def payload_events(payload):
    """Rebuild :class:`Event` objects from a :func:`trace_payload` dict."""
    return [Event.from_dict(item) for item in payload.get("events", ())]
