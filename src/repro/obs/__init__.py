"""repro.obs: structured event tracing, interval time-series, exporters.

The simulator's telemetry layer. Aggregates (``RunMetrics``) say what a
run cost; this subsystem says *when* and *why* — every VMtrap, page
walk, TLB/PWC probe, policy decision, context switch and guest fault as
a typed, timestamped event, plus counters sampled over time.

Quickstart::

    from repro import System, Simulator, sandy_bridge_config
    from repro.obs import IntervalRecorder, Tracer
    from repro.obs.exporters import render_cycle_flame, write_jsonl

    system = System(sandy_bridge_config(mode="agile"))
    tracer, recorder = Tracer(), IntervalRecorder(every=1024)
    system.attach_observability(tracer, recorder)
    metrics = Simulator(system).run(workload)

    with open("run.jsonl", "w") as handle:
        write_jsonl(tracer.events, handle)
    print(render_cycle_flame(metrics))

Or from the command line: ``repro trace <workload> --events out.jsonl``
and ``repro profile <workload> --perfetto out.json``; sweeps take
``--trace-dir`` to capture per-cell telemetry. See docs/observability.md.
"""

from repro.obs.events import (
    ALL_EVENT_KINDS,
    EV_CTX_SWITCH,
    EV_GUEST_FAULT,
    EV_MARK,
    EV_POLICY,
    EV_PWC,
    EV_TLB_HIT,
    EV_VMTRAP,
    EV_WALK,
    MARK_MEASUREMENT_START,
    Event,
    measured_events,
    vmtrap_counts,
)
from repro.obs.interval import IntervalRecorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SNAPSHOT_SCHEMA_VERSION,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ALL_EVENT_KINDS",
    "EV_CTX_SWITCH",
    "EV_GUEST_FAULT",
    "EV_MARK",
    "EV_POLICY",
    "EV_PWC",
    "EV_TLB_HIT",
    "EV_VMTRAP",
    "EV_WALK",
    "MARK_MEASUREMENT_START",
    "Event",
    "measured_events",
    "vmtrap_counts",
    "IntervalRecorder",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "DEFAULT_BUCKETS",
    "METRICS_SNAPSHOT_SCHEMA_VERSION",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
]
