"""The tracer: typed event capture behind a null-object fast path.

Two classes share one interface:

* :class:`NullTracer` — the default wired into every component. All of
  its emit methods are no-ops and its :attr:`enabled` class attribute is
  False, so hot paths guard with one attribute load + branch::

      tr = self.tracer
      if tr.enabled:
          tr.walk(now, mode=..., refs=...)

  That guard is the *entire* cost of the subsystem when tracing is off
  (see ``benchmarks/bench_obs_overhead.py`` for the measured bound).

* :class:`Tracer` — records :class:`repro.obs.events.Event` objects
  into an in-memory list, timestamped off the simulated clock it is
  attached to. Events carry only simulation-derived data, so the stream
  is deterministic for a given (workload, seed, config).

Attach a tracer to a built system with
:func:`repro.core.machine.System.attach_observability`; it threads the
tracer into the MMU, the page walker, the VMM, and the trap accountant.
"""

from repro.obs.events import (
    EV_BALLOON,
    EV_CTX_SWITCH,
    EV_GUEST_FAULT,
    EV_MARK,
    EV_POLICY,
    EV_PWC,
    EV_TLB_HIT,
    EV_VMTRAP,
    EV_VM_SWITCH,
    EV_WALK,
    Event,
)


class NullTracer:
    """The do-nothing tracer every component holds by default.

    Also the interface definition: :class:`Tracer` overrides every emit
    method, so code may call any of them unconditionally — but hot paths
    should guard on :attr:`enabled` to skip argument construction.
    """

    enabled = False

    def vmtrap(self, ts, trap, cycles):
        """One VMtrap (or hardware-assist/background-work) charge."""

    def walk(self, ts, mode, refs, depth, shift, asid):
        """One completed page walk (= one TLB miss)."""

    def tlb_hit(self, ts, level, asid):
        """One L1/L2 TLB hit."""

    def pwc(self, ts, structure, hit):
        """One page-walk-cache / nested-TLB probe."""

    def policy(self, ts, direction, pid=None, node=None, level=None,
               count=None):
        """One policy decision (shadow<->nested, promotion, SHSP)."""

    def ctx_switch(self, ts, old_pid, new_pid):
        """One guest context switch."""

    def guest_fault(self, ts, pid, va, is_write):
        """One guest page fault resolved by the guest OS."""

    def vm_switch(self, ts, old_vm, new_vm, cycles):
        """One cross-VM world switch on a consolidated host."""

    def balloon(self, ts, victim_vm, frames, requester_vm):
        """One balloon/reclaim episode revoking frames from a victim."""

    def mark(self, ts, name):
        """A named point in the run (e.g. measurement_start)."""


#: The shared null instance; safe to share because it has no state.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records typed events; the real implementation of the interface."""

    enabled = True

    def __init__(self):
        self.events = []

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def clear(self):
        self.events = []

    # -- emit methods ---------------------------------------------------------

    def vmtrap(self, ts, trap, cycles):
        self.events.append(Event(EV_VMTRAP, ts, cycles, {"trap": trap}))

    def walk(self, ts, mode, refs, depth, shift, asid):
        self.events.append(Event(EV_WALK, ts, 0, {
            "mode": mode, "refs": refs, "depth": str(depth),
            "shift": shift, "asid": asid}))

    def tlb_hit(self, ts, level, asid):
        self.events.append(Event(EV_TLB_HIT, ts, 0,
                                 {"level": level, "asid": asid}))

    def pwc(self, ts, structure, hit):
        self.events.append(Event(EV_PWC, ts, 0,
                                 {"structure": structure, "hit": bool(hit)}))

    def policy(self, ts, direction, pid=None, node=None, level=None,
               count=None):
        data = {"direction": direction}
        if pid is not None:
            data["pid"] = pid
        if node is not None:
            data["node"] = node
        if level is not None:
            data["level"] = level
        if count is not None:
            data["count"] = count
        self.events.append(Event(EV_POLICY, ts, 0, data))

    def ctx_switch(self, ts, old_pid, new_pid):
        self.events.append(Event(EV_CTX_SWITCH, ts, 0,
                                 {"old": old_pid, "new": new_pid}))

    def guest_fault(self, ts, pid, va, is_write):
        self.events.append(Event(EV_GUEST_FAULT, ts, 0, {
            "pid": pid, "va": va, "write": bool(is_write)}))

    def vm_switch(self, ts, old_vm, new_vm, cycles):
        self.events.append(Event(EV_VM_SWITCH, ts, cycles,
                                 {"old": old_vm, "new": new_vm}))

    def balloon(self, ts, victim_vm, frames, requester_vm):
        self.events.append(Event(EV_BALLOON, ts, 0, {
            "victim": victim_vm, "frames": frames,
            "requester": requester_vm}))

    def mark(self, ts, name):
        self.events.append(Event(EV_MARK, ts, 0, {"name": name}))
