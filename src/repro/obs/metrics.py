"""The metrics registry: typed counters, gauges, and histograms.

``RunMetrics`` is the simulator's *result* — what one measured run
cost, bit-identical across cores and execution paths. This module is
the *meta* layer: cheap instrumentation of the harness and the hot
paths themselves (fastpath fallback reasons, walker refs histograms,
TLB/PWC occupancy, runner throughput), feeding dashboards and the
``repro bench`` regression harness rather than the paper's tables.

The design mirrors the tracer's null-object contract exactly:

* :class:`NullMetrics` — the default wired into every component. Its
  :attr:`enabled` class attribute is False and every recording method
  is a no-op, so hot paths guard with one attribute load + branch::

      m = self.metrics
      if m.enabled:
          m.inc("fastpath.fallback.miss")

  That guard is the entire cost when metrics are off
  (``benchmarks/bench_obs_overhead.py`` enforces the ≤2% bound).

* :class:`MetricsRegistry` — the live implementation: a flat namespace
  of named instruments created on first use.

Snapshots (:class:`MetricsSnapshot`) are the unit of transport: a
JSON-safe, schema-versioned, *mergeable* summary of a registry. Sweep
shards and fuzz-campaign shards each produce one; ``merge`` folds any
number of them into fleet totals. Merge semantics:

* counters add,
* histograms add bucket-wise (bucket bounds must match exactly),
* gauges keep the maximum observed value (a high-water mark — the only
  order-independent choice for last-sampled values).

All three are associative and commutative, so ``merge(merge(a, b), c)``
equals ``merge(a, merge(b, c))`` — shard arrival order never matters
(``tests/obs/test_metrics.py`` proves it).

This module sits at layer 0 (see ``repro.lint.flow.layers``): pure
stdlib, no repro imports, so ``hw``/``core``/``runner`` may all hold a
registry without inverting the architecture.
"""

#: Version of the snapshot wire format. Bump on any change to its keys
#: or value encodings; ``from_dict`` refuses other versions so stale
#: BENCH baselines and mixed-version shard pools fail loudly.
METRICS_SNAPSHOT_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (a final +inf bucket is
#: implicit). Tuned for walk-reference counts: native walks cost 4,
#: full nested walks 24.
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 24, 32)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "Counter(%s=%r)" % (self.name, self.value)


class Gauge:
    """A last-sampled level (occupancy, rate); merges as a high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket distribution; bucket ``i`` counts values <= bounds[i].

    The final (implicit) bucket counts values above the last bound.
    Fixed bounds are what make histograms mergeable across processes:
    two histograms with identical bounds add bucket-wise with no loss.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name, bounds=DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty "
                             "sequence, got %r" % (bounds,))
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        i = 0
        for bound in self.bounds:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def __repr__(self):
        return "Histogram(%s, n=%d, mean=%.2f)" % (
            self.name, self.count, self.mean)


class _NullInstrument:
    """Accepts every instrument method as a no-op (the off path)."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


#: Shared no-op instrument; stateless, so one instance serves everyone.
NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The do-nothing registry every component holds by default.

    Also the interface definition: :class:`MetricsRegistry` overrides
    every method, so code may call any of them unconditionally — but hot
    paths should guard on :attr:`enabled` to skip name lookups and
    argument construction entirely.
    """

    enabled = False

    def counter(self, name):
        return NULL_INSTRUMENT

    def gauge(self, name):
        return NULL_INSTRUMENT

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        return NULL_INSTRUMENT

    def inc(self, name, amount=1):
        """Increment the counter ``name``."""

    def set_gauge(self, name, value):
        """Set the gauge ``name``."""

    def observe(self, name, value, bounds=DEFAULT_BUCKETS):
        """Record ``value`` into the histogram ``name``."""

    def snapshot(self):
        return MetricsSnapshot()


#: The shared null instance; safe to share because it has no state.
NULL_METRICS = NullMetrics()


class MetricsRegistry(NullMetrics):
    """A live, typed namespace of instruments, created on first use.

    One registry per measurement scope (a system, a sweep, a bench run).
    A name is permanently typed by its first use; re-registering it as a
    different instrument kind raises, so ``fastpath.fallback.miss`` can
    never silently be a counter in one shard and a gauge in another.
    """

    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument access (get-or-create) --------------------------------

    def counter(self, name):
        counter = self._counters.get(name)
        if counter is None:
            self._check_untyped(name)
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name):
        gauge = self._gauges.get(name)
        if gauge is None:
            self._check_untyped(name)
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name, bounds=DEFAULT_BUCKETS):
        histogram = self._histograms.get(name)
        if histogram is None:
            self._check_untyped(name)
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif histogram.bounds != tuple(bounds):
            raise ValueError(
                "histogram %r already registered with bounds %r, got %r"
                % (name, histogram.bounds, tuple(bounds)))
        return histogram

    def _check_untyped(self, name):
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if name in table:
                raise ValueError("metric %r is already registered as a %s"
                                 % (name, kind))

    # -- convenience recording --------------------------------------------

    def inc(self, name, amount=1):
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value, bounds=DEFAULT_BUCKETS):
        self.histogram(name, bounds).observe(value)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self):
        """A JSON-safe, mergeable :class:`MetricsSnapshot` of this registry."""
        snap = MetricsSnapshot()
        for name, counter in self._counters.items():
            snap.counters[name] = counter.value
        for name, gauge in self._gauges.items():
            snap.gauges[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap.histograms[name] = {
                "bounds": list(histogram.bounds),
                "counts": list(histogram.counts),
                "count": histogram.count,
                "total": histogram.total,
                "min": histogram.min,
                "max": histogram.max,
            }
        return snap

    def merge_snapshot(self, snap):
        """Fold a shipped :class:`MetricsSnapshot` into this registry.

        The inverse of :meth:`snapshot`: a worker records locally, ships
        its snapshot over the process boundary, and the parent folds it
        in. Same semantics as :meth:`MetricsSnapshot.merge`.
        """
        for name, value in snap.counters.items():
            self.counter(name).inc(value)
        for name, value in snap.gauges.items():
            gauge = self.gauge(name)
            if value > gauge.value:
                gauge.set(value)
        for name, data in snap.histograms.items():
            histogram = self.histogram(name, tuple(data["bounds"]))
            if list(histogram.bounds) != list(data["bounds"]):
                raise ValueError(
                    "histogram %r bounds mismatch: %r vs %r"
                    % (name, histogram.bounds, data["bounds"]))
            for i, count in enumerate(data["counts"]):
                histogram.counts[i] += count
            histogram.count += data["count"]
            histogram.total += data["total"]
            if data["min"] is not None and (histogram.min is None
                                            or data["min"] < histogram.min):
                histogram.min = data["min"]
            if data["max"] is not None and (histogram.max is None
                                            or data["max"] > histogram.max):
                histogram.max = data["max"]

    def reset(self):
        """Zero every instrument (names and types are kept)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.bounds) + 1)
            histogram.count = 0
            histogram.total = 0
            histogram.min = None
            histogram.max = None


class MetricsSnapshot:
    """The transport form of a registry: JSON-safe, versioned, mergeable."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self, counters=None, gauges=None, histograms=None):
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = dict(histograms or {})

    def merge(self, other):
        """A new snapshot combining both operands (self is unchanged).

        Counters add; histograms add bucket-wise (bounds must match);
        gauges keep the maximum. Associative and commutative, so shards
        may be folded in any order.
        """
        merged = MetricsSnapshot(self.counters, self.gauges,
                                 {name: dict(data)
                                  for name, data in self.histograms.items()})
        for name, value in other.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            merged.gauges[name] = max(merged.gauges.get(name, value), value)
        for name, data in other.histograms.items():
            mine = merged.histograms.get(name)
            if mine is None:
                merged.histograms[name] = dict(data)
                continue
            if list(mine["bounds"]) != list(data["bounds"]):
                raise ValueError(
                    "cannot merge histogram %r: bounds %r vs %r"
                    % (name, mine["bounds"], data["bounds"]))
            mine["counts"] = [a + b
                              for a, b in zip(mine["counts"], data["counts"])]
            mine["count"] = mine["count"] + data["count"]
            mine["total"] = mine["total"] + data["total"]
            mins = [v for v in (mine["min"], data["min"]) if v is not None]
            maxes = [v for v in (mine["max"], data["max"]) if v is not None]
            mine["min"] = min(mins) if mins else None
            mine["max"] = max(maxes) if maxes else None
        return merged

    # -- serialization (bench reports / shard summaries) --------------------

    def to_dict(self):
        """Full-fidelity JSON form; ``from_dict`` round-trips it exactly."""
        return {
            "schema_version": METRICS_SNAPSHOT_SCHEMA_VERSION,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(data)
                           for name, data in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a snapshot; raises ``ValueError`` on a foreign schema."""
        version = data.get("schema_version", 1)
        if version != METRICS_SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                "metrics snapshot has schema_version %r but this build reads "
                "version %d; regenerate the snapshot and retry"
                % (version, METRICS_SNAPSHOT_SCHEMA_VERSION))
        return cls(counters=data["counters"], gauges=data["gauges"],
                   histograms=data["histograms"])

    def __eq__(self, other):
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (self.counters == other.counters
                and self.gauges == other.gauges
                and self.histograms == other.histograms)

    def __repr__(self):
        return ("MetricsSnapshot(%d counters, %d gauges, %d histograms)"
                % (len(self.counters), len(self.gauges),
                   len(self.histograms)))
