"""Configuration objects describing the simulated machine.

``sandy_bridge_config`` reproduces the per-core TLB hierarchy of the
paper's Table III (dual-socket Xeon E5-2430). Everything else — paging
mode, page size, page-walk caches, the two optional hardware
optimizations, and policy intervals — is selected per experiment.
"""

from dataclasses import dataclass, field, replace

from repro.common.params import FOUR_KB, ONE_GB, TWO_MB, PageSize

# Paging modes, named as in the paper's figures (B / N / S / A).
MODE_NATIVE = "native"
MODE_NESTED = "nested"
MODE_SHADOW = "shadow"
MODE_AGILE = "agile"
# SHSP (Wang et al., VEE 2011): the prior-work baseline that switches a
# whole process between nested and shadow paging over time.
MODE_SHSP = "shsp"
ALL_MODES = (MODE_NATIVE, MODE_NESTED, MODE_SHADOW, MODE_AGILE)
VIRTUALIZED_MODES = (MODE_NESTED, MODE_SHADOW, MODE_AGILE, MODE_SHSP)
EXTENDED_MODES = ALL_MODES + (MODE_SHSP,)

MODE_LABELS = {
    MODE_NATIVE: "B",
    MODE_NESTED: "N",
    MODE_SHADOW: "S",
    MODE_AGILE: "A",
}

# Simulation cores. "reference" is the original dict-of-objects model;
# "fastpath" swaps in the flat-array TLB/PWC stores and the batch walker
# (repro.core.fastpath), proven bit-identical by tests/fastpath.
CORE_REFERENCE = "reference"
CORE_FASTPATH = "fastpath"
VALID_CORES = (CORE_REFERENCE, CORE_FASTPATH)


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one TLB structure for one page size."""

    entries: int
    ways: int

    def __post_init__(self):
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB geometry must be positive")
        if self.entries % self.ways:
            raise ValueError(
                "entries (%d) must be a multiple of ways (%d)" % (self.entries, self.ways)
            )

    @property
    def sets(self):
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBHierarchyConfig:
    """Per-core TLB hierarchy: L1 data, L1 instruction, unified L2.

    Maps page-size name -> :class:`TLBConfig`. A missing page size means
    that structure cannot hold entries of that size (e.g., no 1 GB entries
    in the Sandy Bridge L2), in which case L1 is the only cache for them.
    """

    l1d: dict
    l1i: dict
    l2: dict


def sandy_bridge_tlbs():
    """The Table III per-core TLB hierarchy."""
    return TLBHierarchyConfig(
        l1d={
            "4K": TLBConfig(entries=64, ways=4),
            "2M": TLBConfig(entries=32, ways=4),
            "1G": TLBConfig(entries=4, ways=4),
        },
        l1i={
            "4K": TLBConfig(entries=128, ways=4),
            "2M": TLBConfig(entries=8, ways=8),
        },
        l2={
            "4K": TLBConfig(entries=512, ways=4),
            "2M": TLBConfig(entries=512, ways=4),
        },
    )


@dataclass(frozen=True)
class PWCConfig:
    """Page-walk-cache geometry: one skip table per skippable level count.

    Mirrors Intel's three partial-translation tables (skip 1, 2, or 3 top
    levels of the radix tree), extended per Section III-A with a mode bit
    so entries may point into either the shadow or the guest page table.
    """

    enabled: bool = True
    entries_per_table: int = 32


@dataclass(frozen=True)
class PolicyConfig:
    """Knobs for the VMM switching policies of Section III-C."""

    # Writes to one guest PT page within `write_interval` cycles that
    # trigger a shadow->nested conversion of that subtree. The paper's
    # interval is 1 second; ours is scaled to simulated run lengths.
    write_threshold: int = 2
    write_interval: int = 60_000
    # Period of the nested->shadow reversion scan.
    revert_interval: int = 150_000
    # 'dirty' (scan host-PT dirty bits, revert quiescent subtrees) or
    # 'simple' (revert everything each interval) or 'none'.
    revert_policy: str = "dirty"
    # Short-lived process handling: start fully nested, enable agile only
    # after `grace_cycles` if TLB misses exceed `miss_rate_threshold`
    # misses per 1000 operations.
    start_nested: bool = False
    grace_cycles: int = 500_000
    miss_rate_threshold: float = 5.0


@dataclass(frozen=True)
class CostConfig:
    """Cycle costs feeding the Table IV performance model.

    Calibrated, not measured: a page-walk memory reference costs roughly a
    cache/DRAM access; a VMtrap costs thousands of cycles (Section II-B).
    """

    cycles_per_op: int = 2  # ideal cycles per simulated operation
    cycles_per_walk_ref: int = 40
    # With the optional PTE data-cache model enabled, hits cost this:
    cycles_per_cached_ref: int = 8
    cycles_tlb_l1_hit: int = 0
    cycles_tlb_l2_hit: int = 7
    vmtrap_base_cycles: int = 1200  # VMexit + resume
    vmtrap_pt_write_cycles: int = 2200
    vmtrap_context_switch_cycles: int = 1800
    vmtrap_shadow_fill_cycles: int = 2800
    vmtrap_dirty_sync_cycles: int = 2000
    vmtrap_host_fault_cycles: int = 3500
    guest_fault_cycles: int = 900


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to assemble one simulated system."""

    mode: str = MODE_NATIVE
    page_size: PageSize = FOUR_KB  # guest translation granule
    # Host (second-stage) granule; None means "same as the guest", the
    # paper's evaluated configuration. Setting them differently models
    # Section V's mixed case: the TLB entry is broken to the smaller
    # granule.
    host_page_size: PageSize = None
    tlbs: TLBHierarchyConfig = field(default_factory=sandy_bridge_tlbs)
    pwc: PWCConfig = field(default_factory=PWCConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    cost: CostConfig = field(default_factory=CostConfig)
    # Optional hardware optimizations (Section IV).
    hw_ad_assist: bool = True
    hw_cr3_cache: bool = True
    cr3_cache_entries: int = 8
    # Nested TLB (gPA->hPA cache) present on real hardware; disable to get
    # the raw reference counts of Table II / Table VI.
    nested_tlb_entries: int = 0
    # Optional PTE data-cache model (repro.hw.ptecache): 0 disables it,
    # in which case `cycles_per_walk_ref` stands for the *average* cost
    # including data-cache effects (the default calibration).
    pte_cache_lines: int = 0
    # Paranoid mode (repro.vmm.invariants): re-validate shadow/guest/TLB
    # coherence after every VMtrap and mode switch. Costs simulation
    # wall-clock time but never simulated cycles.
    paranoid: bool = False
    # Physical memory sizes, in frames (4 KB each).
    guest_mem_frames: int = 1 << 16  # 256 MB of guest-physical space
    host_mem_frames: int = 1 << 17  # 512 MB of host-physical space
    # Which simulation core executes the hot path: one of VALID_CORES.
    # Both cores produce bit-identical RunMetrics; "fastpath" is faster.
    core: str = CORE_REFERENCE

    def __post_init__(self):
        if self.mode not in EXTENDED_MODES:
            raise ValueError("unknown paging mode: %r" % (self.mode,))
        if self.core not in VALID_CORES:
            raise ValueError(
                "unknown simulation core: %r (valid cores: %s)"
                % (self.core, ", ".join(VALID_CORES)))
        if not isinstance(self.page_size, PageSize):
            raise TypeError("page_size must be a PageSize")
        if self.host_page_size is not None and not isinstance(
                self.host_page_size, PageSize):
            raise TypeError("host_page_size must be a PageSize or None")

    @property
    def host_granule(self):
        """The second-stage translation granule."""
        return self.host_page_size if self.host_page_size is not None else self.page_size

    @property
    def virtualized(self):
        return self.mode != MODE_NATIVE

    def with_mode(self, mode):
        """A copy of this config running under a different paging mode."""
        return replace(self, mode=mode)

    def with_page_size(self, page_size):
        """A copy of this config using a different translation granule."""
        return replace(self, page_size=page_size)


def sandy_bridge_config(mode=MODE_NATIVE, page_size=FOUR_KB, **overrides):
    """A Table III machine in the requested mode/page size."""
    return replace(MachineConfig(mode=mode, page_size=page_size), **overrides)


@dataclass(frozen=True)
class HostConfig:
    """A consolidated host: N guest VMs multiplexed over shared RAM.

    The paper evaluates one guest at a time; this config describes the
    multi-tenant deployment its claims matter most for — several VMs
    sharing one physical machine, scheduled on one clock, with the host
    memory optionally overcommitted (``vms * vm_frames > host_frames``).
    Paired with a per-VM :class:`MachineConfig` by
    :class:`repro.core.hostsys.HostSystem`.
    """

    # Number of guest VMs packed onto the host (the consolidation ratio).
    vms: int = 2
    # Physical host frames actually present (the commit limit ballooning
    # defends). 0 means "no overcommit": vms * vm_frames.
    host_frames: int = 0
    # Per-VM host-physical reservation, in frames. Each VM allocates
    # from its own partition of this size, so its frame numbers are
    # bit-identical to a solo machine with host_mem_frames=vm_frames.
    vm_frames: int = 1 << 16
    # vCPU scheduling: round-robin with weighted quanta on the shared
    # clock. A VM runs for quantum_cycles * weight before preemption.
    quantum_cycles: int = 20_000
    # Per-VM scheduling weights; empty means every VM weighs 1.0.
    weights: tuple = ()
    # Cross-VM world switch: VMCS save/restore plus host scheduler work.
    # Deliberately distinct from (and costlier than) the guest-internal
    # vmtrap_context_switch_cycles of CostConfig.
    world_switch_cycles: int = 4_000
    # VPID-style tagged TLBs: when False a world switch flushes the
    # incoming VM's TLBs, as on hardware without address-space tags.
    vpid: bool = True
    # Ballooning: frames reclaimed from a victim per pressure episode,
    # and the per-frame revocation cost charged to the victim's VMM.
    balloon_batch: int = 64
    balloon_page_cycles: int = 300

    def __post_init__(self):
        if self.vms <= 0:
            raise ValueError("a host needs at least one VM")
        if self.vm_frames <= 0:
            raise ValueError("vm_frames must be positive")
        if self.host_frames < 0:
            raise ValueError("host_frames cannot be negative")
        if self.quantum_cycles <= 0:
            raise ValueError("quantum_cycles must be positive")
        if self.weights and len(self.weights) != self.vms:
            raise ValueError(
                "weights must be empty or name every VM (%d given, %d VMs)"
                % (len(self.weights), self.vms))
        if any(w <= 0 for w in self.weights):
            raise ValueError("scheduling weights must be positive")

    @property
    def total_reserved_frames(self):
        """Sum of every VM's reservation (may exceed host_frames)."""
        return self.vms * self.vm_frames

    @property
    def commit_limit_frames(self):
        """Physical frames the host can actually commit."""
        return self.host_frames if self.host_frames else self.total_reserved_frames

    @property
    def overcommit_ratio(self):
        """reserved / physical — above 1.0 ballooning may be needed."""
        return self.total_reserved_frames / self.commit_limit_frames

    def weight_of(self, vm_id):
        """Scheduling weight of one VM (1.0 unless configured)."""
        return float(self.weights[vm_id]) if self.weights else 1.0


__all__ = [
    "MODE_NATIVE",
    "MODE_NESTED",
    "MODE_SHADOW",
    "MODE_AGILE",
    "ALL_MODES",
    "VIRTUALIZED_MODES",
    "MODE_LABELS",
    "CORE_REFERENCE",
    "CORE_FASTPATH",
    "VALID_CORES",
    "TLBConfig",
    "TLBHierarchyConfig",
    "PWCConfig",
    "PolicyConfig",
    "CostConfig",
    "MachineConfig",
    "HostConfig",
    "sandy_bridge_tlbs",
    "sandy_bridge_config",
    "FOUR_KB",
    "TWO_MB",
    "ONE_GB",
]
