"""Effect annotations: the vocabulary of the whole-program analyzer.

The simulator's trickiest contracts span call chains — *only* VMM trap
handlers may reach the shadow page table, *every* switching-bit flip
must trace back to a Section III-C policy decision. These decorators
declare which functions touch what, so ``repro.lint.flow`` can verify
the call graph statically (rules REPRO401/REPRO402; see
``docs/static_analysis.md``).

The decorators are runtime no-ops: they tag the function object and
return it unchanged (no wrapper, no call overhead), so annotating a
hot-path trap handler costs nothing. The analyzer never imports the
annotated modules either — it reads the decorator *syntax* from the
AST, which keeps linting side-effect free.

Vocabulary:

``@mutates(resource)``
    This function writes the named piece of privileged VMM state.
    Resources: ``"shadow_pt"`` (the shadow table and its node-mode
    metadata), ``"switching_bits"`` (the agile boundary entries), and
    ``"host_ledger"`` (the consolidated host's commit ledger — only the
    ``repro.host`` subsystem may meter it; rule REPRO406).
``@trap_handler``
    A VMM entry point that runs in response to a VMexit / guest-platform
    hook — authorized to reach shadow-state mutators.
``@policy_decision``
    A Section III-C policy hook (write trigger, reversion scan,
    short-lived promotion, SHSP selection) — the only origin from which
    switching-bit mutations may flow.
"""

#: The privileged state resources ``@mutates`` may name.
RESOURCES = ("shadow_pt", "switching_bits", "host_ledger")


def mutates(resource):
    """Declare that the decorated function writes ``resource``."""
    if resource not in RESOURCES:
        raise ValueError(
            "unknown effect resource %r (known: %s)"
            % (resource, ", ".join(RESOURCES)))

    def annotate(fn):
        fn.__repro_mutates__ = getattr(fn, "__repro_mutates__", ()) + (resource,)
        return fn

    return annotate


def trap_handler(fn):
    """Mark a VMM trap entry point (VMexit / guest-platform hook)."""
    fn.__repro_trap_handler__ = True
    return fn


def policy_decision(fn):
    """Mark a Section III-C policy hook (the origin of mode switches)."""
    fn.__repro_policy_decision__ = True
    return fn


__all__ = ["RESOURCES", "mutates", "trap_handler", "policy_decision"]
