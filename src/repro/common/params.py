"""Address-space geometry for an x86-64-style four-level radix page table.

The paper (and this reproduction) uses the standard x86-64 layout:

* 48-bit canonical virtual addresses,
* a 4 KB base page (12 offset bits),
* four radix levels of 9 bits each (512 entries per node),
* large pages that terminate the walk early: 2 MB leaves at level 2 and
  1 GB leaves at level 3.

Levels are numbered as in the paper's Table II: level 4 is the root
(the PML4 in Intel terms) and level 1 holds the leaf PTEs.

The address-carrying helpers are annotated with the space-generic
:mod:`repro.common.addrspace` domains (``addr``/``frame``/``offset``)
because they serve gVA, gPA and hPA alike; the domain analyzer
(REPRO601–605) specializes them at each call site.
"""

from repro.common.addrspace import returns, takes

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

LEVEL_BITS = 9
ENTRIES_PER_NODE = 1 << LEVEL_BITS
NUM_LEVELS = 4
ROOT_LEVEL = NUM_LEVELS
LEAF_LEVEL = 1

VA_BITS = PAGE_SHIFT + NUM_LEVELS * LEVEL_BITS  # 48
VA_LIMIT = 1 << VA_BITS

SIZE_4K = 1 << 12
SIZE_2M = 1 << 21
SIZE_1G = 1 << 30


class PageSize:
    """A supported translation granule.

    Instances are singletons (:data:`FOUR_KB`, :data:`TWO_MB`,
    :data:`ONE_GB`); compare them with ``is`` or ``==``.
    """

    __slots__ = ("name", "shift", "bytes", "leaf_level")

    def __init__(self, name, shift, leaf_level):
        self.name = name
        self.shift = shift
        self.bytes = 1 << shift
        self.leaf_level = leaf_level

    def __repr__(self):
        return "PageSize(%s)" % self.name

    def __str__(self):
        return self.name


FOUR_KB = PageSize("4K", 12, 1)
TWO_MB = PageSize("2M", 21, 2)
ONE_GB = PageSize("1G", 30, 3)

PAGE_SIZES = {ps.name: ps for ps in (FOUR_KB, TWO_MB, ONE_GB)}


def level_shift(level):
    """Bit position of the index field for ``level`` within a VA."""
    if not LEAF_LEVEL <= level <= ROOT_LEVEL:
        raise ValueError("page table level out of range: %r" % (level,))
    return PAGE_SHIFT + LEVEL_BITS * (level - 1)


@takes(va="addr")
@returns("offset")
def pt_index(va, level):
    """The 9-bit index used to select an entry at ``level`` for ``va``.

    Mirrors the ``index(VA, i)`` helper in the paper's Figure 2 pseudocode.
    """
    return (va >> level_shift(level)) & (ENTRIES_PER_NODE - 1)


@takes(va="addr")
@returns("frame")
def page_number(va, page_shift=PAGE_SHIFT):
    """Virtual (or physical) page number of ``va`` at a given granule."""
    return va >> page_shift


@takes(va="addr")
@returns("offset")
def page_offset(va, page_shift=PAGE_SHIFT):
    """Offset of ``va`` within its page at a given granule."""
    return va & ((1 << page_shift) - 1)


@takes(va="addr")
@returns("addr")
def page_base(va, page_shift=PAGE_SHIFT):
    """The address of the start of the page containing ``va``."""
    return va & ~((1 << page_shift) - 1)


def align_up(value, alignment):
    """Round ``value`` up to the next multiple of ``alignment``."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_canonical(va):
    """True if ``va`` fits in the simulated 48-bit address space."""
    return 0 <= va < VA_LIMIT


def level_span(level):
    """Bytes of virtual address space covered by one entry at ``level``."""
    return 1 << level_shift(level)


def walk_levels(leaf_level=LEAF_LEVEL):
    """Levels visited by a walk, root first: 4, 3, ... down to the leaf."""
    return range(ROOT_LEVEL, leaf_level - 1, -1)
