"""Address-space annotations: the vocabulary of the domain analyzer.

Agile paging's entire subject is the gVA→gPA→hPA pipeline, and the
simulator's native bug class is mixing those domains — comparing a
guest-physical frame against a host-physical one, indexing host RAM
with a gfn, shifting an already-shifted value. These annotations give
every address-carrying parameter and return value a declared *domain*
so ``repro.lint.domains`` can typecheck the pipeline statically (rules
REPRO601–REPRO605; see ``docs/static_analysis.md``).

Like ``repro.common.effects``, the decorators are runtime no-ops: they
tag the function object and return it unchanged (no wrapper, no call
overhead). The analyzer never imports annotated modules — it reads the
decorator *syntax* from the AST.

The domains (every one aliases ``int``; the aliases are documentation
plus grep bait, never enforced at runtime):

=========  ======================  =====================================
name       space                   unit
=========  ======================  =====================================
``gva``    guest-virtual           byte address
``vpn``    guest-virtual           page/frame number (``gva >> 12``)
``gpa``    guest-physical          byte address
``gfn``    guest-physical          frame number (``gpa >> 12``)
``hpa``    host-physical           byte address
``hfn``    host-physical           frame number (``hpa >> 12``)
``offset`` —                       intra-page offset / table index
``addr``   any (space-generic)     byte address
``frame``  any (space-generic)     frame number
=========  ======================  =====================================

``addr`` and ``frame`` exist because the radix-table machinery
(:class:`repro.mem.pagetable.PageTable`,
:class:`repro.mem.physmem.PhysicalMemory`) is deliberately generic —
one class serves the guest, host, and shadow tables — so only the
*unit* is fixed there; the space is the caller's.

Vocabulary:

``@takes(va="gva", frame="hfn")``
    Declares the domain of named parameters. Call sites passing a value
    the analyzer has inferred into a *different* space are REPRO602
    (REPRO603 at a physical-memory accessor); a same-space frame/byte
    mix-up is REPRO604.
``@returns("hfn")`` / ``@returns("hfn", None, None)``
    Declares the domain of the return value; the tuple form types each
    element of a returned tuple (``None`` = undeclared).
``@translates("gfn", "hfn")``
    Declares a pipeline edge: the function consumes a ``src``-domain
    value (its first data parameter, unless ``@takes`` says otherwise)
    and produces a ``dst``-domain value. Every declared pair must be a
    real paper-model edge (gVA→gPA, gPA→hPA, or the shadow-composed
    gVA→hPA, in byte or frame form) and be reachable from the hardware
    walker — REPRO605.
"""

# NewType-style aliases for signatures and docstrings. Zero runtime
# cost: they *are* int, so arithmetic and numpy interop are untouched.
GVA = int
GPA = int
HPA = int
GFN = int
HFN = int
VPN = int
Offset = int

#: Every domain name the decorators accept.
DOMAINS = ("gva", "gpa", "hpa", "gfn", "hfn", "vpn", "offset",
           "addr", "frame")

#: The translation edges of the paper's model (Figure 1): the guest
#: table's gVA→gPA, the host table's gPA→hPA, and the shadow-composed
#: gVA→hPA — each in byte-address or frame-number form.
PAPER_EDGES = (
    ("gva", "gpa"), ("vpn", "gfn"),
    ("gpa", "hpa"), ("gfn", "hfn"),
    ("gva", "hpa"), ("vpn", "hfn"),
)


def _check_domain(name):
    if name not in DOMAINS:
        raise ValueError(
            "unknown address domain %r (known: %s)"
            % (name, ", ".join(DOMAINS)))


def takes(**param_domains):
    """Declare the address domain of each named parameter."""
    for name in param_domains.values():
        _check_domain(name)

    def annotate(fn):
        merged = dict(getattr(fn, "__repro_takes__", ()))
        merged.update(param_domains)
        fn.__repro_takes__ = tuple(sorted(merged.items()))
        return fn

    return annotate


def returns(*domains):
    """Declare the domain of the return value (tuple-positional form
    types each element; ``None`` leaves one undeclared)."""
    for name in domains:
        if name is not None:
            _check_domain(name)

    def annotate(fn):
        fn.__repro_returns__ = tuple(domains)
        return fn

    return annotate


def translates(src, dst):
    """Declare that this function is a translation-pipeline edge
    ``src`` → ``dst`` (consumes src, produces dst)."""
    _check_domain(src)
    _check_domain(dst)

    def annotate(fn):
        fn.__repro_translates__ = (src, dst)
        return fn

    return annotate


__all__ = ["GVA", "GPA", "HPA", "GFN", "HFN", "VPN", "Offset",
           "DOMAINS", "PAPER_EDGES", "takes", "returns", "translates"]
