"""The virtual cycle clock shared by every simulated component.

This module is the one place host wall time and a VM's virtual time
legitimately meet: :meth:`VirtualClock.advance` bills its host clock as
a side effect of billing itself. ``repro.lint.time`` exempts the module
from the REPRO702 authority rule for exactly that pass-through;
everywhere else, VM-side code advancing ``clock.host`` is a finding.
"""

from repro.common.timedomain import cycles


class Clock:
    """A monotonically advancing cycle counter.

    All costs — ideal per-operation work, page-walk memory references,
    guest fault handling, VMtraps — advance this one clock, so policy
    intervals (Section III-C's "fixed time interval") and reported
    overheads share a time base.
    """

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0

    @cycles(cycles="duration")
    def advance(self, cycles):
        if cycles < 0:
            raise ValueError("time cannot move backwards")
        self.now += cycles

    def __repr__(self):
        return "Clock(now=%d)" % self.now


class VirtualClock:
    """One VM's view of a shared host :class:`Clock`.

    Advances pass through to the host clock — host wall time is the sum
    of every tenant's work — but ``now`` reads only the cycles advanced
    through *this* view: the VM's own virtual time. Guest-side policy
    intervals (Section III-C's "fixed time interval") therefore measure
    guest execution time, not host wall time, so a VM's switching
    decisions — and with them its whole translation state — are
    independent of what other tenants do on the shared machine. This is
    what makes a consolidated VM bit-identical to its solo baseline
    (the cross-VM isolation oracle's invariant).
    """

    __slots__ = ("host", "now")

    def __init__(self, host):
        self.host = host
        self.now = 0

    @cycles(cycles="duration")
    def advance(self, cycles):
        if cycles < 0:
            raise ValueError("time cannot move backwards")
        self.now += cycles
        self.host.advance(cycles)

    def __repr__(self):
        return "VirtualClock(now=%d, host=%d)" % (self.now, self.host.now)
