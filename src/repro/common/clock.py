"""The virtual cycle clock shared by every simulated component."""


class Clock:
    """A monotonically advancing cycle counter.

    All costs — ideal per-operation work, page-walk memory references,
    guest fault handling, VMtraps — advance this one clock, so policy
    intervals (Section III-C's "fixed time interval") and reported
    overheads share a time base.
    """

    __slots__ = ("now",)

    def __init__(self):
        self.now = 0

    def advance(self, cycles):
        if cycles < 0:
            raise ValueError("time cannot move backwards")
        self.now += cycles

    def __repr__(self):
        return "Clock(now=%d)" % self.now
