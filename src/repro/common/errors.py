"""Fault and exit taxonomy for the simulated machine.

Three distinct parties handle faults, exactly as in the paper:

* the **guest OS** handles :class:`GuestPageFault` (demand paging, COW),
* the **VMM** handles everything derived from :class:`VMExit` — host
  page-table faults under nested mode, shadow page-table misses and
  protection (dirty-tracking) faults under shadow/agile mode, mediated
  guest page-table writes, and context-switch traps,
* plain :class:`SimulationError` signals a bug or misuse of the simulator
  itself and is never "handled" by simulated software.
"""


class SimulationError(Exception):
    """An internal inconsistency in the simulator (not a simulated fault)."""


class TranslationFault(Exception):
    """Base class for faults raised mid-walk by the hardware walker.

    ``refs`` carries the memory references already performed by the walk
    so the cost model can charge partial walks that end in a fault.
    """

    def __init__(self, va, refs=0, level=None, message=""):
        self.va = va
        self.refs = refs
        self.level = level
        detail = message or self.__class__.__name__
        super().__init__("%s at va=%#x (level=%r, refs=%d)" % (detail, va, level, refs))


class GuestPageFault(TranslationFault):
    """A not-present or protection fault in the *guest* page table.

    Delivered to the guest OS; with nested paging this never exits to the
    VMM, matching the paper's "fast direct updates" property.
    """

    def __init__(self, va, refs=0, level=None, is_write=False, protection=False):
        self.is_write = is_write
        self.protection = protection
        super().__init__(va, refs, level)


class VMExit(TranslationFault):
    """Base class for faults that transfer control to the VMM (a VMtrap)."""


class HostPageFault(VMExit):
    """A not-present fault in the host (nested) page table: gPA with no hPA."""

    def __init__(self, va, gpa, refs=0, level=None, is_write=False):
        self.gpa = gpa
        self.is_write = is_write
        super().__init__(va, refs, level)


class ShadowNotPresentFault(VMExit):
    """The shadow page table lacks an entry; the VMM must merge one in."""

    def __init__(self, va, refs=0, level=None, is_write=False):
        self.is_write = is_write
        super().__init__(va, refs, level)


class ShadowProtectionFault(VMExit):
    """A write hit a read-only shadow PTE whose guest PTE permits writes.

    This is the dirty-bit tracking trap of Section III-B: the VMM sets the
    dirty bit in guest and shadow PTEs and enables the write.
    """

    def __init__(self, va, refs=0, level=None):
        super().__init__(va, refs, level)
