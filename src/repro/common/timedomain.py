"""Time-domain annotations: the vocabulary of the time analyzer.

The consolidated host (PR 9) gave the simulator a second time base:
every VM runs on a :class:`repro.common.clock.VirtualClock` view of the
shared host :class:`~repro.common.clock.Clock`, so "now" means three
different things depending on where you stand. The PR 9 bug class —
clock-windowed policies reading host wall time instead of guest virtual
time — broke bit-identical solo≡consolidated replay and could only be
caught dynamically by the isolation fuzz oracle. These annotations give
every cycle-carrying parameter, return value, and clock mutation a
declared *time domain* so ``repro.lint.time`` can typecheck the
accounting statically (rules REPRO701–REPRO704; see
``docs/static_analysis.md``).

Like ``repro.common.effects`` and ``repro.common.addrspace``, the
decorators are runtime no-ops: they tag the function object and return
it unchanged (no wrapper, no call overhead). The analyzer never imports
annotated modules — it reads the decorator *syntax* from the AST.

The domains:

==============  ======================================================
name            meaning
==============  ======================================================
``host_wall``   an instant on the shared host clock (``Clock.now``):
                the sum of every tenant's work plus world switches
``vm_virtual``  an instant on one VM's ``VirtualClock.now``: that VM's
                own cycles, as the *host* sees them
``guest_sim``   an instant on "my clock" as guest-side code sees it —
                a solo machine's ``Clock`` or a consolidated VM's
                ``VirtualClock``; same time base as ``vm_virtual``,
                viewed from inside
``duration``    a cycle *count* with no epoch (an interval, a cost, a
                quantum) — safe to move between clocks
==============  ======================================================

``vm_virtual`` and ``guest_sim`` are two names for the same time base
(one VM's virtual time) and are mutually compatible; ``host_wall``
conflicts with both. Instants subtract to durations; instants never
add; a duration shifts an instant along its own clock only.

Vocabulary:

``@cycles("duration")`` / ``@cycles(now="guest_sim")``
    Declares the time domain of the return value (positional string)
    and/or of named parameters (keywords). Call sites passing a value
    the analyzer has inferred onto a *different* clock are REPRO701.
``@advances("host_wall")`` / ``@advances("guest_sim")``
    Declares that this function advances that clock. Only
    ``VCpuScheduler``/``Host`` may declare (or perform) a host-clock
    advance — anything else is REPRO702. VM-side code advances its own
    view (``guest_sim``); the pass-through to host wall time happens
    inside ``VirtualClock``, the one module exempt from the rule.
``@charges("walk_cycles", "sink:warmup")``
    Declares which :class:`repro.core.metrics.RunMetrics` counters (or
    host-side counters, or explicitly named ``sink:`` drains) the clock
    advances inside this function are attributed to. A clock-advance
    site in a function with no ``@charges`` is REPRO703 — every cycle
    on the clock must be accounted for somewhere ``total_cycles`` can
    be decomposed into.
"""

#: Every declarable time domain.
TIME_DOMAINS = ("host_wall", "vm_virtual", "guest_sim", "duration")

#: The two advanceable clock sides (``vm_virtual`` is the host's name
#: for a guest-side view; advances through it are ``guest_sim``).
CLOCKS = ("host_wall", "guest_sim")

#: Every RunMetrics cycle counter an advance may be charged to. The
#: REPRO704 closure check pins this tuple against the RunMetrics
#: definition, its ``to_dict``/``from_dict`` wire format, and the
#: snapshot merge algebra — a counter added to one but not the others
#: fails ``repro check``.
CYCLE_COUNTERS = (
    "total_cycles",
    "ideal_cycles",
    "walk_cycles",
    "tlb_l2_cycles",
    "vmm_cycles",
    "guest_fault_cycles",
    "trap_cycles",
)

#: Host-side counters (never part of a guest's RunMetrics): the
#: scheduler's world-switch bill and per-VM vCPU time.
HOST_CYCLE_COUNTERS = ("world_switch_cycles", "cpu_cycles")

#: Prefix naming an explicitly-acknowledged drain: cycles charged to
#: the clock that no reported counter decomposes (e.g. warmup idling).
SINK_PREFIX = "sink:"


def _check_domain(name):
    if name not in TIME_DOMAINS:
        raise ValueError(
            "unknown time domain %r (known: %s)"
            % (name, ", ".join(TIME_DOMAINS)))


def _check_counter(name):
    if name.startswith(SINK_PREFIX):
        if len(name) <= len(SINK_PREFIX):
            raise ValueError("empty sink name in %r" % (name,))
        return
    if name not in CYCLE_COUNTERS and name not in HOST_CYCLE_COUNTERS:
        raise ValueError(
            "unknown cycle counter %r (RunMetrics counters: %s; host "
            "counters: %s; or a %r-prefixed sink)"
            % (name, ", ".join(CYCLE_COUNTERS),
               ", ".join(HOST_CYCLE_COUNTERS), SINK_PREFIX))


def cycles(*return_domain, **param_domains):
    """Declare the time domain of the return value and/or parameters.

    ``@cycles("duration")`` types the return value;
    ``@cycles(now="guest_sim")`` types the named parameter; both forms
    compose in one decorator.
    """
    if len(return_domain) > 1:
        raise ValueError("at most one positional return domain, got %r"
                         % (return_domain,))
    for name in return_domain:
        _check_domain(name)
    for name in param_domains.values():
        _check_domain(name)

    def annotate(fn):
        if return_domain:
            fn.__repro_cycles_returns__ = return_domain[0]
        merged = dict(getattr(fn, "__repro_cycles_params__", ()))
        merged.update(param_domains)
        fn.__repro_cycles_params__ = tuple(sorted(merged.items()))
        return fn

    return annotate


def advances(clock):
    """Declare that this function advances the named clock side."""
    if clock not in CLOCKS:
        raise ValueError("unknown clock %r (advanceable clocks: %s)"
                         % (clock, ", ".join(CLOCKS)))

    def annotate(fn):
        declared = getattr(fn, "__repro_advances__", ())
        fn.__repro_advances__ = declared + (clock,)
        return fn

    return annotate


def charges(*counters):
    """Declare the counters this function's clock advances flow into."""
    if not counters:
        raise ValueError("@charges needs at least one counter name")
    for name in counters:
        _check_counter(name)

    def annotate(fn):
        declared = getattr(fn, "__repro_charges__", ())
        fn.__repro_charges__ = declared + tuple(counters)
        return fn

    return annotate


__all__ = ["TIME_DOMAINS", "CLOCKS", "CYCLE_COUNTERS",
           "HOST_CYCLE_COUNTERS", "SINK_PREFIX", "cycles", "advances",
           "charges"]
