"""Per-function abstract interpretation over the time lattice.

:func:`analyze_time` runs over the :func:`build_program` call graph
(parsing nothing — it walks the AST nodes the flow analysis already
kept per function) and produces a :class:`TimeReport`:

* per-function forward dataflow over the time lattice — locals are
  seeded from ``@cycles`` parameters and updated through the clock
  idioms (``self.clock.now`` is an instant on the module's clock side,
  ``x.system.clock`` is a VM's virtual clock, ``clock.host`` reaches
  the shared host clock through a ``VirtualClock``, instants subtract
  to durations, a duration shifts an instant along its own clock),
* the findings for REPRO701 (cross-clock arithmetic/compares/calls),
  REPRO702 (host-clock authority) and REPRO703 (cycle conservation:
  every clock-advance site sits in a function declaring ``@charges``),
* the REPRO704 metrics-merge closure checks, which pin the
  ``RunMetrics``/``MetricsSnapshot`` cycle fields against
  ``timedomain.CYCLE_COUNTERS``, the ``to_dict``/``from_dict`` wire
  formats, and the snapshot merge algebra.

Branches join conservatively (disagreeing values drop to unknown), so
only operations on two *known* conflicting values report — annotations
buy checking, unannotated code stays silent.
"""

import ast

from repro.lint.flow.analysis import _resolve_call, build_program
from repro.lint.time.model import (
    ClockRef,
    TimeValue,
    clocks_conflict,
    duration,
    from_name,
    instant,
    is_exempt,
    is_host_side,
    join,
    kinds_conflict,
    may_advance_host,
    module_clock_side,
    module_tail,
    read_signature,
)

#: Rule keys (the REPRO70x suffix each finding belongs to).
CROSS_CLOCK = "REPRO701"
CLOCK_AUTHORITY = "REPRO702"
UNATTRIBUTED = "REPRO703"
MERGE_CLOSURE = "REPRO704"

#: Attribute tails that name a clock object on their holder.
_CLOCK_ATTRS = ("clock", "_clock")

#: Arithmetic operators checked for cross-clock mixing (REPRO701).
_ADDITIVE_OPS = (ast.Add, ast.Sub)

#: Comparison operators checked for cross-clock mixing.
_ORDERED_CMPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: Modules the REPRO704 closure checks read (by last-two components).
_TIMEDOMAIN_TAIL = ("common", "timedomain")
_RUNMETRICS_TAIL = ("core", "metrics")
_SNAPSHOT_TAIL = ("obs", "metrics")


def _clip(text, limit=220):
    return text if len(text) <= limit else text[:limit - 3] + "..."


class TimeFinding:
    """One pre-rendered finding, tagged with its rule key."""

    __slots__ = ("rule_key", "path", "lineno", "col", "message")

    def __init__(self, rule_key, path, lineno, col, message):
        self.rule_key = rule_key
        self.path = path
        self.lineno = lineno
        self.col = col
        self.message = _clip(message)


class TimeReport:
    """Everything one time analysis produced."""

    __slots__ = ("findings", "advancers", "chargers")

    def __init__(self, findings, advancers, chargers):
        self.findings = findings    # [TimeFinding]
        self.advancers = advancers  # {qualname: (clock, ...)}
        self.chargers = chargers    # {qualname: (counter, ...)}

    def by_rule(self, rule_key):
        return [f for f in self.findings if f.rule_key == rule_key]


class _AdvanceSite:
    """One ``<clock>.advance(...)`` call site inside a function."""

    __slots__ = ("node", "ref")

    def __init__(self, node, ref):
        self.node = node
        self.ref = ref


class _Interpreter:
    """One forward pass over one function body (nested defs included)."""

    def __init__(self, program, info, signatures):
        self.program = program
        self.info = info
        self.signatures = signatures
        self.findings = []
        self.advance_sites = []
        self.aliases = program.aliases_by_module.get(info.module, {})
        self.side = module_clock_side(info.module)

    # -- plumbing ----------------------------------------------------------

    def report(self, rule_key, node, message):
        self.findings.append(TimeFinding(
            rule_key, self.info.path, node.lineno, node.col_offset,
            message))

    def run(self):
        node = self.info.node
        env = {}
        signature = self.signatures[self.info.qualname]
        for name, domain in signature.params.items():
            env[name] = from_name(domain, "`%s` is a %s parameter of `%s`"
                                  % (name, domain, self.info.qualname))
        self.exec_block(node.body, env)
        return self

    # -- clock-expression recognition --------------------------------------

    def _clock_of(self, node, env):
        """The ClockRef a receiver expression denotes, or None."""
        if isinstance(node, ast.Name):
            value = env.get(node.id)
            return value if isinstance(value, ClockRef) else None
        if not isinstance(node, ast.Attribute):
            return None
        attr = node.attr
        if attr == "host":
            inner = self._clock_of(node.value, env)
            if inner is not None:
                return ClockRef("host_wall",
                                "`%s` reaches the shared host clock "
                                "through a VirtualClock view"
                                % ast.unparse(node), via_host=True)
            return None
        if attr in _CLOCK_ATTRS:
            spelled = ast.unparse(node)
            if (isinstance(node.value, ast.Attribute)
                    and node.value.attr == "system"):
                # X.system.clock: one VM's machine, i.e. its virtual view.
                return ClockRef("guest",
                                "`%s` is a VM's virtual clock" % spelled)
            side = self.side
            what = ("the shared host clock" if side == "host_wall"
                    else "this machine's own clock")
            return ClockRef(side, "`%s` is %s (%s is %s-side)"
                            % (spelled, what, self.info.module,
                               "host" if side == "host_wall" else "guest"))
        return None

    # -- statements --------------------------------------------------------

    def exec_block(self, statements, env):
        for statement in statements:
            self.exec_stmt(statement, env)

    def _assign(self, target, value, env):
        if isinstance(target, ast.Name):
            if value is None or isinstance(value, (tuple, list)):
                env.pop(target.id, None)
            else:
                env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = list(value) if isinstance(value, (tuple, list)) else []
            for index, element in enumerate(target.elts):
                self._assign(element, elements[index]
                             if index < len(elements) else None, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target.value, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, None, env)

    def exec_stmt(self, statement, env):
        if isinstance(statement, ast.Assign):
            value = self.eval(statement.value, env)
            for target in statement.targets:
                self._assign(target, value, env)
        elif isinstance(statement, ast.AnnAssign):
            value = (self.eval(statement.value, env)
                     if statement.value is not None else None)
            self._assign(statement.target, value, env)
        elif isinstance(statement, ast.AugAssign):
            synthetic = ast.BinOp(left=statement.target,
                                  op=statement.op, right=statement.value)
            ast.copy_location(synthetic, statement)
            ast.fix_missing_locations(synthetic)
            value = self._eval_BinOp(synthetic, env)
            self._assign(statement.target, value, env)
        elif isinstance(statement, ast.Return):
            self._exec_return(statement, env)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value, env)
        elif isinstance(statement, ast.If):
            self.eval(statement.test, env)
            after_body = dict(env)
            self.exec_block(statement.body, after_body)
            after_orelse = dict(env)
            self.exec_block(statement.orelse, after_orelse)
            self._merge_into(env, after_body, after_orelse)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self.eval(statement.iter, env)
            body_env = dict(env)
            self._assign(statement.target, None, body_env)
            self.exec_block(statement.body, body_env)
            self.exec_block(statement.orelse, body_env)
            self._assign(statement.target, None, env)
            self._merge_into(env, env, body_env)
        elif isinstance(statement, ast.While):
            self.eval(statement.test, env)
            body_env = dict(env)
            self.exec_block(statement.body, body_env)
            self.exec_block(statement.orelse, body_env)
            self._merge_into(env, env, body_env)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, env)
            self.exec_block(statement.body, env)
        elif isinstance(statement, ast.Try):
            after_body = dict(env)
            self.exec_block(statement.body, after_body)
            merged = after_body
            for handler in statement.handlers:
                after_handler = dict(env)
                self.exec_block(handler.body, after_handler)
                merged = self._merged(merged, after_handler)
            self._merge_into(env, env, merged)
            self.exec_block(statement.orelse, env)
            self.exec_block(statement.finalbody, env)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                self._assign(target, None, env)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested helper (the fastpath's `_flush` closure): interpret
            # its body in a copy of the enclosing env, so closed-over
            # clock references keep their inferred side and its advance
            # sites are attributed to *this* top-level function.
            inner = dict(env)
            for arg in statement.args.args:
                inner.pop(arg.arg, None)
            self.exec_block(statement.body, inner)
        elif isinstance(statement, (ast.ClassDef, ast.Import,
                                    ast.ImportFrom, ast.Global,
                                    ast.Nonlocal, ast.Pass, ast.Break,
                                    ast.Continue)):
            pass
        else:
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self.eval(child, env)

    def _merged(self, env_a, env_b):
        merged = {}
        for name, value in env_a.items():
            kept = join(value, env_b.get(name))
            if kept is not None:
                merged[name] = kept
        return merged

    def _merge_into(self, env, env_a, env_b):
        merged = self._merged(env_a, env_b)
        env.clear()
        env.update(merged)

    def _exec_return(self, statement, env):
        if statement.value is None:
            return
        value = self._scalar(self.eval(statement.value, env))
        declared_name = self.signatures[self.info.qualname].returns
        if declared_name is None or value is None:
            return
        want = from_name(declared_name, "declared")
        if want is None:
            return
        if clocks_conflict(want, value):
            self.report(CROSS_CLOCK, statement,
                        "`%s` returns a %s value where %s is declared — %s"
                        % (self.info.qualname, value.domain, declared_name,
                           value.origin))
        elif kinds_conflict(want, value):
            self.report(CROSS_CLOCK, statement,
                        "`%s` returns an %s where a %s is declared "
                        "(epoch/interval confusion) — %s"
                        % (self.info.qualname, value.kind, declared_name,
                           value.origin))

    # -- expressions -------------------------------------------------------

    def eval(self, node, env):
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is not None:
            return method(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return None

    def _eval_Name(self, node, env):
        return env.get(node.id)

    def _eval_Constant(self, node, env):
        return None

    def _eval_Tuple(self, node, env):
        return tuple(self.eval(element, env) for element in node.elts)

    def _eval_NamedExpr(self, node, env):
        value = self.eval(node.value, env)
        self._assign(node.target, value, env)
        return value

    def _eval_IfExp(self, node, env):
        self.eval(node.test, env)
        return join(self._known(self.eval(node.body, env)),
                    self._known(self.eval(node.orelse, env)))

    def _eval_BoolOp(self, node, env):
        merged = self._known(self.eval(node.values[0], env))
        for value in node.values[1:]:
            merged = join(merged, self._known(self.eval(value, env)))
        return merged

    def _eval_UnaryOp(self, node, env):
        value = self.eval(node.operand, env)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._scalar(value)
        return None

    def _eval_Attribute(self, node, env):
        ref = self._clock_of(node, env)
        if ref is not None:
            return ref
        if node.attr == "now":
            holder = self._clock_of(node.value, env)
            if holder is not None:
                return instant(holder.clock, "`%s` reads %s"
                               % (ast.unparse(node),
                                  "host wall time"
                                  if holder.clock == "host_wall"
                                  else "this machine's virtual time"))
        self.eval(node.value, env)
        return None

    @staticmethod
    def _scalar(value):
        return value if isinstance(value, TimeValue) else None

    @staticmethod
    def _known(value):
        return value if isinstance(value, (TimeValue, ClockRef)) else None

    def _eval_Compare(self, node, env):
        values = [self._scalar(self.eval(node.left, env))]
        for comparator in node.comparators:
            values.append(self._scalar(self.eval(comparator, env)))
        for index, op in enumerate(node.ops):
            if not isinstance(op, _ORDERED_CMPS):
                continue
            left, right = values[index], values[index + 1]
            if clocks_conflict(left, right):
                self.report(CROSS_CLOCK, node,
                            "cross-clock comparison: %s (%s) vs %s (%s)"
                            % (left.domain, left.origin,
                               right.domain, right.origin))
            elif kinds_conflict(left, right):
                self.report(CROSS_CLOCK, node,
                            "comparing an %s with a %s (epoch/interval "
                            "confusion): %s vs %s"
                            % (left.kind, right.kind,
                               left.origin, right.origin))
        return None

    def _eval_BinOp(self, node, env):
        left = self._scalar(self.eval(node.left, env))
        right = self._scalar(self.eval(node.right, env))
        if not isinstance(node.op, _ADDITIVE_OPS):
            return None
        if left is None or right is None:
            return None
        if left.kind == "instant" and right.kind == "instant":
            if clocks_conflict(left, right):
                self.report(CROSS_CLOCK, node,
                            "cross-clock arithmetic: %s (%s) %s %s (%s)"
                            % (left.domain, left.origin,
                               type(node.op).__name__.lower(),
                               right.domain, right.origin))
                return None
            if isinstance(node.op, ast.Sub):
                return duration("%s minus %s" % (left.origin, right.origin))
            return None  # adding two epochs is meaningless; stay quiet
        if left.kind == "instant" and right.kind == "duration":
            return TimeValue("instant", left.clock, left.origin)
        if left.kind == "duration" and right.kind == "instant":
            if isinstance(node.op, ast.Add):
                return TimeValue("instant", right.clock, right.origin)
            return None
        return duration(left.origin)

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, node, env):
        argument_values = [self.eval(arg, env) for arg in node.args]
        keyword_values = {kw.arg: self.eval(kw.value, env)
                          for kw in node.keywords if kw.arg is not None}
        for keyword in node.keywords:
            if keyword.arg is None:
                self.eval(keyword.value, env)
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "advance":
                ref = self._clock_of(func.value, env)
                if ref is not None:
                    self.advance_sites.append(_AdvanceSite(node, ref))
                    for value in argument_values:
                        value = self._scalar(value)
                        if value is not None and value.kind == "instant":
                            self.report(
                                CROSS_CLOCK, node,
                                "advancing a clock by an *instant* (%s) — "
                                "advance() takes a duration; subtract two "
                                "instants on the same clock first"
                                % value.origin)
            self.eval(func.value, env)
        resolved = _resolve_call(node, self.info, self.aliases, self.program)
        if resolved is None:
            return None
        candidates, ambiguous = resolved
        self._check_arguments(node, candidates, argument_values,
                              keyword_values)
        if ambiguous or len(candidates) != 1:
            return None
        signature = self.signatures.get(candidates[0])
        if signature is None or signature.returns is None:
            return None
        return from_name(signature.returns,
                         "`%s(...)` returns declared %s"
                         % (candidates[0], signature.returns))

    def _bound_arguments(self, node, callee, argument_values, keyword_values):
        """[(param name, value node, value)] for checkable arguments."""
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return []
        parameters = [arg.arg for arg in callee.node.args.args]
        if (callee.cls is not None and parameters
                and parameters[0] in ("self", "cls")):
            parameters = parameters[1:]
        bound = []
        for index, value in enumerate(argument_values):
            if index < len(parameters):
                bound.append((parameters[index], node.args[index], value))
        for keyword in node.keywords:
            if keyword.arg in keyword_values:
                bound.append((keyword.arg, keyword.value,
                              keyword_values[keyword.arg]))
        return bound

    def _check_arguments(self, node, candidates, argument_values,
                         keyword_values):
        """Cross-clock argument check, tolerant of name-matched calls.

        A value node is checked when at least one candidate declares a
        time domain for the parameter it binds there and every declaring
        candidate agrees on the domain — so `state.policy.note_write`
        (name-matched against both policy classes, which agree on
        ``now="guest_sim"``) is still checked, while a coincidental
        method-name collision with disagreeing declarations stays quiet.
        """
        declared_per_node = {}
        for qualname in candidates:
            callee = self.program.functions.get(qualname)
            signature = self.signatures.get(qualname)
            if (callee is None or callee.node is None or signature is None
                    or not signature.params):
                continue
            for parameter, value_node, value in self._bound_arguments(
                    node, callee, argument_values, keyword_values):
                declared_name = signature.params.get(parameter)
                if declared_name is None:
                    continue
                entry = declared_per_node.setdefault(
                    value_node, (value, parameter, qualname, set()))
                entry[3].add(declared_name)
        for value_node, (value, parameter, qualname,
                         names) in declared_per_node.items():
            if len(names) != 1:
                continue  # declaring candidates disagree: stay quiet
            declared_name = names.pop()
            value = self._scalar(value)
            if value is None:
                continue
            declared = from_name(declared_name, "declared")
            if declared is None:
                continue
            if clocks_conflict(declared, value):
                self.report(CROSS_CLOCK, value_node,
                            "argument `%s` of `%s` expects %s time, got "
                            "%s — %s"
                            % (parameter, qualname, declared_name,
                               value.domain, value.origin))
            elif kinds_conflict(declared, value):
                self.report(CROSS_CLOCK, value_node,
                            "argument `%s` of `%s` expects a %s, got an "
                            "%s (epoch/interval confusion) — %s"
                            % (parameter, qualname, declared_name,
                               value.kind, value.origin))


def _site_findings(info, signature, interp):
    """REPRO702/REPRO703 for one function's collected advance sites."""
    findings = []
    if is_exempt(info.module):
        return findings
    for site in interp.advance_sites:
        node, ref = site.node, site.ref
        if ref.via_host:
            findings.append(TimeFinding(
                CLOCK_AUTHORITY, info.path, node.lineno, node.col_offset,
                _clip("`%s` advances the host clock through a "
                      "VirtualClock's `.host` — VM-side code must charge "
                      "its own virtual view and let the pass-through in "
                      "repro.common.clock bill host wall time (%s)"
                      % (info.qualname, ref.origin))))
        elif (ref.clock == "host_wall"
              and not may_advance_host(info.module, info.cls)):
            findings.append(TimeFinding(
                CLOCK_AUTHORITY, info.path, node.lineno, node.col_offset,
                _clip("`%s` advances the shared host clock, but only "
                      "VCpuScheduler and Host hold that authority — %s"
                      % (info.qualname, ref.origin))))
        side = "host_wall" if ref.clock == "host_wall" else "guest_sim"
        if not ref.via_host and side not in signature.advances:
            findings.append(TimeFinding(
                CLOCK_AUTHORITY, info.path, node.lineno, node.col_offset,
                _clip("`%s` advances a %s clock without declaring "
                      "@advances(%r) — %s"
                      % (info.qualname, side, side, ref.origin))))
        if not signature.charges:
            findings.append(TimeFinding(
                UNATTRIBUTED, info.path, node.lineno, node.col_offset,
                _clip("unattributed clock advance in `%s`: declare "
                      "@charges(<RunMetrics counter>) or an explicit "
                      "@charges(\"sink:...\") so total_cycles stays the "
                      "sum of its parts (%s)"
                      % (info.qualname, ref.origin))))
    for clock in signature.advances:
        if (clock == "host_wall"
                and not may_advance_host(info.module, info.cls)):
            findings.append(TimeFinding(
                CLOCK_AUTHORITY, info.path, info.lineno, 0,
                _clip("`%s` declares @advances(\"host_wall\") but only "
                      "VCpuScheduler and Host may advance the shared "
                      "host clock" % info.qualname)))
    return findings


# -- the REPRO704 metrics-merge closure ---------------------------------------


def _module_by_tail(program, tail):
    for module in program.modules:
        if module_tail(module) == tail:
            return module
    return None


def _string_constants(node):
    return {child.value for child in ast.walk(node)
            if isinstance(child, ast.Constant)
            and isinstance(child.value, str)}


def _attribute_names(node):
    return {child.attr for child in ast.walk(node)
            if isinstance(child, ast.Attribute)}


def _class_def(tree, name):
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _method_def(class_node, name):
    for node in class_node.body:
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name):
            return node
    return None


def _tuple_assignment(tree, name):
    """The string elements of a module-level ``NAME = ("a", "b", ...)``."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in node.targets):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            return [element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)], node.lineno
    return None, None


def _init_cycle_fields(class_node):
    """``self.X`` cycle counters assigned in ``__init__``."""
    init = _method_def(class_node, "__init__")
    if init is None:
        return []
    fields = []
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                name = target.attr
                if ((name == "total_cycles" or name.endswith("_cycles"))
                        and name not in fields):
                    fields.append(name)
    return fields


def _closure_findings(program):
    """REPRO704: every cycle field is covered by the declared counter
    vocabulary, both wire formats, and the snapshot merge algebra."""
    findings = []

    def fail(path, lineno, message):
        findings.append(TimeFinding(MERGE_CLOSURE, path, lineno, 0,
                                    _clip(message)))

    timedomain_module = _module_by_tail(program, _TIMEDOMAIN_TAIL)
    metrics_module = _module_by_tail(program, _RUNMETRICS_TAIL)
    counters = None
    if timedomain_module is not None:
        td_file = program.files_by_module[timedomain_module]
        counters, counters_line = _tuple_assignment(td_file.tree,
                                                    "CYCLE_COUNTERS")
    if metrics_module is not None:
        metrics_file = program.files_by_module[metrics_module]
        run_metrics = _class_def(metrics_file.tree, "RunMetrics")
    else:
        run_metrics = None
    if run_metrics is not None:
        fields = _init_cycle_fields(run_metrics)
        to_dict = _method_def(run_metrics, "to_dict")
        from_dict = _method_def(run_metrics, "from_dict")
        to_dict_keys = (_string_constants(to_dict)
                        if to_dict is not None else None)
        from_dict_keys = (_string_constants(from_dict)
                          if from_dict is not None else None)
        for field in fields:
            if to_dict_keys is not None and field not in to_dict_keys:
                fail(metrics_file.path, to_dict.lineno,
                     "RunMetrics.%s is a cycle counter but "
                     "RunMetrics.to_dict never serializes it — the wire "
                     "format silently drops charged cycles" % field)
            if from_dict_keys is not None and field not in from_dict_keys:
                fail(metrics_file.path, from_dict.lineno,
                     "RunMetrics.%s is a cycle counter but "
                     "RunMetrics.from_dict never restores it — "
                     "round-tripping a result zeroes charged cycles"
                     % field)
            if counters is not None and field not in counters:
                fail(metrics_file.path, run_metrics.lineno,
                     "RunMetrics.%s is a cycle counter but "
                     "timedomain.CYCLE_COUNTERS does not declare it — "
                     "@charges cannot attribute cycles to it" % field)
        if counters is not None:
            for counter in counters:
                if counter not in fields:
                    fail(td_file.path, counters_line,
                         "timedomain.CYCLE_COUNTERS declares %r but "
                         "RunMetrics defines no such cycle counter — a "
                         "phantom @charges target" % counter)
    snapshot_module = _module_by_tail(program, _SNAPSHOT_TAIL)
    if snapshot_module is not None:
        snap_file = program.files_by_module[snapshot_module]
        snapshot = _class_def(snap_file.tree, "MetricsSnapshot")
        if snapshot is not None:
            slots, _line = _tuple_assignment_in_class(snapshot, "__slots__")
            merge = _method_def(snapshot, "merge")
            to_dict = _method_def(snapshot, "to_dict")
            for slot in slots or ():
                for method, label in ((merge, "merge"),
                                      (to_dict, "to_dict")):
                    if method is None:
                        continue
                    covered = (_attribute_names(method)
                               | _string_constants(method))
                    if slot not in covered:
                        fail(snap_file.path, method.lineno,
                             "MetricsSnapshot.%s is never touched by "
                             "MetricsSnapshot.%s — merged shard "
                             "snapshots would drop it" % (slot, label))
    return findings


def _tuple_assignment_in_class(class_node, name):
    for node in class_node.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in node.targets):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            return [element.value for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)], node.lineno
    return None, None


# -- the whole-tree analysis --------------------------------------------------


#: Rule key each decorator's syntax errors are reported under.
_SYNTAX_ERROR_RULES = {"cycles": CROSS_CLOCK, "advances": CLOCK_AUTHORITY,
                       "charges": UNATTRIBUTED}

_cache_key = None
_cache_value = None


def analyze_time(source_files):
    """The memoized time-domain analysis of one file set."""
    global _cache_key, _cache_value
    key = tuple((f.path, f.content_hash) for f in source_files)
    if key == _cache_key:
        return _cache_value
    program = build_program(source_files)
    signatures = {}
    findings = []
    for qualname, info in program.functions.items():
        signature, errors = read_signature(info.node)
        signatures[qualname] = signature
        for node, message in errors:
            rule_key = _SYNTAX_ERROR_RULES.get(
                message.split(" in @", 1)[-1].split(" ", 1)[0], CROSS_CLOCK)
            findings.append(TimeFinding(rule_key, info.path, node.lineno,
                                        node.col_offset, _clip(message)))
    advancers = {}
    chargers = {}
    for qualname, info in program.functions.items():
        signature = signatures[qualname]
        if signature.advances:
            advancers[qualname] = signature.advances
        if signature.charges:
            chargers[qualname] = signature.charges
        interp = _Interpreter(program, info, signatures).run()
        findings.extend(interp.findings)
        findings.extend(_site_findings(info, signature, interp))
    findings.extend(_closure_findings(program))
    report = TimeReport(findings, advancers, chargers)
    _cache_key = key
    _cache_value = report
    return report
