"""Time-domain typestate analysis (rules REPRO701–REPRO704).

An interprocedural abstract interpretation over the PR 5 call graph
that proves host wall time and guest virtual time never mix (the PR 9
consolidation bug class), that only the scheduler/host advance the
shared host clock, and that every cycle charged to a clock flows into a
declared ``RunMetrics`` counter or an explicit sink — so
``total_cycles`` provably decomposes into its attributed components.
Driven by the ``repro.common.timedomain`` vocabulary (``@cycles`` /
``@advances`` / ``@charges``). See ``docs/static_analysis.md``.
"""

from repro.lint.time.rules import (
    TIME_RULES,
    ClockAuthorityRule,
    CrossClockArithmeticRule,
    CycleConservationRule,
    MetricsMergeClosureRule,
)

__all__ = [
    "TIME_RULES",
    "CrossClockArithmeticRule",
    "ClockAuthorityRule",
    "CycleConservationRule",
    "MetricsMergeClosureRule",
]
