"""The time lattice and the declared-signature reader.

A lattice value is *unknown* (``None`` — the quiet default everywhere
annotations and clock idioms don't reach), a :class:`TimeValue` (an
*instant* pinned to a clock, or an epoch-free *duration*), or a
:class:`ClockRef` (a reference to a clock object itself, so
``clock = self.system.clock`` followed by ``clock.now`` still infers).
Conflicts are reported at the *operation* that mixes two known values
and the result drops back to unknown — no sticky ⊥, so one mix-up
yields one finding, not a cascade.

The clock-compatibility relation is deliberately asymmetric-friendly:
``vm_virtual`` (a VM's virtual time as the host names it) and
``guest_sim`` (the same time base as guest-side code sees it) are
compatible; ``host_wall`` conflicts with both. That encodes the PR 9
isolation invariant — host wall time includes every other tenant's
cycles and must never leak into a guest's windows or metrics.

Signatures are read from decorator *syntax* (``@cycles`` /
``@advances`` / ``@charges``, see :mod:`repro.common.timedomain`) —
the analyzer never imports the annotated modules.
"""

import ast

from repro.common.timedomain import (
    CLOCKS,
    CYCLE_COUNTERS,
    HOST_CYCLE_COUNTERS,
    SINK_PREFIX,
    TIME_DOMAINS,
)

#: Instant domains and the clock side each one reads.
INSTANT_CLOCKS = {
    "host_wall": "host_wall",
    "vm_virtual": "guest",
    "guest_sim": "guest",
}

#: Modules (by their last two dotted components) on the *host* side of
#: the clock split: a bare ``self.clock`` there is the shared host
#: clock. Everywhere else it is the machine's own (virtual) clock.
HOST_SIDE_TAILS = (
    ("host", "scheduler"),
    ("host", "host"),
    ("host", "balloon"),
    ("host", "memory"),
)

#: The only classes allowed to advance the host clock (REPRO702): the
#: vCPU scheduler charges world switches between quanta, and the Host
#: assembles the clock it hands out.
HOST_ADVANCE_AUTHORITY = (
    ("host", "scheduler", "VCpuScheduler"),
    ("host", "host", "Host"),
)

#: Modules exempt from the clock rules: the clock implementation itself
#: (whose ``VirtualClock.advance`` pass-through is the one legitimate
#: ``.host.advance``) and the vocabulary that defines the domains.
EXEMPT_TAILS = (
    ("common", "clock"),
    ("common", "timedomain"),
)


def module_tail(module):
    return tuple(module.split(".")[-2:])


def is_host_side(module):
    return module_tail(module) in HOST_SIDE_TAILS


def is_exempt(module):
    return module_tail(module) in EXEMPT_TAILS


def module_clock_side(module):
    """The clock side of a bare ``self.clock`` in this module."""
    return "host_wall" if is_host_side(module) else "guest"


def may_advance_host(module, cls):
    return (module_tail(module) + (cls,)) in HOST_ADVANCE_AUTHORITY


class TimeValue:
    """One known lattice point: an instant on a clock, or a duration."""

    __slots__ = ("kind", "clock", "origin")

    def __init__(self, kind, clock, origin):
        self.kind = kind    # "instant" | "duration"
        self.clock = clock  # "host_wall" | "guest" | None (durations)
        self.origin = origin

    @property
    def domain(self):
        if self.kind == "duration":
            return "duration"
        return "host_wall" if self.clock == "host_wall" else "guest_sim"

    def same_point(self, other):
        return (isinstance(other, TimeValue) and self.kind == other.kind
                and self.clock == other.clock)

    def __repr__(self):
        return "TimeValue(%s via %s)" % (self.domain, self.origin)


def instant(clock, origin):
    return TimeValue("instant", clock, origin)


def duration(origin):
    return TimeValue("duration", None, origin)


def from_name(name, origin):
    """The lattice value of a declared domain name (None if unknown)."""
    if name == "duration":
        return duration(origin)
    clock = INSTANT_CLOCKS.get(name)
    if clock is None:
        return None
    return instant(clock, origin)


class ClockRef:
    """A reference to a clock object (not a cycle value)."""

    __slots__ = ("clock", "via_host", "origin")

    def __init__(self, clock, origin, via_host=False):
        self.clock = clock        # "host_wall" | "guest"
        self.via_host = via_host  # reached through VirtualClock.host
        self.origin = origin

    def same_point(self, other):
        return (isinstance(other, ClockRef) and self.clock == other.clock
                and self.via_host == other.via_host)

    def __repr__(self):
        return "ClockRef(%s via %s)" % (self.clock, self.origin)


def clocks_conflict(a, b):
    """Two known instants on different time bases — the REPRO701 core.

    ``host_wall`` vs anything guest-side conflicts; ``vm_virtual`` and
    ``guest_sim`` share a base and are compatible.
    """
    return (isinstance(a, TimeValue) and isinstance(b, TimeValue)
            and a.kind == "instant" and b.kind == "instant"
            and a.clock is not None and b.clock is not None
            and a.clock != b.clock)


def kinds_conflict(a, b):
    """Instant-vs-duration confusion between two known values whose
    clocks are compatible (comparing an epoch to an interval)."""
    if not isinstance(a, TimeValue) or not isinstance(b, TimeValue):
        return False
    if clocks_conflict(a, b):
        return False  # that is a clock conflict, not a kind one
    return a.kind != b.kind


def join(a, b):
    """Control-flow join: agreeing points survive, anything else is
    unknown (quiet, never ⊥ — conflicts only fire at operations)."""
    if a is not None and a.same_point(b):
        return a
    return None


# -- declared signatures ------------------------------------------------------


def _tail_name(node):
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Signature:
    """The timedomain declarations on one function definition."""

    __slots__ = ("params", "returns", "advances", "charges")

    def __init__(self, params, returns, advances, charges):
        self.params = params      # {param name: domain name}
        self.returns = returns    # domain name or None
        self.advances = advances  # tuple of clock names
        self.charges = charges    # tuple of counter names

    @property
    def declared(self):
        return (bool(self.params) or self.returns is not None
                or bool(self.advances) or bool(self.charges))


def _valid_counter(name):
    if name.startswith(SINK_PREFIX):
        return len(name) > len(SINK_PREFIX)
    return name in CYCLE_COUNTERS or name in HOST_CYCLE_COUNTERS


def read_signature(node):
    """Read @cycles/@advances/@charges syntax off one function def.

    Unknown domain/clock/counter *names* are kept (not dropped): the
    rules report them rather than silently treating the function as
    unannotated. Returns (signature, [(node, message)] syntax errors).
    """
    params = {}
    returns = None
    advance_clocks = []
    charge_counters = []
    errors = []
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        tail = _tail_name(decorator.func)
        if tail == "cycles":
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value,
                                                                str):
                    returns = arg.value
                    if arg.value not in TIME_DOMAINS:
                        errors.append((decorator,
                                       "unknown time domain %r in @cycles "
                                       "on `%s`" % (arg.value, node.name)))
            for keyword in decorator.keywords:
                if (keyword.arg is not None
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)):
                    params[keyword.arg] = keyword.value.value
                    if keyword.value.value not in TIME_DOMAINS:
                        errors.append((decorator,
                                       "unknown time domain %r in @cycles "
                                       "on `%s`" % (keyword.value.value,
                                                    node.name)))
        elif tail == "advances":
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value,
                                                                str):
                    advance_clocks.append(arg.value)
                    if arg.value not in CLOCKS:
                        errors.append((decorator,
                                       "unknown clock %r in @advances on "
                                       "`%s` (advanceable: %s)"
                                       % (arg.value, node.name,
                                          ", ".join(CLOCKS))))
        elif tail == "charges":
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value,
                                                                str):
                    charge_counters.append(arg.value)
                    if not _valid_counter(arg.value):
                        errors.append((decorator,
                                       "unknown cycle counter %r in "
                                       "@charges on `%s` (declare a "
                                       "RunMetrics/host counter or a "
                                       "%r-prefixed sink)"
                                       % (arg.value, node.name,
                                          SINK_PREFIX)))
    signature = Signature(params, returns, tuple(advance_clocks),
                          tuple(charge_counters))
    return signature, errors
