"""The REPRO701–REPRO704 time-domain rules.

All four query the one memoized :func:`analyze_time` report (the same
share-one-analysis idiom as the flow and address-domain rules), so
running the full set costs one abstract interpretation of the tree.
"""

from repro.lint.engine import Finding, ProjectRule
from repro.lint.time.infer import (
    CLOCK_AUTHORITY,
    CROSS_CLOCK,
    MERGE_CLOSURE,
    UNATTRIBUTED,
    analyze_time,
)


class _TimeRule(ProjectRule):
    """Base: render this rule's slice of the shared time report."""

    rule_key = None

    def check_project(self, source_files):
        report = analyze_time(source_files)
        for finding in report.by_rule(self.rule_key):
            yield Finding(self.rule_id, self.name, finding.path,
                          finding.lineno, finding.col, finding.message)


class CrossClockArithmeticRule(_TimeRule):
    """Host wall time and guest virtual time never meet in arithmetic,
    comparisons, or annotated call/return positions."""

    rule_id = "REPRO701"
    name = "cross-clock-arith"
    description = ("arithmetic/comparison/argument mixes two time bases "
                   "(host wall vs guest virtual — the PR 9 bug class)")
    rule_key = CROSS_CLOCK


class ClockAuthorityRule(_TimeRule):
    """Only VCpuScheduler/Host advance the shared host clock; VM-side
    code goes through its VirtualClock view."""

    rule_id = "REPRO702"
    name = "clock-authority"
    description = ("an unauthorized advance of the shared host clock, or "
                   "an advance site without a matching @advances "
                   "declaration")
    rule_key = CLOCK_AUTHORITY


class CycleConservationRule(_TimeRule):
    """Every clock-advance site flows into a declared RunMetrics counter
    or an explicitly annotated sink."""

    rule_id = "REPRO703"
    name = "unattributed-cycles"
    description = ("a clock advance in a function with no @charges "
                   "declaration — total_cycles would no longer decompose "
                   "into its attributed components")
    rule_key = UNATTRIBUTED


class MetricsMergeClosureRule(_TimeRule):
    """RunMetrics/MetricsSnapshot cycle fields close over the counter
    vocabulary, both wire formats, and the snapshot merge algebra."""

    rule_id = "REPRO704"
    name = "metrics-merge-closure"
    description = ("a cycle field missing from CYCLE_COUNTERS, "
                   "to_dict/from_dict, or the MetricsSnapshot merge — "
                   "charged cycles would be silently dropped")
    rule_key = MERGE_CLOSURE


#: The time-domain rule set, appended to ``repro check`` / ``--deep``.
TIME_RULES = (
    CrossClockArithmeticRule(),
    ClockAuthorityRule(),
    CycleConservationRule(),
    MetricsMergeClosureRule(),
)
