"""Content-hash cache for lint results.

The same idiom as ``repro.runner.cache.ResultCache`` (PR 2): results
are keyed by what produced them, stored as JSON, written atomically,
and corruption is indistinguishable from a miss. The key covers

* a schema version,
* every linted file's path and content SHA-256 (so touching any file —
  or renaming one, since the path is part of the pair — invalidates),
* the rule-id set the engine was configured with (``--deep`` and plain
  runs cache separately),
* a :func:`repro.runner.fingerprint.code_fingerprint` of the ``repro.lint``
  package itself, so editing a rule invalidates results the old rule
  produced.

A warm hit reconstructs the full :class:`~repro.lint.engine.LintResult`
(findings *and* suppression audit) from JSON without parsing a single
AST — which is what makes the unchanged-tree ``repro lint`` near-instant
— and is byte-identical to a cold run because findings round-trip
verbatim through ``as_dict``/``from_dict``.
"""

import hashlib
import json
import os
import tempfile

from repro.lint.engine import Finding, LintResult, Suppression
from repro.runner.fingerprint import code_fingerprint

SCHEMA = 1


def _lint_package_root():
    return os.path.dirname(os.path.abspath(__file__))


class LintCache:
    """One directory of cached lint runs, keyed by tree content."""

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0

    def key_for(self, file_hashes, rule_ids):
        """The cache key of one (file set, rule set) combination."""
        digest = hashlib.sha256()
        digest.update(b"lint-schema-%d\0" % SCHEMA)
        digest.update(code_fingerprint(_lint_package_root()).encode("ascii"))
        digest.update(b"\0")
        for rule_id in sorted(rule_ids):
            digest.update(rule_id.encode("utf-8"))
            digest.update(b"\0")
        for path, content_hash in sorted(file_hashes):
            digest.update(path.encode("utf-8"))
            digest.update(b"\0")
            digest.update(content_hash.encode("ascii"))
            digest.update(b"\0")
        return digest.hexdigest()

    def _path_for(self, key):
        return os.path.join(self.root, "lint-%s.json" % key)

    def load(self, key):
        """The cached :class:`LintResult` for ``key``, or None (miss)."""
        try:
            with open(self._path_for(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        try:
            if payload["schema"] != SCHEMA:
                raise KeyError("schema")
            result = LintResult(
                [Finding.from_dict(f) for f in payload["findings"]],
                payload["checked"],
                [Suppression.from_dict(s) for s in payload["suppressions"]],
            )
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key, result):
        """Persist one engine run under ``key`` (atomic, best-effort)."""
        payload = {
            "schema": SCHEMA,
            "checked": result.checked,
            "findings": [f.as_dict() for f in result.findings],
            "suppressions": [s.as_dict() for s in result.suppressions],
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=self.root,
                prefix=".lint-tmp-", suffix=".json", delete=False)
            try:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
            finally:
                handle.close()
            os.replace(handle.name, self._path_for(key))
        except OSError:
            pass  # a read-only cache dir degrades to always-cold
