"""The project-specific lint rules.

Numbering: REPRO001 is reserved for parse errors (see engine.py);
REPRO1xx are per-file hygiene/determinism rules; REPRO2xx are
cross-module accounting contracts; REPRO3xx are output-stream
discipline rules.
"""

import ast
import re

from repro.lint.engine import ProjectRule, Rule

# Wall-clock reads that would leak host time into simulated results. The
# simulator has its own Clock; cycle counts must never depend on them.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

# numpy.random callables that are legitimately *seedable*: calling them
# with an explicit seed/argument is fine, calling them bare is not.
NUMPY_SEEDABLE = {"default_rng", "Generator", "RandomState", "SeedSequence"}

MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray"}


def _import_aliases(tree, package=None):
    """Map every imported binding to its fully qualified dotted name.

    With ``package`` (the importing module's own package, e.g.
    ``"repro.vmm"``) relative imports resolve to absolute ``repro.*``
    names too — without it they would leave bindings like ``T`` (from
    ``from . import traps as T``) unresolved, and a project module
    named like a stdlib module (``from . import time``) would
    shadow-match the stdlib qualified names.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            module = node.module
            if node.level:
                module = _resolve_relative(package, node.level, module)
                if module is None:
                    continue
            elif module is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                aliases[bound] = "%s.%s" % (module, alias.name)
    return aliases


def _resolve_relative(package, level, module):
    """Absolute module name for a level-``level`` relative import."""
    if not package:
        return None
    parts = package.split(".")
    if level - 1 >= len(parts):
        return None  # beyond the package root: unresolvable
    base = parts[:len(parts) - (level - 1)]
    if module:
        base.append(module)
    return ".".join(base)


def _dotted_name(node):
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(node, aliases):
    """The fully qualified dotted name of a callee, tracking imports."""
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return "%s.%s" % (expanded, rest) if rest else expanded


def classify_nondet_call(node, aliases):
    """Message if ``node`` (a Call) reads a nondeterminism source, else None.

    Shared between the per-file REPRO101 rule and the interprocedural
    REPRO403 taint pass so both agree on what counts as a source:
    wall-clock reads, the global ``random``/``numpy.random`` state, and
    unseeded seedable constructors.
    """
    full = _resolve(node.func, aliases)
    if full is None:
        return None
    has_args = bool(node.args or node.keywords)
    if full in WALL_CLOCK_CALLS:
        return ("wall-clock read `%s()` in simulator code; "
                "use the simulated Clock" % full)
    if full == "random.Random":
        if not has_args:
            return ("`random.Random()` without a seed; pass "
                    "an explicit seed")
        return None
    if full.startswith("random."):
        return ("`%s()` uses the global (unseeded) random "
                "state; use a seeded `random.Random` "
                "instance" % full)
    if full.startswith("numpy.random."):
        tail = full.rsplit(".", 1)[1]
        if tail in NUMPY_SEEDABLE:
            if not has_args:
                return ("`%s()` without a seed; pass an "
                        "explicit seed" % full)
            return None
        return ("`%s()` uses numpy's global random "
                "state; use a seeded Generator from "
                "`default_rng(seed)`" % full)
    return None


class UnseededRandomRule(Rule):
    """Determinism: no global/unseeded RNG state, no wall-clock reads.

    All randomness must flow through an explicitly seeded generator
    (``np.random.default_rng(seed)`` / ``random.Random(seed)``) that the
    caller owns, and all time must come from the simulated Clock.
    """

    rule_id = "REPRO101"
    name = "unseeded-random"
    description = ("simulator code must use explicitly seeded RNGs and the "
                   "simulated clock, never global random state or wall time "
                   "(benchmarks/ exempt: timing harnesses read the wall "
                   "clock by design)")

    EXEMPT_SCOPE = "benchmarks/"

    def check_file(self, source_file):
        if self.EXEMPT_SCOPE in source_file.posix_path:
            return
        aliases = _import_aliases(source_file.tree, source_file.package)
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            message = classify_nondet_call(node, aliases)
            if message is not None:
                yield self.finding(source_file, node, message)


class FuzzEntropyRule(Rule):
    """The fuzz subsystem may draw randomness only from its scenario seed.

    A fuzz case is *named* by (seed, profile, ops) and regenerated from
    that triple in worker processes and replays — so any ambient entropy
    in ``repro/fuzz/`` (an unseeded ``random.Random()``, ``os.urandom``,
    ``secrets``, ``uuid4``, ``SystemRandom``) silently breaks reproducer
    files, corpus naming, and shrink determinism. REPRO101 already bans
    the global ``random.*`` state everywhere; this rule additionally bans
    the OS entropy sources 101 tolerates, but only inside the fuzzer,
    where even *seeding from* fresh entropy is a contract violation.
    """

    rule_id = "REPRO105"
    name = "fuzz-entropy"
    description = ("repro/fuzz/ must derive all randomness from the scenario "
                   "seed: no unseeded random.Random(), os.urandom, secrets, "
                   "uuid1/uuid4, or SystemRandom")

    SCOPE = "repro/fuzz/"
    FORBIDDEN = {"os.urandom", "random.SystemRandom", "uuid.uuid1",
                 "uuid.uuid4"}

    def check_file(self, source_file):
        if self.SCOPE not in source_file.posix_path:
            return
        aliases = _import_aliases(source_file.tree, source_file.package)
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            full = _resolve(node.func, aliases)
            if full is None:
                continue
            if full == "random.Random" and not (node.args or node.keywords):
                yield self.finding(source_file, node,
                                   "unseeded `random.Random()` in the fuzz "
                                   "subsystem; scenarios must be regenerable "
                                   "from their (seed, profile, ops) name")
            elif full in self.FORBIDDEN or full.startswith("secrets."):
                yield self.finding(source_file, node,
                                   "`%s()` draws OS entropy; fuzz code must "
                                   "derive all randomness from the scenario "
                                   "seed" % full)


class MutableDefaultRule(Rule):
    """No mutable default arguments (shared across calls and runs)."""

    rule_id = "REPRO102"
    name = "mutable-default"
    description = "default argument values must not be mutable objects"

    def check_file(self, source_file):
        for node in ast.walk(source_file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if isinstance(default, MUTABLE_LITERALS):
                    yield self.finding(source_file, default,
                                       "mutable default argument (literal); "
                                       "use None and create it in the body")
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in MUTABLE_BUILTINS):
                    yield self.finding(source_file, default,
                                       "mutable default argument (`%s()`); "
                                       "use None and create it in the body"
                                       % default.func.id)


class BareExceptRule(Rule):
    """No bare ``except:`` — it swallows simulator bugs silently.

    Faults in this codebase are a typed taxonomy (``common/errors.py``);
    a handler must name what it expects so :class:`SimulationError` and
    ``InvariantViolation`` always propagate.
    """

    rule_id = "REPRO103"
    name = "bare-except"
    description = "exception handlers must name the exception types they handle"

    def check_file(self, source_file):
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(source_file, node,
                                   "bare `except:` hides simulator bugs; "
                                   "catch explicit exception types")


class PolicyHooksRule(Rule):
    """Policy classes must implement the hooks the VMM drives.

    The VMM calls reversion policies as ``tick(manager, hostpt, now)``
    and write-trigger policies as ``note_write(manager, node_gfn, now)``
    (Section III-C). A policy class missing — or mis-declaring — its hook
    fails at runtime only on the code path that fires it, which a short
    test run may never reach.
    """

    rule_id = "REPRO104"
    name = "policy-hooks"
    description = ("*ReversionPolicy classes must define tick(self, manager, "
                   "hostpt, now); *TriggerPolicy classes must define "
                   "note_write(self, manager, node_gfn, now)")

    REQUIRED = (
        ("ReversionPolicy", "tick", ("self", "manager", "hostpt", "now")),
        ("TriggerPolicy", "note_write", ("self", "manager", "node_gfn", "now")),
    )

    def check_file(self, source_file):
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for suffix, hook, signature in self.REQUIRED:
                if not node.name.endswith(suffix):
                    continue
                method = next(
                    (item for item in node.body
                     if isinstance(item, ast.FunctionDef) and item.name == hook),
                    None,
                )
                if method is None:
                    yield self.finding(source_file, node,
                                       "policy class `%s` must define the "
                                       "`%s` hook" % (node.name, hook))
                    continue
                args = [arg.arg for arg in method.args.args]
                if len(args) != len(signature):
                    yield self.finding(
                        source_file, method,
                        "`%s.%s` must accept exactly %d arguments %r, got %r"
                        % (node.name, hook, len(signature), signature,
                           tuple(args)))


class TrapAccountingRule(ProjectRule):
    """Cross-module contract: the VMtrap taxonomy is fully accounted.

    Reading ``vmm/traps.py`` and ``common/config.py`` from the linted
    file set, enforce:

    * every trap-kind constant defined *above* ``ALL_TRAP_KINDS`` is a
      member of that tuple (membership is what registers the kind with
      ``TrapStats``/``RunMetrics.vmtraps`` — a kind defined but left out
      would silently vanish from the Figure 5 VMM bars),
    * every member of ``ALL_TRAP_KINDS`` is charged somewhere: it appears
      as the kind argument of a ``_trap(...)`` or ``.record(...)`` call,
    * every kind constant in ``traps.py`` (traps *and* hardware-assist
      kinds) is referenced outside ``traps.py`` — no dead taxonomy,
    * every ``vmtrap_*`` field of ``CostConfig`` is referenced somewhere
      — no unpriced or dead cost knobs.
    """

    rule_id = "REPRO201"
    name = "trap-accounting"
    description = ("every VMtrap kind must be in ALL_TRAP_KINDS, charged via "
                   "_trap/record, and every vmtrap_* cost field must be used")

    TRAPS_PATH = "vmm/traps.py"
    CONFIG_PATH = "common/config.py"

    def _module_constants(self, tree):
        """(ordered [(name, lineno)], ALL_TRAP_KINDS members, tuple lineno)."""
        constants = []
        members = None
        tuple_line = None
        for node in tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if (target.id == "ALL_TRAP_KINDS"
                    and isinstance(node.value, (ast.Tuple, ast.List))):
                members = [elt.id for elt in node.value.elts
                           if isinstance(elt, ast.Name)]
                tuple_line = node.lineno
            elif (target.id.isupper()
                  and isinstance(node.value, ast.Constant)
                  and isinstance(node.value.value, str)):
                constants.append((target.id, node.lineno))
        return constants, members, tuple_line

    def _cost_fields(self, tree):
        """[(field, lineno)] of vmtrap_* fields on CostConfig."""
        fields = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name != "CostConfig":
                continue
            for item in node.body:
                if (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and item.target.id.startswith("vmtrap_")):
                    fields.append((item.target.id, item.lineno))
        return fields

    @staticmethod
    def _tail_name(node):
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def check_project(self, source_files):
        traps_file = next((f for f in source_files
                           if f.endswith(self.TRAPS_PATH)), None)
        if traps_file is None:
            return
        constants, members, tuple_line = self._module_constants(traps_file.tree)
        if members is None:
            yield self.finding(traps_file, traps_file.tree,
                               "traps module defines no ALL_TRAP_KINDS tuple")
            return
        config_file = next((f for f in source_files
                            if f.endswith(self.CONFIG_PATH)), None)

        charged = set()
        referenced = set()
        attr_refs = set()
        for source_file in source_files:
            in_traps = source_file is traps_file
            for node in ast.walk(source_file.tree):
                if isinstance(node, ast.Attribute):
                    attr_refs.add(node.attr)
                    if not in_traps:
                        referenced.add(node.attr)
                elif isinstance(node, ast.Name) and not in_traps:
                    referenced.add(node.id)
                if (isinstance(node, ast.Call)
                        and self._tail_name(node.func) in ("_trap", "record")
                        and node.args):
                    kind = self._tail_name(node.args[0])
                    if kind is not None:
                        charged.add(kind)

        member_set = set(members)
        for name, lineno in constants:
            if lineno < (tuple_line or 0) and name not in member_set:
                yield self.finding(
                    traps_file, _FakeNode(lineno),
                    "trap kind `%s` is defined above ALL_TRAP_KINDS but not a "
                    "member of it; it would be invisible to TrapStats totals "
                    "and RunMetrics.vmtraps" % name)
            if name not in referenced:
                yield self.finding(
                    traps_file, _FakeNode(lineno),
                    "trap kind `%s` is never referenced outside traps.py; "
                    "dead taxonomy entries hide unaccounted traps" % name)
        for name in members:
            if name not in charged:
                yield self.finding(
                    traps_file, _FakeNode(tuple_line),
                    "trap kind `%s` is in ALL_TRAP_KINDS but never charged "
                    "via _trap(...)/record(...); its VMtraps would cost zero "
                    "cycles" % name)
        if config_file is not None:
            for field, lineno in self._cost_fields(config_file.tree):
                if field not in attr_refs:
                    yield self.finding(
                        config_file, _FakeNode(lineno),
                        "cost-model field `%s` is never read; every vmtrap "
                        "cost knob must price some trap kind" % field)


class BarePrintRule(Rule):
    """No bare ``print(...)`` in library code.

    Library modules must never write to an ambient stdout: output goes
    through an explicit stream (``print(..., file=out)``), which is what
    lets the CLI keep machine-readable stdout separate from diagnostic
    stderr. Only the CLI itself and the table renderer are presentation
    layers; everything else under ``src/repro/`` must thread a stream.
    """

    rule_id = "REPRO301"
    name = "bare-print"
    description = ("library code must not call print() without an explicit "
                   "file= stream (cli.py, analysis/tables.py and the "
                   "benchmarks/ presentation harnesses exempt)")

    EXEMPT_SUFFIXES = ("repro/cli.py", "repro/analysis/tables.py")
    EXEMPT_DIRS = ("benchmarks/",)

    def check_file(self, source_file):
        if any(source_file.endswith(suffix)
               for suffix in self.EXEMPT_SUFFIXES):
            return
        if any(directory in source_file.posix_path
               for directory in self.EXEMPT_DIRS):
            return
        for node in ast.walk(source_file.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                    and not any(kw.arg == "file" for kw in node.keywords)):
                yield self.finding(
                    source_file, node,
                    "bare `print(...)` writes to ambient stdout; pass an "
                    "explicit stream (`print(..., file=out)`) or move the "
                    "output to the CLI layer")


class BenchRegistrationRule(Rule):
    """Every ``benchmarks/bench_*.py`` must register with the bench harness.

    ``repro bench`` discovers targets by importing each bench file and
    scanning for functions decorated ``@bench_target(name, output=...)``.
    A bench file without a registration is invisible to the harness —
    and therefore to the ``--compare`` regression gates — so it silently
    falls out of continuous benchmarking. The declared ``output`` must
    be a literal ``BENCH_<name>.json`` filename (the same pattern
    ``repro.bench.registry.OUTPUT_NAME_RE`` enforces at run time) so the
    owned report file is knowable without importing the benchmark.
    """

    rule_id = "REPRO302"
    name = "bench-registration"
    description = ("benchmarks/bench_*.py must register a target via "
                   "@bench_target and declare a literal BENCH_*.json output")

    SCOPE = "benchmarks/"
    #: Mirror of repro.bench.registry.OUTPUT_NAME_RE — lint sits below
    #: the bench layer and must not import it (REPRO501).
    OUTPUT_RE = re.compile(r"^BENCH_[A-Za-z0-9_]+\.json$")

    @staticmethod
    def _tail_name(node):
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _in_scope(self, source_file):
        posix = source_file.posix_path
        if self.SCOPE not in posix:
            return False
        basename = posix.rsplit("/", 1)[-1]
        return basename.startswith("bench_") and basename.endswith(".py")

    def check_file(self, source_file):
        if not self._in_scope(source_file):
            return
        calls = [node for node in ast.walk(source_file.tree)
                 if isinstance(node, ast.Call)
                 and self._tail_name(node.func) == "bench_target"]
        if not calls:
            yield self.finding(
                source_file, source_file.tree,
                "benchmark file registers no target; decorate its entry "
                "point with @bench_target(name, output=\"BENCH_<name>.json\")"
                " so `repro bench` discovers and gates it")
            return
        for call in calls:
            output = call.args[1] if len(call.args) >= 2 else None
            for keyword in call.keywords:
                if keyword.arg == "output":
                    output = keyword.value
            if output is None:
                yield self.finding(
                    source_file, call,
                    "bench_target(...) declares no output= report name; "
                    "every target must own a BENCH_<name>.json file")
            elif not (isinstance(output, ast.Constant)
                      and isinstance(output.value, str)):
                yield self.finding(
                    source_file, call,
                    "bench_target output must be a string literal so the "
                    "owned BENCH file is knowable without importing the "
                    "benchmark")
            elif not self.OUTPUT_RE.match(output.value):
                yield self.finding(
                    source_file, call,
                    "bench_target output %r must match BENCH_<name>.json"
                    % (output.value,))


class _FakeNode:
    """Location carrier for findings not tied to a single AST node."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno, col_offset=0):
        self.lineno = lineno or 1
        self.col_offset = col_offset


DEFAULT_RULES = (
    UnseededRandomRule(),
    FuzzEntropyRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    PolicyHooksRule(),
    TrapAccountingRule(),
    BarePrintRule(),
    BenchRegistrationRule(),
)
