"""Whole-program analysis: symbol table, call graph, function summaries.

:func:`build_program` parses nothing itself — it walks the already
parsed ASTs of a :class:`repro.lint.engine.SourceFile` set exactly once
and produces a :class:`Program`: every module-level function and method
as a :class:`FunctionInfo` (with its declared effects and its resolved
call sites), plus the indexes the interprocedural rules query.

Call resolution is deliberately *conservative over edges, honest about
ambiguity*. An edge is produced when the callee can be pinned down:

* a bare name defined at the top level of the same module,
* an imported name (``_import_aliases`` resolves both absolute and
  relative imports to dotted ``repro.*`` paths),
* ``self.method()`` / ``cls.method()`` against the enclosing class,
* a dotted path through a known module (``repro.vmm.traps.charge`` or
  ``module.Class.method``).

Anything else with an attribute receiver (``state.manager.fill_for``)
falls back to *name matching* against every method of that name in the
program: one candidate makes an unambiguous edge, several make an
ambiguous one. Rules choose their tolerance — the effect checks
(REPRO401/402) consider every candidate, the determinism taint
(REPRO403) follows only unambiguous edges so a common method name
cannot manufacture a false leak.

The build is memoized on the file set's content hashes: the flow rules
all call :func:`build_program` from one engine run and share a single
analysis.
"""

import ast

from repro.lint.rules import _dotted_name, _import_aliases, classify_nondet_call

#: Decorator tails (from ``repro.common.effects``) the analyzer recognizes.
EFFECT_MARKERS = ("trap_handler", "policy_decision")


class FunctionInfo:
    """One module-level function or method: summary + call sites."""

    __slots__ = ("qualname", "module", "cls", "name", "path", "lineno",
                 "effects", "calls", "nondet_sources", "node")

    def __init__(self, qualname, module, cls, name, path, lineno, effects):
        self.qualname = qualname
        self.module = module
        self.cls = cls
        self.name = name
        self.path = path
        self.lineno = lineno
        self.effects = frozenset(effects)
        self.calls = []
        #: Direct nondeterminism reads inside this body: [(lineno, message)].
        self.nondet_sources = []
        #: The function's AST node, so downstream passes (the address-
        #: domain analysis in ``repro.lint.domains``) can walk the body
        #: without re-parsing anything.
        self.node = None


class CallSite:
    """One call expression attributed to its enclosing function.

    ``candidates`` are the project functions the callee may be;
    ``ambiguous`` is True when they came from name matching with more
    than one hit. ``callee`` is the source spelling, for messages.
    """

    __slots__ = ("lineno", "col", "callee", "candidates", "ambiguous")

    def __init__(self, lineno, col, callee, candidates, ambiguous):
        self.lineno = lineno
        self.col = col
        self.callee = callee
        self.candidates = candidates
        self.ambiguous = ambiguous

    @property
    def target(self):
        """The single callee qualname, or None when ambiguous/unresolved."""
        if len(self.candidates) == 1 and not self.ambiguous:
            return self.candidates[0]
        return None


class Program:
    """The whole-program view the flow rules run over."""

    __slots__ = ("functions", "modules", "module_functions", "classes",
                 "methods_by_name", "files_by_module", "aliases_by_module")

    def __init__(self):
        self.functions = {}          # qualname -> FunctionInfo
        self.modules = set()         # every module name in the file set
        self.module_functions = {}   # (module, name) -> qualname
        self.classes = {}            # (module, cls) -> {method: qualname}
        self.methods_by_name = {}    # method name -> (qualname, ...)
        self.files_by_module = {}    # module name -> SourceFile
        self.aliases_by_module = {}  # module name -> import alias map

    def callers_of(self, ambiguous_ok):
        """Reverse edge map {callee qualname: set(caller qualnames)}."""
        reverse = {}
        for info in self.functions.values():
            for call in info.calls:
                if call.ambiguous and not ambiguous_ok:
                    continue
                for target in call.candidates:
                    reverse.setdefault(target, set()).add(info.qualname)
        return reverse

    def reachable_from(self, roots):
        """Qualnames reachable from ``roots`` over all candidate edges."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            info = self.functions.get(frontier.pop())
            if info is None:
                continue
            for call in info.calls:
                for target in call.candidates:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return seen


def _tail_name(node):
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _decorator_effects(node):
    """The effect markers declared on one function definition."""
    effects = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        tail = _tail_name(target)
        if (isinstance(decorator, ast.Call) and tail == "mutates"
                and decorator.args
                and isinstance(decorator.args[0], ast.Constant)
                and isinstance(decorator.args[0].value, str)):
            effects.append("mutates:" + decorator.args[0].value)
        elif tail in EFFECT_MARKERS:
            effects.append(tail)
    return effects


class _RawFunction:
    __slots__ = ("info", "node")

    def __init__(self, info, node):
        self.info = info
        self.node = node


def _collect_definitions(source_file, program):
    """Pass 1: register every top-level function and method."""
    module = source_file.module_name
    program.modules.add(module)
    program.files_by_module[module] = source_file
    raw = []
    for node in source_file.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = "%s.%s" % (module, node.name)
            info = FunctionInfo(qualname, module, None, node.name,
                                source_file.path, node.lineno,
                                _decorator_effects(node))
            info.node = node
            program.functions[qualname] = info
            program.module_functions[(module, node.name)] = qualname
            raw.append(_RawFunction(info, node))
        elif isinstance(node, ast.ClassDef):
            methods = program.classes.setdefault((module, node.name), {})
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                qualname = "%s.%s.%s" % (module, node.name, item.name)
                info = FunctionInfo(qualname, module, node.name, item.name,
                                    source_file.path, item.lineno,
                                    _decorator_effects(item))
                info.node = item
                program.functions[qualname] = info
                methods[item.name] = qualname
                raw.append(_RawFunction(info, item))
    return raw


def _name_match(tail, program):
    """Fallback resolution: every project method named ``tail``."""
    candidates = program.methods_by_name.get(tail)
    if not candidates:
        return None
    return candidates, len(candidates) > 1


def _resolve_dotted(full, program):
    """Resolve ``repro.x.y.fn`` / ``repro.x.y.Class.method`` if known."""
    parts = full.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:cut])
        if module not in program.modules:
            continue
        rest = parts[cut:]
        if len(rest) == 1:
            qualname = program.module_functions.get((module, rest[0]))
            if qualname is not None:
                return (qualname,), False
        elif len(rest) == 2:
            qualname = program.classes.get((module, rest[0]), {}).get(rest[1])
            if qualname is not None:
                return (qualname,), False
        return None
    return None


def _resolve_call(call, info, aliases, program):
    """Candidates for one Call node, or None when no edge can be made."""
    func = call.func
    dotted = _dotted_name(func)
    if dotted is None:
        # Computed receiver (a call result, a subscript): method-name
        # matching on the attribute tail is the best that can be done.
        if isinstance(func, ast.Attribute):
            return _name_match(func.attr, program)
        return None
    parts = dotted.split(".")
    head = parts[0]
    if len(parts) == 1:
        qualname = program.module_functions.get((info.module, head))
        if qualname is not None:
            return (qualname,), False
        target = aliases.get(head)
        if target is not None:
            return _resolve_dotted(target, program)
        return None
    if head in ("self", "cls"):
        if len(parts) == 2 and info.cls is not None:
            methods = program.classes.get((info.module, info.cls), {})
            qualname = methods.get(parts[1])
            if qualname is not None:
                return (qualname,), False
        return _name_match(parts[-1], program)
    if len(parts) == 2 and (info.module, head) in program.classes:
        qualname = program.classes[(info.module, head)].get(parts[1])
        if qualname is not None:
            return (qualname,), False
        return None
    expanded = aliases.get(head)
    if expanded is not None:
        return _resolve_dotted(
            ".".join([expanded] + parts[1:]), program)
    return _name_match(parts[-1], program)


def _analyze_bodies(source_file, raw_functions, program):
    """Pass 2: call sites and direct nondeterminism sources per function."""
    aliases = _import_aliases(source_file.tree, source_file.package)
    program.aliases_by_module[source_file.module_name] = aliases
    for raw in raw_functions:
        info = raw.info
        for node in ast.walk(raw.node):
            if not isinstance(node, ast.Call):
                continue
            message = classify_nondet_call(node, aliases)
            if message is not None:
                info.nondet_sources.append((node.lineno, message))
            resolved = _resolve_call(node, info, aliases, program)
            if resolved is None:
                continue
            candidates, ambiguous = resolved
            info.calls.append(CallSite(
                node.lineno, node.col_offset,
                _dotted_name(node.func) or getattr(node.func, "attr", "?"),
                tuple(candidates), ambiguous))


_cache_key = None
_cache_value = None


def build_program(source_files):
    """The memoized whole-program analysis of one file set."""
    global _cache_key, _cache_value
    key = tuple((f.path, f.content_hash) for f in source_files)
    if key == _cache_key:
        return _cache_value
    program = Program()
    per_file = [(f, _collect_definitions(f, program)) for f in source_files]
    by_name = {}
    for info in program.functions.values():
        if info.cls is not None:
            by_name.setdefault(info.name, []).append(info.qualname)
    program.methods_by_name = {name: tuple(quals)
                               for name, quals in by_name.items()}
    for source_file, raw_functions in per_file:
        _analyze_bodies(source_file, raw_functions, program)
    _cache_key = key
    _cache_value = program
    return program
