"""The declared architecture layer map (REPRO501's ground truth).

A module may import same-or-lower layers only, so dependencies point
strictly downward:

    common(0) < mem(1) < hw/guest/workloads(2) < vmm(3) < core/host(4)
              < runner/obs/fuzz/analysis/lint(5) < cli(6)

``repro.host`` (the multi-VM consolidation subsystem) shares layer 4
with ``core``: a Host assembles N per-VM machines exactly the way
``System`` assembles one, and ``core.hostsys`` re-exports it as the
``HostSystem`` runner, so the two packages legitimately import each
other sideways.

Three deliberate inversions are declared rather than discovered:
``repro.obs.tracer``, ``repro.obs.events``, and ``repro.obs.metrics``
sit at layer 0 even though the rest of ``repro.obs`` is a layer-5
consumer. They are the observability *ports* — pure data types plus a
null object with no imports of their own — that hw/vmm/core emit into,
the standard dependency-inversion shape (the alternative, homing them
in ``common``, would split the obs package's public API in two).
"""

LAYERS = {
    "common": 0,
    "mem": 1,
    "hw": 2,
    "guest": 2,
    "workloads": 2,
    "vmm": 3,
    "core": 4,
    "host": 4,
    "runner": 5,
    "obs": 5,
    "fuzz": 5,
    "analysis": 5,
    "lint": 5,
    "bench": 5,
    "cli": 6,
}

#: Per-module exceptions to the subpackage layer (dependency inversion).
MODULE_LAYER_OVERRIDES = {
    "repro.obs.tracer": 0,
    "repro.obs.events": 0,
    "repro.obs.metrics": 0,
}


def module_layer(module):
    """The layer of a dotted module name, or None when unconstrained.

    Unconstrained: anything outside ``repro.*``, the ``repro`` package
    root itself (it re-exports the public API from every layer), and
    subpackages the map does not name (e.g. ``repro.__main__``).
    """
    override = MODULE_LAYER_OVERRIDES.get(module)
    if override is not None:
        return override
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return LAYERS.get(parts[1])
