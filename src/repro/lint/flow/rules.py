"""The interprocedural rules (REPRO4xx/5xx) of ``repro lint --deep``.

All of these are :class:`~repro.lint.engine.ProjectRule` subclasses:
they see the whole file set at once and most of them query the shared
:func:`repro.lint.flow.analysis.build_program` call-graph analysis.
Numbering: REPRO4xx are call-graph contracts (effects, taint, taxonomy,
dispatch), REPRO5xx are architecture checks (layering, config keys).
"""

import ast
import re

from repro.lint.engine import Finding, ProjectRule
from repro.lint.flow.analysis import _tail_name, build_program
from repro.lint.flow.layers import module_layer
from repro.lint.rules import _resolve_relative

# Effects that authorize reaching a shadow-PT mutator (REPRO401) and a
# switching-bit mutator (REPRO402): the shadow manager's own mutators
# call each other, trap handlers are the VMM entry points, and policy
# decisions drive the mode switches (Section III-C).
SHADOW_EFFECT = "mutates:shadow_pt"
SWITCH_EFFECT = "mutates:switching_bits"
LEDGER_EFFECT = "mutates:host_ledger"
ALLOWED_INTO_SHADOW = frozenset((SHADOW_EFFECT, "trap_handler",
                                 "policy_decision"))
ALLOWED_INTO_SWITCH = frozenset((SWITCH_EFFECT, SHADOW_EFFECT,
                                 "trap_handler", "policy_decision"))

# REPRO403 scope: the deterministic core of the simulator. runner/,
# analysis/, cli and the fuzz *campaign* layer legitimately read wall
# time (progress reporting, wall-clock budgets); the scenario/oracle/
# shrink triple must regenerate bit-identically from a seed.
DETERMINISTIC_SUBPACKAGES = frozenset(
    ("common", "mem", "hw", "guest", "vmm", "core", "workloads"))
DETERMINISTIC_MODULES = frozenset(
    ("repro.fuzz.scenario", "repro.fuzz.oracle", "repro.fuzz.shrink"))


def _in_deterministic_scope(module):
    if module in DETERMINISTIC_MODULES:
        return True
    parts = module.split(".")
    return (len(parts) >= 2 and parts[0] == "repro"
            and parts[1] in DETERMINISTIC_SUBPACKAGES)


class ShadowAuthorityRule(ProjectRule):
    """REPRO401: only authorized code may reach shadow-PT mutators.

    Every call whose (possible) callee is annotated
    ``@mutates("shadow_pt")`` must come from a function that is itself a
    shadow-PT mutator, a ``@trap_handler``, or a ``@policy_decision`` —
    the static form of "nothing outside the VMM writes a shadow PTE".
    Every name-match candidate counts: an ambiguous callee that *might*
    be a mutator already demands the authority.
    """

    rule_id = "REPRO401"
    name = "shadow-authority"
    description = ("calls into @mutates(\"shadow_pt\") functions are allowed "
                   "only from trap handlers, policy decisions, or other "
                   "shadow-PT mutators")

    def check_project(self, source_files):
        program = build_program(source_files)
        for info in program.functions.values():
            if info.effects & ALLOWED_INTO_SHADOW:
                continue
            for call in info.calls:
                mutator = next(
                    (target for target in call.candidates
                     if SHADOW_EFFECT in program.functions[target].effects),
                    None)
                if mutator is not None:
                    yield Finding(
                        self.rule_id, self.name, info.path, call.lineno,
                        call.col,
                        "`%s` calls shadow-PT mutator `%s` but is neither a "
                        "@trap_handler, a @policy_decision, nor a shadow-PT "
                        "mutator itself" % (info.qualname, mutator))


class SwitchingProvenanceRule(ProjectRule):
    """REPRO402: every switching-bit mutation traces to a policy decision.

    Two obligations: (a) calls into ``@mutates("switching_bits")``
    functions need switching/shadow/trap/policy authority, and (b) every
    switching-bit mutator must be reachable in the call graph from at
    least one ``@policy_decision`` function — a mutator no policy can
    reach is either dead or wired around the Section III-C policy layer.
    """

    rule_id = "REPRO402"
    name = "switching-provenance"
    description = ("switching-bit mutators must be called with authority and "
                   "be reachable from at least one @policy_decision function")

    def check_project(self, source_files):
        program = build_program(source_files)
        for info in program.functions.values():
            if info.effects & ALLOWED_INTO_SWITCH:
                continue
            for call in info.calls:
                mutator = next(
                    (target for target in call.candidates
                     if SWITCH_EFFECT in program.functions[target].effects),
                    None)
                if mutator is not None:
                    yield Finding(
                        self.rule_id, self.name, info.path, call.lineno,
                        call.col,
                        "`%s` calls switching-bit mutator `%s` without "
                        "trap/policy/shadow authority" % (info.qualname,
                                                          mutator))
        roots = [qualname for qualname, info in program.functions.items()
                 if "policy_decision" in info.effects]
        reachable = program.reachable_from(roots)
        for qualname, info in sorted(program.functions.items()):
            if SWITCH_EFFECT in info.effects and qualname not in reachable:
                yield Finding(
                    self.rule_id, self.name, info.path, info.lineno, 0,
                    "switching-bit mutator `%s` is not reachable from any "
                    "@policy_decision function; mode switches must originate "
                    "in the policy layer" % qualname)


class DeterminismTaintRule(ProjectRule):
    """REPRO403: nondeterminism must not leak into the deterministic core.

    Wall-clock and unseeded-RNG reads (the REPRO101 sources) are tainted
    through the call graph: a function that calls a tainted function is
    tainted. A finding fires at each call site, inside the deterministic
    scope, whose callee is tainted — the ≥1-hop leaks REPRO101's
    per-file view cannot see. Only unambiguous edges propagate taint, so
    a popular method name cannot manufacture a false leak; suppressing
    the source line silences REPRO101 but not the taint, because the
    finding is anchored at the caller.
    """

    rule_id = "REPRO403"
    name = "determinism-taint"
    description = ("simulator-core functions must not reach wall-clock or "
                   "unseeded-RNG sources through any call chain")

    def check_project(self, source_files):
        program = build_program(source_files)
        tainted = {}
        frontier = []
        for qualname, info in sorted(program.functions.items()):
            if info.nondet_sources:
                tainted[qualname] = ((qualname,), info.nondet_sources[0][1])
                frontier.append(qualname)
        reverse = program.callers_of(ambiguous_ok=False)
        while frontier:
            current = frontier.pop(0)
            chain, source = tainted[current]
            for caller in sorted(reverse.get(current, ())):
                if caller not in tainted:
                    tainted[caller] = ((caller,) + chain, source)
                    frontier.append(caller)
        for info in program.functions.values():
            if not _in_deterministic_scope(info.module):
                continue
            for call in info.calls:
                target = call.target
                if target is None or target == info.qualname:
                    continue
                if target not in tainted:
                    continue
                chain, source = tainted[target]
                yield Finding(
                    self.rule_id, self.name, info.path, call.lineno, call.col,
                    "`%s` reaches a nondeterminism source through `%s`; %s "
                    "(call chain: %s)"
                    % (info.qualname, target, source,
                       " -> ".join((info.qualname,) + chain)))


class EventTaxonomyRule(ProjectRule):
    """REPRO404: tracer emit sites and the event taxonomy stay closed.

    (a) every call on a receiver named ``tracer``/``_tracer``/``tr``
    must use a method the ``NullTracer``/``Tracer`` interface defines —
    a typo'd emit method on a NullTracer receiver would silently no-op
    forever; (b) every ``EV_*`` kind in ``obs/events.py`` is a member of
    ``ALL_EVENT_KINDS``; (c) every ``ALL_EVENT_KINDS`` member is emitted
    by some ``Tracer`` method. Skipped when the linted set does not
    contain the tracer module.
    """

    rule_id = "REPRO404"
    name = "event-taxonomy"
    description = ("tracer receivers may call only interface methods, and "
                   "EV_* constants must stay closed under ALL_EVENT_KINDS")

    TRACER_PATH = "obs/tracer.py"
    EVENTS_PATH = "obs/events.py"
    RECEIVERS = frozenset(("tracer", "_tracer", "tr"))
    CLASSES = ("NullTracer", "Tracer")

    def check_project(self, source_files):
        tracer_file = next((f for f in source_files
                            if f.endswith(self.TRACER_PATH)), None)
        if tracer_file is None:
            return
        allowed = set()
        tracer_names = set()
        for node in tracer_file.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in self.CLASSES:
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        allowed.add(item.name)
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        tracer_names.add(sub.id)
        if not allowed:
            return
        for source_file in source_files:
            for node in ast.walk(source_file.tree):
                if (not isinstance(node, ast.Call)
                        or not isinstance(node.func, ast.Attribute)):
                    continue
                receiver = _tail_name(node.func.value)
                if receiver in self.RECEIVERS and node.func.attr not in allowed:
                    yield Finding(
                        self.rule_id, self.name, source_file.path,
                        node.lineno, node.col_offset,
                        "`%s.%s(...)` is not part of the tracer interface; "
                        "known methods: %s" % (receiver, node.func.attr,
                                               ", ".join(sorted(allowed))))
        events_file = next((f for f in source_files
                            if f.endswith(self.EVENTS_PATH)), None)
        if events_file is None:
            return
        kinds = []
        members = None
        members_line = None
        for node in events_file.tree.body:
            if (not isinstance(node, ast.Assign) or len(node.targets) != 1
                    or not isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            if (target.startswith("EV_") and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                kinds.append((target, node.lineno))
            elif (target == "ALL_EVENT_KINDS"
                  and isinstance(node.value, (ast.Tuple, ast.List))):
                members = [elt.id for elt in node.value.elts
                           if isinstance(elt, ast.Name)]
                members_line = node.lineno
        if members is None:
            return
        member_set = set(members)
        for kind, lineno in kinds:
            if kind not in member_set:
                yield Finding(
                    self.rule_id, self.name, events_file.path, lineno, 0,
                    "event kind `%s` is not a member of ALL_EVENT_KINDS; it "
                    "would be invisible to taxonomy-driven consumers" % kind)
        for kind in members:
            if kind not in tracer_names:
                yield Finding(
                    self.rule_id, self.name, events_file.path,
                    members_line or 1, 0,
                    "event kind `%s` is in ALL_EVENT_KINDS but no Tracer "
                    "method ever emits it" % kind)


class LedgerAuthorityRule(ProjectRule):
    """REPRO406: only the host subsystem meters the commit ledger.

    The consolidated host's frame ledger (``@mutates("host_ledger")``:
    :class:`repro.host.memory.HostMemoryManager`'s charge/credit) is the
    ground truth ballooning defends — a stray charge or credit from
    outside the consolidation layer silently corrupts overcommit
    accounting for *every* VM. Two obligations: (a) every call into a
    host-ledger mutator must come from ``repro.host`` code, a trap
    handler, or another ledger mutator; (b) every host-ledger mutator
    must itself be defined inside ``repro.host``.
    """

    rule_id = "REPRO406"
    name = "ledger-authority"
    description = ("calls into @mutates(\"host_ledger\") functions are "
                   "allowed only from repro.host, trap handlers, or other "
                   "ledger mutators, and ledger mutators must live in "
                   "repro.host")

    HOST_PACKAGE = "repro.host"
    ALLOWED = frozenset((LEDGER_EFFECT, "trap_handler"))

    @classmethod
    def _in_host(cls, module):
        return (module == cls.HOST_PACKAGE
                or module.startswith(cls.HOST_PACKAGE + "."))

    def check_project(self, source_files):
        program = build_program(source_files)
        for qualname, info in sorted(program.functions.items()):
            if LEDGER_EFFECT in info.effects and not self._in_host(info.module):
                yield Finding(
                    self.rule_id, self.name, info.path, info.lineno, 0,
                    "host-ledger mutator `%s` is defined outside repro.host; "
                    "commit-ledger state belongs to the consolidation "
                    "subsystem" % qualname)
        for info in program.functions.values():
            if info.effects & self.ALLOWED or self._in_host(info.module):
                continue
            for call in info.calls:
                mutator = next(
                    (target for target in call.candidates
                     if LEDGER_EFFECT in program.functions[target].effects),
                    None)
                if mutator is not None:
                    yield Finding(
                        self.rule_id, self.name, info.path, call.lineno,
                        call.col,
                        "`%s` calls host-ledger mutator `%s` from outside "
                        "repro.host without trap/ledger authority"
                        % (info.qualname, mutator))


class DispatchExhaustivenessRule(ProjectRule):
    """REPRO405: closed dispatches over modes / op kinds are exhaustive.

    (a) a ``getattr(self, "_op_" + kind)`` dispatch requires the
    enclosing class to define a ``_op_<kind>`` handler for every member
    of the project's ``OP_KINDS`` tuple; (b) a *closed* if-chain over a
    paging-mode subject (an elif chain whose else raises, or consecutive
    early-return ifs followed by a raise) must cover every ``ALL_MODES``
    value — otherwise adding a mode silently falls into the raise.
    Open chains and membership tests are not exhaustiveness claims and
    are skipped.
    """

    rule_id = "REPRO405"
    name = "dispatch-exhaustiveness"
    description = ("_op_* getattr dispatches must handle every OP_KINDS "
                   "member; closed mode if-chains must cover ALL_MODES")

    def check_project(self, source_files):
        op_kinds = None
        mode_values = {}
        all_modes = None
        for source_file in source_files:
            for node in source_file.tree.body:
                if (not isinstance(node, ast.Assign) or len(node.targets) != 1
                        or not isinstance(node.targets[0], ast.Name)):
                    continue
                target = node.targets[0].id
                if (target == "OP_KINDS"
                        and isinstance(node.value, (ast.Tuple, ast.List))):
                    op_kinds = [elt.value for elt in node.value.elts
                                if isinstance(elt, ast.Constant)
                                and isinstance(elt.value, str)]
                elif (target.startswith("MODE_")
                      and isinstance(node.value, ast.Constant)
                      and isinstance(node.value.value, str)):
                    mode_values[target] = node.value.value
                elif (target == "ALL_MODES"
                      and isinstance(node.value, (ast.Tuple, ast.List))):
                    all_modes = [elt.id for elt in node.value.elts
                                 if isinstance(elt, ast.Name)]
        for source_file in source_files:
            if op_kinds:
                for finding in self._check_getattr(source_file, op_kinds):
                    yield finding
            if all_modes and all(name in mode_values for name in all_modes):
                required = frozenset(mode_values[name] for name in all_modes)
                for finding in self._check_mode_chains(
                        source_file, required,
                        frozenset(mode_values.values()), mode_values):
                    yield finding

    def _check_getattr(self, source_file, op_kinds):
        for node in source_file.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            defined = {item.name for item in node.body
                       if isinstance(item, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))}
            for sub in ast.walk(node):
                if (not isinstance(sub, ast.Call)
                        or not isinstance(sub.func, ast.Name)
                        or sub.func.id != "getattr" or len(sub.args) < 2):
                    continue
                dispatch = sub.args[1]
                if (not isinstance(dispatch, ast.BinOp)
                        or not isinstance(dispatch.op, ast.Add)
                        or not isinstance(dispatch.left, ast.Constant)
                        or not isinstance(dispatch.left.value, str)
                        or not dispatch.left.value.startswith("_op_")):
                    continue
                prefix = dispatch.left.value
                missing = [kind for kind in op_kinds
                           if prefix + kind not in defined]
                if missing:
                    yield Finding(
                        self.rule_id, self.name, source_file.path,
                        sub.lineno, sub.col_offset,
                        "class `%s` dispatches on `%s + kind` but has no "
                        "handler for op kind(s): %s" % (node.name, prefix,
                                                        ", ".join(missing)))

    @staticmethod
    def _mode_value(node, literal_values, mode_values):
        if (isinstance(node, ast.Constant)
                and node.value in literal_values):
            return node.value
        if isinstance(node, ast.Name) and node.id in mode_values:
            return mode_values[node.id]
        return None

    def _pure_mode_test(self, test, literal_values, mode_values):
        """(subject dump, value) for a bare ``subject == MODE`` test."""
        if (not isinstance(test, ast.Compare) or len(test.ops) != 1
                or not isinstance(test.ops[0], ast.Eq)):
            return None
        value = self._mode_value(test.comparators[0], literal_values,
                                 mode_values)
        if value is None:
            return None
        return ast.dump(test.left), value

    def _check_mode_chains(self, source_file, required, literal_values,
                           mode_values):
        consumed = set()
        stack = [source_file.tree]
        while stack:
            node = stack.pop()
            for handler in getattr(node, "handlers", ()) or ():
                stack.append(handler)
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if not isinstance(block, list):
                    continue
                stack.extend(block)
                for finding in self._scan_block(
                        source_file, block, consumed, required,
                        literal_values, mode_values):
                    yield finding

    def _scan_block(self, source_file, block, consumed, required,
                    literal_values, mode_values):
        index = 0
        while index < len(block):
            stmt = block[index]
            if not isinstance(stmt, ast.If) or id(stmt) in consumed:
                index += 1
                continue
            if stmt.orelse:
                finding = self._elif_chain(source_file, stmt, consumed,
                                           required, literal_values,
                                           mode_values)
                if finding is not None:
                    yield finding
                index += 1
                continue
            run, next_index = self._if_run(block, index, consumed,
                                           literal_values, mode_values)
            if run is not None:
                covered = frozenset(value for _, value in run)
                missing = required - covered
                if missing:
                    yield Finding(
                        self.rule_id, self.name, source_file.path,
                        run[0][0].lineno, run[0][0].col_offset,
                        "closed mode dispatch covers {%s} but ALL_MODES "
                        "requires {%s}; missing: %s"
                        % (", ".join(sorted(covered)),
                           ", ".join(sorted(required)),
                           ", ".join(sorted(missing))))
                index = next_index
                continue
            index += 1

    def _elif_chain(self, source_file, stmt, consumed, required,
                    literal_values, mode_values):
        # Consume the whole elif spine up front, so an abandoned chain's
        # tail cannot be re-examined as a shorter (misleading) chain.
        spine = [stmt]
        current = stmt
        while (len(current.orelse) == 1
               and isinstance(current.orelse[0], ast.If)):
            current = current.orelse[0]
            spine.append(current)
            consumed.add(id(current))
        final_orelse = current.orelse
        if not final_orelse or not any(isinstance(s, ast.Raise)
                                       for s in final_orelse):
            return None  # open chain: not an exhaustiveness claim
        tests = [self._pure_mode_test(branch.test, literal_values,
                                      mode_values)
                 for branch in spine]
        if any(test is None for test in tests) or len(tests) < 2:
            return None
        subjects = {subject for subject, _ in tests}
        if len(subjects) != 1:
            return None
        covered = frozenset(value for _, value in tests)
        missing = required - covered
        if not missing:
            return None
        return Finding(
            self.rule_id, self.name, source_file.path, stmt.lineno,
            stmt.col_offset,
            "closed mode dispatch covers {%s} but ALL_MODES requires {%s}; "
            "missing: %s" % (", ".join(sorted(covered)),
                             ", ".join(sorted(required)),
                             ", ".join(sorted(missing))))

    def _if_run(self, block, start, consumed, literal_values, mode_values):
        """A run of early-return mode ifs closed by a trailing raise."""
        run = []
        subject = None
        index = start
        while index < len(block):
            stmt = block[index]
            if (not isinstance(stmt, ast.If) or stmt.orelse
                    or id(stmt) in consumed):
                break
            test = self._pure_mode_test(stmt.test, literal_values,
                                        mode_values)
            if test is None:
                break
            this_subject, value = test
            if subject is None:
                subject = this_subject
            elif this_subject != subject:
                break
            if not stmt.body or not isinstance(stmt.body[-1],
                                               (ast.Return, ast.Raise)):
                break
            run.append((stmt, value))
            index += 1
        if (len(run) < 2 or index >= len(block)
                or not isinstance(block[index], ast.Raise)):
            return None, start + 1
        for stmt, _ in run:
            consumed.add(id(stmt))
        return run, index + 1


class LayeringRule(ProjectRule):
    """REPRO501: imports must point down the declared layer map.

    See :mod:`repro.lint.flow.layers` for the map and its two declared
    inversions. The rule resolves relative imports against the module's
    own package and refines ``from pkg import name`` to ``pkg.name``
    when that names a module in the linted set.
    """

    rule_id = "REPRO501"
    name = "layering"
    description = ("a repro module may import only same-or-lower layers of "
                   "the declared architecture map")

    def check_project(self, source_files):
        modules = {f.module_name for f in source_files}
        for source_file in source_files:
            source_layer = module_layer(source_file.module_name)
            if source_layer is None:
                continue
            for node in ast.walk(source_file.tree):
                if isinstance(node, ast.Import):
                    targets = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    base = node.module
                    if node.level:
                        base = _resolve_relative(source_file.package,
                                                 node.level, node.module)
                    if base is None:
                        continue
                    targets = []
                    for alias in node.names:
                        refined = "%s.%s" % (base, alias.name)
                        targets.append(refined if refined in modules else base)
                else:
                    continue
                for target in targets:
                    target_layer = module_layer(target)
                    if target_layer is not None and target_layer > source_layer:
                        yield Finding(
                            self.rule_id, self.name, source_file.path,
                            node.lineno, node.col_offset,
                            "layer violation: `%s` (layer %d) imports `%s` "
                            "(layer %d); dependencies must point downward"
                            % (source_file.module_name, source_layer, target,
                               target_layer))


class ConfigKeysRule(ProjectRule):
    """REPRO502: no dead config fields, no phantom override keys.

    Cross-references ``common/config.py``'s dataclasses against the
    whole tree: (a) every declared field must be read as an attribute
    somewhere — an unread knob silently prices nothing; (b) every
    dotted string key whose head is a dataclass-typed ``MachineConfig``
    field (the ``CellSpec`` override namespace, e.g. ``"pwc.enabled"``)
    must resolve to a declared field path; (c) every member of a
    ``VALID_*`` enum tuple (the value set of a string-typed config key,
    e.g. ``VALID_CORES``) must be referenced outside config.py — by its
    constant name or its literal value — or the declared value is dead:
    accepted by validation but handled by nothing.
    """

    rule_id = "REPRO502"
    name = "config-keys"
    description = ("every config dataclass field must be read somewhere, and "
                   "every dotted override key must name a declared field")

    CONFIG_PATH = "common/config.py"
    DOTTED_KEY_RE = re.compile(r"^[a-z_][a-z0-9_]*(\.[a-z_][a-z0-9_]*)+$")

    @staticmethod
    def _annotation_name(node):
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def check_project(self, source_files):
        config_file = next((f for f in source_files
                            if f.endswith(self.CONFIG_PATH)), None)
        if config_file is None:
            return
        dataclasses = {}
        field_sites = []
        for node in config_file.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            decorated = any(
                _tail_name(dec.func if isinstance(dec, ast.Call) else dec)
                == "dataclass" for dec in node.decorator_list)
            if not decorated:
                continue
            fields = {}
            for item in node.body:
                if (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    fields[item.target.id] = self._annotation_name(
                        item.annotation)
                    field_sites.append((node.name, item.target.id,
                                        item.lineno))
            dataclasses[node.name] = fields
        if not dataclasses:
            return
        # Module-level string constants and VALID_* enum tuples in the
        # config module, for the dead-enum-member check (c).
        string_consts = {}
        enum_tuples = []
        for node in config_file.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            if (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                string_consts[target] = node.value.value
            elif target.startswith("VALID_") and isinstance(node.value, ast.Tuple):
                enum_tuples.append((target, node.value))
        attr_reads = set()
        key_literals = []
        outside_names = set()
        outside_strings = set()
        for source_file in source_files:
            outside = source_file is not config_file
            for node in ast.walk(source_file.tree):
                if isinstance(node, ast.Attribute):
                    attr_reads.add(node.attr)
                    if outside:
                        outside_names.add(node.attr)
                elif (isinstance(node, ast.Constant)
                      and isinstance(node.value, str)):
                    if self.DOTTED_KEY_RE.match(node.value):
                        key_literals.append((source_file, node))
                    if outside:
                        outside_strings.add(node.value)
                elif outside and isinstance(node, ast.Name):
                    outside_names.add(node.id)
        for enum_name, tuple_node in enum_tuples:
            for element in tuple_node.elts:
                if isinstance(element, ast.Name):
                    member_name = element.id
                    member_value = string_consts.get(member_name)
                elif (isinstance(element, ast.Constant)
                      and isinstance(element.value, str)):
                    member_name = None
                    member_value = element.value
                else:
                    continue
                if member_name in outside_names or member_value in outside_strings:
                    continue
                yield Finding(
                    self.rule_id, self.name, config_file.path,
                    element.lineno, element.col_offset,
                    "config enum `%s` declares %r but nothing outside "
                    "config.py references it; a declared-but-unhandled "
                    "value is a dead key"
                    % (enum_name, member_value
                       if member_value is not None else member_name))
        for class_name, field, lineno in field_sites:
            if field not in attr_reads:
                yield Finding(
                    self.rule_id, self.name, config_file.path, lineno, 0,
                    "config field `%s.%s` is never read anywhere in the "
                    "tree; a dead knob silently prices nothing"
                    % (class_name, field))
        machine_fields = dataclasses.get("MachineConfig", {})
        heads = {field: annotation
                 for field, annotation in machine_fields.items()
                 if annotation in dataclasses}
        for source_file, node in key_literals:
            parts = node.value.split(".")
            if parts[0] not in heads:
                continue
            current = heads[parts[0]]
            for part in parts[1:]:
                fields = dataclasses.get(current)
                if fields is None:
                    break  # beyond the typed config: nothing to check
                if part not in fields:
                    yield Finding(
                        self.rule_id, self.name, source_file.path,
                        node.lineno, node.col_offset,
                        "override key `%s` does not resolve: `%s` has no "
                        "field `%s`" % (node.value, current, part))
                    break
                current = fields[part]


FLOW_RULES = (
    ShadowAuthorityRule(),
    SwitchingProvenanceRule(),
    DeterminismTaintRule(),
    EventTaxonomyRule(),
    LedgerAuthorityRule(),
    DispatchExhaustivenessRule(),
    LayeringRule(),
    ConfigKeysRule(),
)
