"""Whole-program static analysis: call graph, effects, taint, layering.

The ``repro lint --deep`` layer. :func:`~repro.lint.flow.analysis.build_program`
turns a parsed file set into a call-graph :class:`~repro.lint.flow.analysis.Program`;
the :data:`FLOW_RULES` (REPRO401–REPRO406, REPRO501–REPRO502) run the
interprocedural contracts over it. See ``docs/static_analysis.md``.
"""

from repro.lint.flow.analysis import Program, build_program
from repro.lint.flow.layers import LAYERS, MODULE_LAYER_OVERRIDES, module_layer
from repro.lint.flow.rules import FLOW_RULES

__all__ = [
    "Program",
    "build_program",
    "LAYERS",
    "MODULE_LAYER_OVERRIDES",
    "module_layer",
    "FLOW_RULES",
]
