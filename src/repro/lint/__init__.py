"""Project-specific static analysis for the simulator ("the sanitizer").

A small AST-walking lint engine plus rules that encode correctness
contracts the test suite cannot easily express file-by-file:

* determinism — no unseeded randomness or wall-clock reads in simulator
  code (the cross-mode comparisons and the two-step methodology rely on
  identical operation streams),
* accounting completeness — every VMtrap kind is charged against the
  cost model and aggregated by the metrics layer,
* policy/hook contracts — policy classes implement the hooks the VMM
  drives,
* general hygiene — no mutable default arguments, no bare ``except:``.

On top of the per-file rules sits ``repro.lint.flow`` — a whole-program
pass (``repro lint --deep`` / ``repro check``) that builds a call graph
and enforces the interprocedural contracts: the effect system over
shadow-PT and switching-bit mutations (REPRO401/402), determinism
*taint* through helper layers (REPRO403), event-taxonomy and dispatch
exhaustiveness (REPRO404/405), the architecture layer map (REPRO501),
and dead/phantom config keys (REPRO502) — plus ``repro.lint.domains``,
the address-domain typestate analysis proving gVA/gPA/hPA values never
mix (REPRO601–605, over the ``repro.common.addrspace`` annotations),
and ``repro.lint.time``, the time-domain analysis proving host wall
time and guest virtual time never mix and that every charged cycle
lands in a declared metrics counter (REPRO701–704, over the
``repro.common.timedomain`` annotations).

Run it as ``python -m repro lint [paths]`` (or via the ``repro`` console
script); the pytest suite runs it over ``src/`` so tier-1 enforces a
clean tree. See ``docs/static_analysis.md``.
"""

from repro.lint.domains.rules import DOMAIN_RULES
from repro.lint.engine import (
    Finding,
    LintEngine,
    LintResult,
    ProjectRule,
    Rule,
    Suppression,
)
from repro.lint.flow.rules import FLOW_RULES
from repro.lint.rules import DEFAULT_RULES
from repro.lint.runner import run_lint
from repro.lint.time.rules import TIME_RULES

#: The ``--deep`` rule set: every per-file rule plus the whole-program
#: flow, address-domain, and time-domain rules.
DEEP_RULES = DEFAULT_RULES + FLOW_RULES + DOMAIN_RULES + TIME_RULES

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "Suppression",
    "Rule",
    "ProjectRule",
    "DEFAULT_RULES",
    "FLOW_RULES",
    "DOMAIN_RULES",
    "TIME_RULES",
    "DEEP_RULES",
    "run_lint",
]
