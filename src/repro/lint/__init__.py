"""Project-specific static analysis for the simulator ("the sanitizer").

A small AST-walking lint engine plus rules that encode correctness
contracts the test suite cannot easily express file-by-file:

* determinism — no unseeded randomness or wall-clock reads in simulator
  code (the cross-mode comparisons and the two-step methodology rely on
  identical operation streams),
* accounting completeness — every VMtrap kind is charged against the
  cost model and aggregated by the metrics layer,
* policy/hook contracts — policy classes implement the hooks the VMM
  drives,
* general hygiene — no mutable default arguments, no bare ``except:``.

Run it as ``python -m repro lint [paths]`` (or via the ``repro`` console
script); the pytest suite runs it over ``src/`` so tier-1 enforces a
clean tree. See ``docs/static_analysis.md``.
"""

from repro.lint.engine import Finding, LintEngine, ProjectRule, Rule
from repro.lint.rules import DEFAULT_RULES
from repro.lint.runner import run_lint

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "ProjectRule",
    "DEFAULT_RULES",
    "run_lint",
]
