"""The AST lint engine: file discovery, parsing, rule dispatch.

Two rule shapes exist. A plain :class:`Rule` inspects one parsed file at
a time; a :class:`ProjectRule` runs once over the *whole* file set, which
is what cross-module contracts (trap kinds vs. cost model vs. metrics)
need. Both yield :class:`Finding` objects the runner renders as text or
JSON.

Suppression: a line carrying ``# lint: disable=<rule-name>`` (or
``disable=all``) silences findings reported on that line. Use sparingly;
every suppression is a claim that the contract holds anyway.
"""

import ast
import os
import re

SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-]+)")

SKIP_DIR_SUFFIXES = ("__pycache__", ".egg-info")


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule_id", "rule_name", "path", "line", "col", "message")

    def __init__(self, rule_id, rule_name, path, line, col, message):
        self.rule_id = rule_id
        self.rule_name = rule_name
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def as_dict(self):
        return {
            "rule_id": self.rule_id,
            "rule": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self):
        return "%s:%d:%d: %s [%s] %s" % (
            self.path, self.line, self.col, self.rule_id, self.rule_name,
            self.message,
        )

    def __repr__(self):
        return "Finding(%s)" % self.format()


class SourceFile:
    """One parsed Python source file."""

    __slots__ = ("path", "source", "tree", "lines")

    def __init__(self, path, source, tree):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def line_text(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def posix_path(self):
        return self.path.replace(os.sep, "/")

    def endswith(self, suffix):
        """Does this file's path end with ``suffix`` (posix-style)?"""
        return self.posix_path.endswith(suffix)


class Rule:
    """A per-file rule. Subclasses implement :meth:`check_file`."""

    rule_id = "REPRO000"
    name = "rule"
    description = ""

    def check_file(self, source_file):
        """Yield/return findings for one file."""
        return ()

    def finding(self, source_file, node, message):
        """A :class:`Finding` anchored at ``node`` (or at line 1)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.rule_id, self.name, source_file.path, line, col,
                       message)


class ProjectRule(Rule):
    """A rule that needs the whole file set (cross-module contracts)."""

    def check_project(self, source_files):
        """Yield/return findings over all files."""
        return ()


class ParseErrorRule(Rule):
    """Pseudo-rule under which syntax errors are reported."""

    rule_id = "REPRO001"
    name = "parse-error"
    description = "the file does not parse as Python"


def _iter_python_files(paths):
    """Every .py file under ``paths`` (files or directories), sorted."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".")
                    and not any(d.endswith(s) for s in SKIP_DIR_SUFFIXES)
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if full not in seen:
                        seen.add(full)
        else:
            raise FileNotFoundError("no such file or directory: %r" % (path,))
    return sorted(seen)


def _suppressed(source_file, finding):
    """Is this finding silenced by a ``# lint: disable=`` marker?"""
    match = SUPPRESS_RE.search(source_file.line_text(finding.line))
    if match is None:
        return False
    names = {name.strip() for name in match.group(1).split(",")}
    return "all" in names or finding.rule_name in names or finding.rule_id in names


class LintEngine:
    """Parses files once and dispatches every configured rule."""

    def __init__(self, rules):
        self.rules = list(rules)
        self._parse_rule = ParseErrorRule()

    def run(self, paths):
        """Lint ``paths``; returns (findings, number_of_files_checked)."""
        findings = []
        source_files = []
        checked = 0
        for path in _iter_python_files(paths):
            checked += 1
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                findings.append(Finding(
                    self._parse_rule.rule_id, self._parse_rule.name, path,
                    error.lineno or 1, (error.offset or 1) - 1,
                    "syntax error: %s" % (error.msg,),
                ))
                continue
            source_files.append(SourceFile(path, source, tree))
        by_path = {f.path: f for f in source_files}
        for rule in self.rules:
            for source_file in source_files:
                findings.extend(rule.check_file(source_file))
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(source_files))
        findings = [
            f for f in findings
            if f.path not in by_path or not _suppressed(by_path[f.path], f)
        ]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings, checked
