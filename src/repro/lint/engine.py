"""The AST lint engine: file discovery, parsing, rule dispatch.

Two rule shapes exist. A plain :class:`Rule` inspects one parsed file at
a time; a :class:`ProjectRule` runs once over the *whole* file set, which
is what cross-module contracts (trap kinds vs. cost model vs. metrics)
and the ``repro.lint.flow`` whole-program rules need. Both yield
:class:`Finding` objects the runner renders as text or JSON.

Suppression comes in two spellings, both per-line:

* ``# lint: disable=<rule-name>`` (or the rule ID, or ``all``) — the
  original syntax,
* ``# repro: noqa[...]`` with comma-separated IDs/names (e.g.
  ``REPRO101``) or ``all`` between the brackets.

Every suppression the engine sees is recorded with a used/unused flag so
``repro lint --audit-suppressions`` can list them and fail on dead ones.
Use sparingly; every suppression is a claim that the contract holds
anyway.
"""

import ast
import hashlib
import os
import re

SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\-]+)")
NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s\-]+)\]")

SKIP_DIR_SUFFIXES = ("__pycache__", ".egg-info")


class Finding:
    """One rule violation at one source location."""

    __slots__ = ("rule_id", "rule_name", "path", "line", "col", "message")

    def __init__(self, rule_id, rule_name, path, line, col, message):
        self.rule_id = rule_id
        self.rule_name = rule_name
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def as_dict(self):
        return {
            "rule_id": self.rule_id,
            "rule": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["rule_id"], payload["rule"], payload["path"],
                   payload["line"], payload["col"], payload["message"])

    def format(self):
        return "%s:%d:%d: %s [%s] %s" % (
            self.path, self.line, self.col, self.rule_id, self.rule_name,
            self.message,
        )

    def __repr__(self):
        return "Finding(%s)" % self.format()


class Suppression:
    """One suppression marker (either spelling) at one source line."""

    __slots__ = ("path", "line", "names", "used")

    def __init__(self, path, line, names, used=False):
        self.path = path
        self.line = line
        self.names = frozenset(names)
        self.used = used

    def matches(self, finding):
        return ("all" in self.names or finding.rule_name in self.names
                or finding.rule_id in self.names)

    def as_dict(self):
        return {"path": self.path, "line": self.line,
                "names": sorted(self.names), "used": self.used}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["path"], payload["line"], payload["names"],
                   payload["used"])

    def format(self):
        return "%s:%d: suppresses %s [%s]" % (
            self.path, self.line, ",".join(sorted(self.names)),
            "used" if self.used else "UNUSED")


class LintResult:
    """Everything one engine run produced."""

    __slots__ = ("findings", "checked", "suppressions")

    def __init__(self, findings, checked, suppressions):
        self.findings = findings
        self.checked = checked
        self.suppressions = suppressions

    def unused_suppressions(self):
        return [s for s in self.suppressions if not s.used]


class SourceFile:
    """One parsed Python source file."""

    __slots__ = ("path", "source", "tree", "lines", "_content_hash",
                 "_module_name")

    def __init__(self, path, source, tree):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._content_hash = None
        self._module_name = None

    def line_text(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def posix_path(self):
        return self.path.replace(os.sep, "/")

    def endswith(self, suffix):
        """Does this file's path end with ``suffix`` (posix-style)?"""
        return self.posix_path.endswith(suffix)

    @property
    def content_hash(self):
        """Hex SHA-256 of the source text (cache keying)."""
        if self._content_hash is None:
            self._content_hash = hashlib.sha256(
                self.source.encode("utf-8")).hexdigest()
        return self._content_hash

    @property
    def module_name(self):
        """The dotted module name, derived from ``__init__.py`` markers.

        Walks up from the file while package markers exist, so
        ``.../src/repro/hw/walker.py`` names ``repro.hw.walker`` whether
        the tree being linted is the installed package or a fixture copy
        under a pytest tmp_path. A file outside any package names its
        bare stem.
        """
        if self._module_name is None:
            path = os.path.abspath(self.path)
            directory, filename = os.path.split(path)
            parts = [] if filename == "__init__.py" else [filename[:-3]]
            while os.path.isfile(os.path.join(directory, "__init__.py")):
                directory, package = os.path.split(directory)
                parts.append(package)
            self._module_name = ".".join(reversed(parts)) or "__init__"
        return self._module_name

    @property
    def package(self):
        """The package this module lives in (itself, for ``__init__.py``)."""
        name = self.module_name
        if os.path.basename(self.path) == "__init__.py":
            return name
        return name.rpartition(".")[0]


class Rule:
    """A per-file rule. Subclasses implement :meth:`check_file`."""

    rule_id = "REPRO000"
    name = "rule"
    description = ""

    def check_file(self, source_file):
        """Yield/return findings for one file."""
        return ()

    def finding(self, source_file, node, message):
        """A :class:`Finding` anchored at ``node`` (or at line 1)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.rule_id, self.name, source_file.path, line, col,
                       message)


class ProjectRule(Rule):
    """A rule that needs the whole file set (cross-module contracts)."""

    def check_project(self, source_files):
        """Yield/return findings over all files."""
        return ()


class ParseErrorRule(Rule):
    """Pseudo-rule under which syntax errors are reported."""

    rule_id = "REPRO001"
    name = "parse-error"
    description = "the file does not parse as Python"


def _iter_python_files(paths):
    """Every .py file under ``paths`` (files or directories), sorted."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py") and path not in seen:
                seen.add(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".")
                    and not any(d.endswith(s) for s in SKIP_DIR_SUFFIXES)
                )
                for filename in sorted(filenames):
                    if not filename.endswith(".py"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if full not in seen:
                        seen.add(full)
        else:
            raise FileNotFoundError("no such file or directory: %r" % (path,))
    return sorted(seen)


def read_sources(paths):
    """Read every lintable file under ``paths`` exactly once.

    Returns sorted ``(path, source)`` pairs. This is the single
    read-from-disk step of a lint run: the runner hashes these strings
    for cache keying and the engine parses the same strings, so no file
    is opened twice (PR 6 — previously the cache key re-read every
    file the engine was about to read).
    """
    pairs = []
    for path in _iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            pairs.append((path, handle.read()))
    return pairs


def _scan_suppressions(path, source):
    """Every suppression marker in one file, as {line: Suppression}."""
    suppressions = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        names = set()
        for regex in (SUPPRESS_RE, NOQA_RE):
            match = regex.search(text)
            if match is not None:
                names.update(n.strip() for n in match.group(1).split(",")
                             if n.strip())
        if names:
            suppressions[lineno] = Suppression(path, lineno, names)
    return suppressions


class LintEngine:
    """Parses files once and dispatches every configured rule."""

    def __init__(self, rules):
        self.rules = list(rules)
        self._parse_rule = ParseErrorRule()

    def run(self, paths):
        """Lint ``paths``; returns (findings, number_of_files_checked)."""
        result = self.run_detailed(paths)
        return result.findings, result.checked

    def run_detailed(self, paths, sources=None):
        """Lint ``paths``; returns a full :class:`LintResult`.

        ``sources`` may carry pre-read ``(path, source)`` pairs (from
        :func:`read_sources`) so a caller that already read the files —
        the runner hashes them for the cache key — shares one read.
        """
        findings = []
        source_files = []
        suppressions = {}  # path -> {line: Suppression}
        checked = 0
        if sources is None:
            sources = read_sources(paths)
        for path, source in sources:
            checked += 1
            suppressions[path] = _scan_suppressions(path, source)
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                findings.append(Finding(
                    self._parse_rule.rule_id, self._parse_rule.name, path,
                    error.lineno or 1, (error.offset or 1) - 1,
                    "syntax error: %s" % (error.msg,),
                ))
                continue
            source_files.append(SourceFile(path, source, tree))
        for rule in self.rules:
            for source_file in source_files:
                findings.extend(rule.check_file(source_file))
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(source_files))
        kept = []
        for finding in findings:
            marker = suppressions.get(finding.path, {}).get(finding.line)
            if marker is not None and marker.matches(finding):
                marker.used = True
                continue
            kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        all_suppressions = sorted(
            (s for per_file in suppressions.values() for s in per_file.values()),
            key=lambda s: (s.path, s.line))
        return LintResult(kept, checked, all_suppressions)
