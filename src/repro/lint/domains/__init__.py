"""Address-domain typestate analysis (rules REPRO601–REPRO605).

An interprocedural abstract interpretation over the PR 5 call graph
that proves guest-virtual, guest-physical, and host-physical addresses
never mix: locals get a domain lattice value (known space/unit,
unknown, or ⊥-mixed) inferred from ``repro.common.addrspace``
annotations, declared translators, and the shift/mask idioms
(``>> PAGE_SHIFT``, ``& OFFSET_MASK``), propagated across unambiguous
call edges. See ``docs/static_analysis.md``.
"""

from repro.lint.domains.rules import (
    DOMAIN_RULES,
    CrossDomainArithmeticRule,
    FrameByteConfusionRule,
    TranslatorClosureRule,
    UntranslatedGuestAddressRule,
    WrongDomainArgumentRule,
)

__all__ = [
    "DOMAIN_RULES",
    "CrossDomainArithmeticRule",
    "WrongDomainArgumentRule",
    "UntranslatedGuestAddressRule",
    "FrameByteConfusionRule",
    "TranslatorClosureRule",
]
