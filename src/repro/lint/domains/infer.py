"""Per-function abstract interpretation + interprocedural summaries.

:func:`analyze_domains` runs over the :func:`build_program` call graph
(parsing nothing — it walks the AST nodes the flow analysis already
kept per function) and produces a :class:`DomainReport`:

* per-function forward dataflow over the domain lattice — locals are
  seeded from ``@takes``/``@translates`` parameters and updated through
  the shift/mask idioms (``addr >> PAGE_SHIFT`` → frame, ``frame << 12``
  → addr, ``x & OFFSET_MASK`` → offset, ``x & ~mask`` keeps x),
* call-site transfer across *unambiguous* edges: declared ``@returns``
  first, else the callee's inferred return summary (computed to a
  fixpoint, so an undeclared helper still propagates its domain),
* the findings for REPRO601–REPRO604, each carrying the inferred
  provenance chain, and the REPRO605 translator-closure checks.

Branches join conservatively (disagreeing values drop to unknown), so
only operations on two *known* conflicting values report — annotations
buy checking, unannotated code stays silent.
"""

import ast

from repro.common.addrspace import PAPER_EDGES
from repro.lint.domains.model import (
    Value,
    from_name,
    is_inverted_mask,
    is_offset_mask,
    is_page_shift,
    join,
    read_signature,
    spaces_conflict,
    units_conflict,
)
from repro.lint.flow.analysis import _resolve_call, build_program

#: Rule keys (the REPRO60x suffix each finding belongs to).
CROSS_DOMAIN = "REPRO601"
WRONG_ARGUMENT = "REPRO602"
UNTRANSLATED = "REPRO603"
FRAME_BYTE = "REPRO604"
CLOSURE = "REPRO605"

#: PhysicalMemory accessors whose first argument indexes RAM by frame.
PHYSMEM_ACCESSORS = ("read", "read_required", "install", "free_frame")

#: Receiver spellings with a fixed backing space: ``self.guest_mem``
#: holds guest-physical frames, ``self.host_mem`` host-physical ones.
PHYSMEM_SPACES = {
    "guest_mem": ("guest-physical", "gfn"),
    "host_mem": ("host-physical", "hfn"),
}

#: Arithmetic operators checked for cross-space mixing (REPRO601).
_ADDITIVE_OPS = (ast.Add, ast.Sub, ast.BitOr, ast.BitXor,
                 ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)

#: Comparison operators checked for cross-space mixing.
_ORDERED_CMPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: Call-graph roots the translator-closure reachability starts from:
#: the hardware walk itself plus the VMexit handlers its faults invoke.
_ROOT_MODULE_TAILS = (("hw", "walker"), ("hw", "mmu"))

#: Modules that implement the gPA→hPA step and therefore must declare
#: it (dropping the @translates is a REPRO605, not a silent hole).
_REQUIRED_EDGES = {
    ("hw", "walker"): ("gfn", "hfn"),
    ("vmm", "hostpt"): ("gfn", "hfn"),
}


def _clip(text, limit=220):
    return text if len(text) <= limit else text[:limit - 3] + "..."


class DomainFinding:
    """One pre-rendered finding, tagged with its rule key."""

    __slots__ = ("rule_key", "path", "lineno", "col", "message")

    def __init__(self, rule_key, path, lineno, col, message):
        self.rule_key = rule_key
        self.path = path
        self.lineno = lineno
        self.col = col
        self.message = _clip(message)


class DomainReport:
    """Everything one domain analysis produced."""

    __slots__ = ("findings", "translators", "summaries")

    def __init__(self, findings, translators, summaries):
        self.findings = findings      # [DomainFinding]
        self.translators = translators  # {qualname: (src, dst)}
        self.summaries = summaries    # {qualname: (domain-or-None, ...)}

    def by_rule(self, rule_key):
        return [f for f in self.findings if f.rule_key == rule_key]


def _module_tail(module):
    return tuple(module.split(".")[-2:])


def _receiver_tail(node):
    """The last attribute/name of a call receiver (``self.host_mem`` →
    ``host_mem``), or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _Interpreter:
    """One forward pass over one function body."""

    def __init__(self, program, info, signatures, summaries, emit):
        self.program = program
        self.info = info
        self.signatures = signatures
        self.summaries = summaries
        self.emit = emit
        self.findings = []
        self.returns = []  # one tuple of Value-or-None per return stmt
        self.aliases = program.aliases_by_module.get(info.module, {})

    # -- plumbing ----------------------------------------------------------

    def report(self, rule_key, node, message):
        if self.emit:
            self.findings.append(DomainFinding(
                rule_key, self.info.path, node.lineno, node.col_offset,
                message))

    def run(self):
        node = self.info.node
        env = {}
        signature = self.signatures[self.info.qualname]
        for name, domain in signature.param_domains(node).items():
            env[name] = from_name(domain, "`%s` is a %s parameter of `%s`"
                                  % (name, domain, self.info.qualname))
        self.exec_block(node.body, env)
        return self

    def return_summary(self):
        """Positionwise join over every return statement's domains."""
        if not self.returns:
            return None
        width = max(len(r) for r in self.returns)
        summary = []
        for position in range(width):
            merged = self.returns[0][position] if position < len(
                self.returns[0]) else None
            for values in self.returns[1:]:
                other = values[position] if position < len(values) else None
                merged = join(merged, other)
            summary.append(merged.domain if merged is not None else None)
        if all(domain is None for domain in summary):
            return None
        return tuple(summary)

    # -- statements --------------------------------------------------------

    def exec_block(self, statements, env):
        for statement in statements:
            self.exec_stmt(statement, env)

    def _assign(self, target, value, env):
        if isinstance(target, ast.Name):
            if value is None or isinstance(value, (tuple, list)):
                env.pop(target.id, None)
            else:
                env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = list(value) if isinstance(value, (tuple, list)) else []
            for index, element in enumerate(target.elts):
                self._assign(element, elements[index]
                             if index < len(elements) else None, env)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target.value, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, None, env)

    def exec_stmt(self, statement, env):
        if isinstance(statement, ast.Assign):
            value = self.eval(statement.value, env)
            for target in statement.targets:
                self._assign(target, value, env)
        elif isinstance(statement, ast.AnnAssign):
            value = (self.eval(statement.value, env)
                     if statement.value is not None else None)
            self._assign(statement.target, value, env)
        elif isinstance(statement, ast.AugAssign):
            synthetic = ast.BinOp(left=statement.target,
                                  op=statement.op, right=statement.value)
            ast.copy_location(synthetic, statement)
            ast.fix_missing_locations(synthetic)
            value = self._eval_BinOp(synthetic, env)
            self._assign(statement.target, value, env)
        elif isinstance(statement, ast.Return):
            self._exec_return(statement, env)
        elif isinstance(statement, ast.Expr):
            self.eval(statement.value, env)
        elif isinstance(statement, ast.If):
            self.eval(statement.test, env)
            after_body = dict(env)
            self.exec_block(statement.body, after_body)
            after_orelse = dict(env)
            self.exec_block(statement.orelse, after_orelse)
            self._merge_into(env, after_body, after_orelse)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            self.eval(statement.iter, env)
            body_env = dict(env)
            self._assign(statement.target, None, body_env)
            self.exec_block(statement.body, body_env)
            self.exec_block(statement.orelse, body_env)
            self._assign(statement.target, None, env)
            self._merge_into(env, env, body_env)
        elif isinstance(statement, ast.While):
            self.eval(statement.test, env)
            body_env = dict(env)
            self.exec_block(statement.body, body_env)
            self.exec_block(statement.orelse, body_env)
            self._merge_into(env, env, body_env)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, env)
            self.exec_block(statement.body, env)
        elif isinstance(statement, ast.Try):
            after_body = dict(env)
            self.exec_block(statement.body, after_body)
            merged = after_body
            for handler in statement.handlers:
                after_handler = dict(env)
                self.exec_block(handler.body, after_handler)
                merged = self._merged(merged, after_handler)
            self._merge_into(env, env, merged)
            self.exec_block(statement.orelse, env)
            self.exec_block(statement.finalbody, env)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                self._assign(target, None, env)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Import,
                                    ast.ImportFrom, ast.Global,
                                    ast.Nonlocal, ast.Pass, ast.Break,
                                    ast.Continue)):
            pass
        else:
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self.eval(child, env)

    def _merged(self, env_a, env_b):
        merged = {}
        for name, value in env_a.items():
            kept = join(value, env_b.get(name))
            if kept is not None:
                merged[name] = kept
        return merged

    def _merge_into(self, env, env_a, env_b):
        merged = self._merged(env_a, env_b)
        env.clear()
        env.update(merged)

    def _exec_return(self, statement, env):
        if statement.value is None:
            return
        value = self.eval(statement.value, env)
        values = (tuple(self._scalar(v) for v in value)
                  if isinstance(value, (tuple, list))
                  else (self._scalar(value),))
        self.returns.append(values)
        declared = self.signatures[self.info.qualname].return_domains()
        if declared is None:
            return
        for position, declared_name in enumerate(declared):
            if declared_name is None or position >= len(values):
                continue
            inferred = values[position]
            want = from_name(declared_name, "declared")
            if inferred is None or want is None:
                continue
            if spaces_conflict(want, inferred):
                self.report(WRONG_ARGUMENT, statement,
                            "`%s` returns %s where %s is declared — %s"
                            % (self.info.qualname, inferred.domain,
                               declared_name, inferred.origin))
            elif units_conflict(want, inferred):
                self.report(FRAME_BYTE, statement,
                            "`%s` returns %s where %s is declared "
                            "(frame/byte confusion) — %s"
                            % (self.info.qualname, inferred.domain,
                               declared_name, inferred.origin))

    # -- expressions -------------------------------------------------------

    def eval(self, node, env):
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is not None:
            return method(node, env)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return None

    def _eval_Name(self, node, env):
        return env.get(node.id)

    def _eval_Constant(self, node, env):
        return None

    def _eval_Tuple(self, node, env):
        return tuple(self.eval(element, env) for element in node.elts)

    def _eval_NamedExpr(self, node, env):
        value = self.eval(node.value, env)
        self._assign(node.target, value, env)
        return value

    def _eval_IfExp(self, node, env):
        self.eval(node.test, env)
        return join(self._scalar(self.eval(node.body, env)),
                    self._scalar(self.eval(node.orelse, env)))

    def _eval_BoolOp(self, node, env):
        merged = self._scalar(self.eval(node.values[0], env))
        for value in node.values[1:]:
            merged = join(merged, self._scalar(self.eval(value, env)))
        return merged

    def _eval_UnaryOp(self, node, env):
        value = self.eval(node.operand, env)
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._scalar(value)
        return None

    @staticmethod
    def _scalar(value):
        return value if isinstance(value, Value) else None

    def _eval_Compare(self, node, env):
        values = [self._scalar(self.eval(node.left, env))]
        for comparator in node.comparators:
            values.append(self._scalar(self.eval(comparator, env)))
        for index, op in enumerate(node.ops):
            if not isinstance(op, _ORDERED_CMPS):
                continue
            left, right = values[index], values[index + 1]
            if spaces_conflict(left, right):
                self.report(CROSS_DOMAIN, node,
                            "cross-domain comparison: %s (%s) vs %s (%s)"
                            % (left.domain, left.origin,
                               right.domain, right.origin))
            elif units_conflict(left, right):
                self.report(FRAME_BYTE, node,
                            "frame/byte comparison: %s (%s) vs %s (%s)"
                            % (left.domain, left.origin,
                               right.domain, right.origin))
        return None

    def _eval_BinOp(self, node, env):
        left = self._scalar(self.eval(node.left, env))
        right = self._scalar(self.eval(node.right, env))
        op = node.op
        if isinstance(op, ast.RShift):
            if left is not None and is_page_shift(node.right):
                if left.unit == "addr":
                    return Value(left.space, "frame",
                                 "%s; `>> PAGE_SHIFT` makes it a frame"
                                 % left.origin)
                if left.unit == "frame":
                    self.report(FRAME_BYTE, node,
                                "page-shifting %s again: it is already a "
                                "frame number (%s)"
                                % (left.domain, left.origin))
            return None
        if isinstance(op, ast.LShift):
            if left is not None and is_page_shift(node.right):
                if left.unit == "frame":
                    return Value(left.space, "addr",
                                 "%s; `<< PAGE_SHIFT` makes it a byte "
                                 "address" % left.origin)
                if left.unit == "addr":
                    self.report(FRAME_BYTE, node,
                                "page-shifting %s left: it is already a "
                                "byte address (%s)"
                                % (left.domain, left.origin))
            return None
        if isinstance(op, ast.BitAnd):
            if is_inverted_mask(node.right):
                return left
            if is_inverted_mask(node.left):
                return right
            if is_offset_mask(node.right) or is_offset_mask(node.left):
                masked = left if not is_offset_mask(node.left) else right
                origin = masked.origin if masked is not None else "mask"
                return Value(None, "offset",
                             "%s; `& OFFSET_MASK` leaves an offset" % origin)
            return None
        if isinstance(op, _ADDITIVE_OPS):
            return self._additive(op, node, left, right)
        return None

    def _additive(self, op, node, left, right):
        if left is None or right is None:
            if isinstance(op, (ast.FloorDiv, ast.Mod)):
                return left
            return None
        if spaces_conflict(left, right):
            self.report(CROSS_DOMAIN, node,
                        "cross-domain arithmetic: %s (%s) %s %s (%s)"
                        % (left.domain, left.origin,
                           type(op).__name__.lower(),
                           right.domain, right.origin))
            return None
        if left.unit == "offset":
            return right if right.unit != "offset" else left
        if right.unit == "offset":
            return left
        if units_conflict(left, right):
            self.report(FRAME_BYTE, node,
                        "frame/byte arithmetic: %s (%s) mixed with %s (%s)"
                        % (left.domain, left.origin,
                           right.domain, right.origin))
            return None
        if isinstance(op, ast.Mult):
            return None  # page_index * granule changes the unit
        space = left.space if left.space is not None else right.space
        return Value(space, left.unit, left.origin)

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, node, env):
        argument_values = [self.eval(arg, env) for arg in node.args]
        keyword_values = {kw.arg: self.eval(kw.value, env)
                          for kw in node.keywords if kw.arg is not None}
        for keyword in node.keywords:
            if keyword.arg is None:
                self.eval(keyword.value, env)
        if isinstance(node.func, ast.Attribute):
            self.eval(node.func.value, env)
        physmem_checked = self._check_physmem(node, argument_values,
                                              keyword_values)
        resolved = _resolve_call(node, self.info, self.aliases, self.program)
        if resolved is None:
            return None
        candidates, ambiguous = resolved
        if ambiguous or len(candidates) != 1:
            return None
        target = candidates[0]
        callee = self.program.functions.get(target)
        if callee is None or callee.node is None:
            return None
        signature = self.signatures.get(target)
        if signature is not None:
            self._check_arguments(node, callee, signature, argument_values,
                                  keyword_values, physmem_checked)
        return self._call_result(target, signature)

    def _call_result(self, target, signature):
        declared = signature.return_domains() if signature else None
        if declared is not None:
            values = tuple(
                from_name(name, "`%s(...)` returns declared %s"
                          % (target, name)) if name else None
                for name in declared)
        else:
            summary = self.summaries.get(target)
            if summary is None:
                return None
            values = tuple(
                from_name(name, "`%s(...)` returns inferred %s"
                          % (target, name)) if name else None
                for name in summary)
        if len(values) == 1:
            return values[0]
        return values

    def _bound_arguments(self, node, callee, argument_values, keyword_values):
        """[(param name, value node, value)] for checkable arguments."""
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return []
        parameters = [arg.arg for arg in callee.node.args.args]
        if (callee.cls is not None and parameters
                and parameters[0] in ("self", "cls")):
            parameters = parameters[1:]
        bound = []
        for index, value in enumerate(argument_values):
            if index < len(parameters):
                bound.append((parameters[index], node.args[index], value))
        for keyword in node.keywords:
            if keyword.arg in keyword_values:
                bound.append((keyword.arg, keyword.value,
                              keyword_values[keyword.arg]))
        return bound

    def _check_arguments(self, node, callee, signature, argument_values,
                         keyword_values, physmem_checked):
        domains = signature.param_domains(callee.node)
        if not domains:
            return
        for parameter, value_node, value in self._bound_arguments(
                node, callee, argument_values, keyword_values):
            declared_name = domains.get(parameter)
            if declared_name is None or value is None:
                continue
            if physmem_checked and value_node in physmem_checked:
                continue
            value = self._scalar(value)
            if value is None:
                continue
            declared = from_name(declared_name, "declared")
            if spaces_conflict(declared, value):
                self.report(WRONG_ARGUMENT, value_node,
                            "argument `%s` of `%s` expects %s, got %s — %s"
                            % (parameter, callee.qualname, declared_name,
                               value.domain, value.origin))
            elif units_conflict(declared, value):
                self.report(FRAME_BYTE, value_node,
                            "argument `%s` of `%s` expects %s, got %s "
                            "(frame/byte confusion) — %s"
                            % (parameter, callee.qualname, declared_name,
                               value.domain, value.origin))

    def _check_physmem(self, node, argument_values, keyword_values):
        """guest_mem/host_mem accessor check (REPRO603/REPRO604)."""
        func = node.func
        if (not isinstance(func, ast.Attribute)
                or func.attr not in PHYSMEM_ACCESSORS):
            return ()
        receiver = _receiver_tail(func.value)
        backing = PHYSMEM_SPACES.get(receiver)
        if backing is None:
            return ()
        space, frame_name = backing
        if node.args:
            value_node, value = node.args[0], argument_values[0]
        elif "frame" in keyword_values:
            value_node = next(kw.value for kw in node.keywords
                              if kw.arg == "frame")
            value = keyword_values["frame"]
        else:
            return ()
        value = self._scalar(value)
        if value is None:
            return ()
        if value.space is not None and value.space != space:
            self.report(UNTRANSLATED, value_node,
                        "`%s.%s` indexes %s RAM (%s frames) but got %s "
                        "without passing through a declared translator — %s"
                        % (receiver, func.attr, space, frame_name,
                           value.domain, value.origin))
            return (value_node,)
        if value.unit == "addr":
            self.report(FRAME_BYTE, value_node,
                        "`%s.%s` indexes RAM by frame number, got the "
                        "byte address %s — shift it right by PAGE_SHIFT "
                        "first (%s)"
                        % (receiver, func.attr, value.domain, value.origin))
            return (value_node,)
        return (value_node,)


# -- the whole-tree analysis --------------------------------------------------


def _closure_findings(program, signatures):
    """REPRO605: every declared translator is a real, reachable paper
    edge, and the modules that implement the gPA→hPA step declare it."""
    findings = []
    translators = {}
    for qualname, info in program.functions.items():
        signature = signatures[qualname]
        if signature.translates is not None:
            translators[qualname] = signature.translates
    paper_edges = set(PAPER_EDGES)
    roots = [qualname for qualname, info in program.functions.items()
             if _module_tail(info.module) in _ROOT_MODULE_TAILS
             or "trap_handler" in info.effects]
    reachable = program.reachable_from(roots) if roots else None
    for qualname, (src, dst) in sorted(translators.items()):
        info = program.functions[qualname]
        if (src, dst) not in paper_edges:
            findings.append(DomainFinding(
                CLOSURE, info.path, info.lineno, 0,
                "`%s` declares @translates(%r, %r), which is not a "
                "paper-model edge (gVA→gPA→hPA): allowed pairs are %s"
                % (qualname, src, dst,
                   ", ".join("%s→%s" % edge for edge in PAPER_EDGES))))
        elif reachable is not None and qualname not in reachable:
            findings.append(DomainFinding(
                CLOSURE, info.path, info.lineno, 0,
                "translator `%s` (%s→%s) is not reachable from the "
                "hardware walker or any trap handler — a translation "
                "edge nothing can ever take" % (qualname, src, dst)))
    for module in sorted(program.modules):
        required = _REQUIRED_EDGES.get(_module_tail(module))
        if required is None:
            continue
        declared = any(edge == required
                       for qualname, edge in translators.items()
                       if program.functions[qualname].module == module)
        if not declared:
            source_file = program.files_by_module[module]
            findings.append(DomainFinding(
                CLOSURE, source_file.path, 1, 0,
                "module `%s` implements the %s→%s translation step but "
                "declares no @translates(%r, %r) function"
                % (module, required[0], required[1], required[0],
                   required[1])))
    return findings, translators


_cache_key = None
_cache_value = None

#: Fixpoint bound for inferred return summaries; chains of undeclared
#: helpers deeper than this stay unknown (quiet) rather than wrong.
MAX_SUMMARY_PASSES = 4


def analyze_domains(source_files):
    """The memoized address-domain analysis of one file set."""
    global _cache_key, _cache_value
    key = tuple((f.path, f.content_hash) for f in source_files)
    if key == _cache_key:
        return _cache_value
    program = build_program(source_files)
    signatures = {qualname: read_signature(info.node)
                  for qualname, info in program.functions.items()}
    summaries = {}
    for _ in range(MAX_SUMMARY_PASSES):
        changed = False
        for qualname, info in program.functions.items():
            if signatures[qualname].return_domains() is not None:
                continue  # declared wins; nothing to infer
            interp = _Interpreter(program, info, signatures, summaries,
                                  emit=False).run()
            inferred = interp.return_summary()
            if summaries.get(qualname) != inferred:
                if inferred is None:
                    summaries.pop(qualname, None)
                else:
                    summaries[qualname] = inferred
                changed = True
        if not changed:
            break
    findings = []
    for qualname, info in program.functions.items():
        interp = _Interpreter(program, info, signatures, summaries,
                              emit=True).run()
        findings.extend(interp.findings)
    closure, translators = _closure_findings(program, signatures)
    findings.extend(closure)
    report = DomainReport(findings, translators, summaries)
    _cache_key = key
    _cache_value = report
    return report
