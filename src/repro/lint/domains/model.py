"""The domain lattice and the declared-signature reader.

A lattice value is either *unknown* (``None`` — no information, the
quiet default everywhere annotations don't reach) or a :class:`Value`
with a ``space`` (guest-virtual / guest-physical / host-physical, or
``None`` for the space-generic ``addr``/``frame``/``offset`` domains)
and a ``unit`` (byte ``addr``, ``frame`` number, or intra-page
``offset``). Conflicts are reported at the *operation* that mixes two
known values and the result drops back to unknown — there is no
sticky ⊥ element, so one mix-up yields one finding, not a cascade.

Signatures are read from decorator *syntax* (``@takes``/``@returns``/
``@translates``, see :mod:`repro.common.addrspace`) — the analyzer
never imports the annotated modules.
"""

import ast

#: space of each declarable domain name (None = space-generic).
SPACE = {
    "gva": "guest-virtual", "vpn": "guest-virtual",
    "gpa": "guest-physical", "gfn": "guest-physical",
    "hpa": "host-physical", "hfn": "host-physical",
    "offset": None, "addr": None, "frame": None,
}

#: unit of each declarable domain name.
UNIT = {
    "gva": "addr", "gpa": "addr", "hpa": "addr", "addr": "addr",
    "vpn": "frame", "gfn": "frame", "hfn": "frame", "frame": "frame",
    "offset": "offset",
}

#: (space, unit) -> canonical domain name, for messages.
_NAME = {(SPACE[name], UNIT[name]): name for name in SPACE}

#: Right-shifting an address by one of these moves addr -> frame.
PAGE_SHIFT_CONSTANTS = (12, 21, 30)


class Value:
    """One known lattice point: a space/unit pair plus its provenance."""

    __slots__ = ("space", "unit", "origin")

    def __init__(self, space, unit, origin):
        self.space = space
        self.unit = unit
        self.origin = origin

    @property
    def domain(self):
        """The canonical domain name of this (space, unit) point."""
        return _NAME.get((self.space, self.unit), "?")

    def same_point(self, other):
        return (other is not None and self.space == other.space
                and self.unit == other.unit)

    def __repr__(self):
        return "Value(%s via %s)" % (self.domain, self.origin)


def from_name(name, origin):
    """The lattice value of a declared domain name (None if unknown)."""
    if name not in SPACE:
        return None
    return Value(SPACE[name], UNIT[name], origin)


def spaces_conflict(a, b):
    """Two *concrete* spaces that differ — the REPRO601/602/603 core."""
    return (a is not None and b is not None
            and a.space is not None and b.space is not None
            and a.space != b.space)


def units_conflict(a, b):
    """addr/frame/offset confusion between two known values whose
    spaces are compatible — the REPRO604 core."""
    if a is None or b is None:
        return False
    if a.space is not None and b.space is not None and a.space != b.space:
        return False  # that is a space conflict, not a unit one
    return a.unit != b.unit


def join(a, b):
    """Control-flow join: agreeing points survive, anything else is
    unknown (quiet, never ⊥ — conflicts only fire at operations)."""
    if a is not None and a.same_point(b):
        return a
    return None


# -- declared signatures ------------------------------------------------------


def _tail_name(node):
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Signature:
    """The addrspace declarations on one function definition."""

    __slots__ = ("takes", "returns", "translates")

    def __init__(self, takes, returns, translates):
        self.takes = takes            # {param name: domain name}
        self.returns = returns        # tuple of domain-name-or-None, or None
        self.translates = translates  # (src, dst) or None

    @property
    def declared(self):
        return bool(self.takes) or self.returns or self.translates

    def return_domains(self):
        """The declared return-domain tuple (translators return dst)."""
        if self.returns is not None:
            return self.returns
        if self.translates is not None:
            return (self.translates[1],)
        return None

    def param_domains(self, node):
        """{param name: domain name} including the translator's implied
        source domain on the first data parameter."""
        domains = dict(self.takes)
        if self.translates is not None:
            for arg in node.args.args:
                if arg.arg in ("self", "cls"):
                    continue
                domains.setdefault(arg.arg, self.translates[0])
                break
        return domains


def read_signature(node):
    """Read @takes/@returns/@translates syntax off one function def."""
    takes = {}
    returns = None
    translates = None
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        tail = _tail_name(decorator.func)
        if tail == "takes":
            for keyword in decorator.keywords:
                if (keyword.arg is not None
                        and isinstance(keyword.value, ast.Constant)
                        and isinstance(keyword.value.value, str)):
                    takes[keyword.arg] = keyword.value.value
        elif tail == "returns":
            domains = []
            for arg in decorator.args:
                if isinstance(arg, ast.Constant) and (
                        arg.value is None or isinstance(arg.value, str)):
                    domains.append(arg.value)
            returns = tuple(domains)
        elif tail == "translates":
            if (len(decorator.args) == 2
                    and all(isinstance(a, ast.Constant)
                            and isinstance(a.value, str)
                            for a in decorator.args)):
                translates = (decorator.args[0].value,
                              decorator.args[1].value)
    return Signature(takes, returns, translates)


# -- idiom recognition --------------------------------------------------------


def is_page_shift(node):
    """Does this expression look like a page-shift amount?

    ``12``/``21``/``30``, ``PAGE_SHIFT``, anything whose tail name
    mentions ``shift`` (``page_shift``, ``eff_shift``,
    ``level_shift(level)``, ``self.page_size.shift``).
    """
    if isinstance(node, ast.Constant):
        return node.value in PAGE_SHIFT_CONSTANTS
    if isinstance(node, ast.Call):
        node = node.func
    tail = _tail_name(node)
    return tail is not None and "shift" in tail.lower()


def is_offset_mask(node):
    """Does this expression look like an intra-page / low-bits mask?

    ``OFFSET_MASK``-style names, ``(1 << n) - 1`` / ``span - 1``
    subtractions, and 2**n - 1 integer literals.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        return (isinstance(value, int) and value > 0
                and (value + 1) & value == 0)
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub)
            and isinstance(node.right, ast.Constant)
            and node.right.value == 1):
        return True
    tail = _tail_name(node)
    return tail is not None and "mask" in tail.lower()


def is_inverted_mask(node):
    """``~mask``: keeps the left operand's domain (page_base idiom)."""
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.Invert)
            and is_offset_mask(node.operand))
