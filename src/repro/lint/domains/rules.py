"""The REPRO601–REPRO605 address-domain rules.

All five query the one memoized :func:`analyze_domains` report (the
same share-one-analysis idiom as the flow rules and
:func:`build_program`), so running the full set costs one abstract
interpretation of the tree.
"""

from repro.lint.domains.infer import (
    CLOSURE,
    CROSS_DOMAIN,
    FRAME_BYTE,
    UNTRANSLATED,
    WRONG_ARGUMENT,
    analyze_domains,
)
from repro.lint.engine import Finding, ProjectRule


class _DomainRule(ProjectRule):
    """Base: render this rule's slice of the shared domain report."""

    rule_key = None

    def check_project(self, source_files):
        report = analyze_domains(source_files)
        for finding in report.by_rule(self.rule_key):
            yield Finding(self.rule_id, self.name, finding.path,
                          finding.lineno, finding.col, finding.message)


class CrossDomainArithmeticRule(_DomainRule):
    """gVA/gPA/hPA values never meet in arithmetic or comparisons."""

    rule_id = "REPRO601"
    name = "cross-domain-arith"
    description = ("arithmetic/comparison mixes two address spaces "
                   "(e.g. gpa == hpa)")
    rule_key = CROSS_DOMAIN


class WrongDomainArgumentRule(_DomainRule):
    """Annotated call sites receive the declared address domain."""

    rule_id = "REPRO602"
    name = "wrong-domain-arg"
    description = ("an argument's inferred address domain contradicts "
                   "the callee's @takes/@translates declaration")
    rule_key = WRONG_ARGUMENT


class UntranslatedGuestAddressRule(_DomainRule):
    """Guest addresses reach RAM only through a declared translator."""

    rule_id = "REPRO603"
    name = "untranslated-guest-addr"
    description = ("an untranslated guest address reaches a physical-"
                   "memory accessor (guest_mem/host_mem are typed)")
    rule_key = UNTRANSLATED


class FrameByteConfusionRule(_DomainRule):
    """Frame numbers and byte addresses never substitute for each other."""

    rule_id = "REPRO604"
    name = "frame-byte-confusion"
    description = ("frame-number vs byte-address mix-up: double page-"
                   "shift, or indexing RAM with a byte address")
    rule_key = FRAME_BYTE


class TranslatorClosureRule(_DomainRule):
    """@translates declarations close over the paper's pipeline."""

    rule_id = "REPRO605"
    name = "translator-closure"
    description = ("every @translates pair is a real gVA→gPA→hPA edge, "
                   "reachable from the walker, and the implementing "
                   "modules declare theirs")
    rule_key = CLOSURE


#: The address-domain rule set, appended to ``repro check`` / ``--deep``.
DOMAIN_RULES = (
    CrossDomainArithmeticRule(),
    WrongDomainArgumentRule(),
    UntranslatedGuestAddressRule(),
    FrameByteConfusionRule(),
    TranslatorClosureRule(),
)
