"""Lint entry point shared by the CLI and the test suite.

Stream discipline (PR 3): findings — text, JSON, or SARIF — go to
``out`` (stdout), diagnostics such as usage errors go to ``err``
(stderr), so ``repro lint --format json | jq`` always parses.

PR 6 additions:

* every file is read from disk exactly once per run — the cache key is
  computed from the same in-memory sources the engine parses
  (:func:`repro.lint.engine.read_sources`),
* ``--baseline`` ratcheting: known findings listed in a committed JSON
  baseline are tolerated, only *new* findings fail the run,
* ``--format sarif`` renders SARIF 2.1.0 for code-scanning upload.
"""

import hashlib
import json
import os
import sys

#: Baseline file schema version (bump on incompatible change).
BASELINE_SCHEMA = 1


def default_lint_paths():
    """With no arguments, lint the installed ``repro`` package itself."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def default_rules(deep=False):
    """The configured rule set: per-file, plus the whole-program flow,
    address-domain, and time-domain rules for deep."""
    from repro.lint.domains.rules import DOMAIN_RULES
    from repro.lint.flow.rules import FLOW_RULES
    from repro.lint.rules import DEFAULT_RULES
    from repro.lint.time.rules import TIME_RULES

    if deep:
        return DEFAULT_RULES + FLOW_RULES + DOMAIN_RULES + TIME_RULES
    return DEFAULT_RULES


def _hash_sources(sources):
    """(path, content SHA-256) for already-read ``(path, source)`` pairs.

    Hashing the in-memory text keeps the cache key byte-equivalent to
    the old read-the-file-again implementation without the second read.
    """
    return [(path, hashlib.sha256(source.encode("utf-8")).hexdigest())
            for path, source in sources]


# -- baseline ratcheting ------------------------------------------------------


def _normalize_path(path):
    """A location key stable across checkouts: the path from the last
    ``repro/`` component down (fallback: the basename)."""
    posix = path.replace(os.sep, "/")
    marker = posix.rfind("/repro/")
    if marker != -1:
        return posix[marker + 1:]
    return posix.rsplit("/", 1)[-1]


def _finding_key(finding):
    return (finding.rule_id, _normalize_path(finding.path), finding.message)


def load_baseline(path):
    """The set of tolerated finding keys recorded in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError("unsupported baseline schema: %r"
                         % (payload.get("schema"),))
    return {(entry["rule_id"], entry["path"], entry["message"])
            for entry in payload.get("findings", ())}


def save_baseline(path, findings):
    """Record ``findings`` as the new tolerated set."""
    entries = sorted({_finding_key(f) for f in findings})
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": [
            {"rule_id": rule_id, "path": norm_path, "message": message}
            for rule_id, norm_path, message in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- SARIF rendering ----------------------------------------------------------

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def sarif_payload(findings, rules):
    """A minimal SARIF 2.1.0 log for ``findings``."""
    driver_rules = []
    seen = set()
    for rule in rules:
        if rule.rule_id in seen:
            continue
        seen.add(rule.rule_id)
        driver_rules.append({
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        })
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; Finding.col is the
                        # AST's 0-based col_offset.
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {"name": "repro-lint",
                                "rules": driver_rules}},
            "results": results,
        }],
    }


def run_lint(paths=None, fmt="text", out=None, err=None, rules=None,
             deep=False, cache_dir=None, audit_suppressions=False,
             baseline=None, write_baseline=False):
    """Lint ``paths`` and render the findings.

    Returns the process exit code: 0 for a clean tree, 1 when findings
    exist (or, under ``audit_suppressions``, when unused suppressions
    exist), 2 on usage errors (a path that does not exist, a missing or
    malformed baseline). With ``cache_dir`` set, an unchanged (file set,
    rule set) pair is served from the content-hash cache without parsing
    anything. With ``baseline`` set, findings recorded in the baseline
    file are tolerated and only new ones fail the run; adding
    ``write_baseline`` instead records the current findings and exits 0.
    """
    from repro.lint.engine import LintEngine, ParseErrorRule, read_sources

    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    paths = list(paths) if paths else default_lint_paths()
    if rules is None:
        rules = default_rules(deep)
    if write_baseline and baseline is None:
        print("lint: --write-baseline requires --baseline", file=err)
        return 2
    cache = None
    cache_key = None
    result = None
    try:
        sources = None
        if cache_dir is not None:
            from repro.lint.cache import LintCache

            cache = LintCache(cache_dir)
            sources = read_sources(paths)
            cache_key = cache.key_for(_hash_sources(sources),
                                      [rule.rule_id for rule in rules])
            result = cache.load(cache_key)
        if result is None:
            if sources is None:
                sources = read_sources(paths)
            result = LintEngine(rules).run_detailed(paths, sources=sources)
            if cache is not None:
                cache.store(cache_key, result)
    except FileNotFoundError as error:
        print("lint: %s" % (error,), file=err)
        return 2
    findings = result.findings
    baselined = 0
    if baseline is not None:
        if write_baseline:
            save_baseline(baseline, findings)
            print("baseline: recorded %d finding%s to %s" % (
                len(findings), "" if len(findings) == 1 else "s", baseline),
                file=out)
            return 0
        try:
            known = load_baseline(baseline)
        except (OSError, ValueError, KeyError) as error:
            print("lint: cannot read baseline %s: %s" % (baseline, error),
                  file=err)
            return 2
        new = [f for f in findings if _finding_key(f) not in known]
        baselined = len(findings) - len(new)
        findings = new
    unused = result.unused_suppressions() if audit_suppressions else []
    if fmt == "json":
        payload = {
            "checked_files": result.checked,
            "finding_count": len(findings),
            "findings": [f.as_dict() for f in findings],
        }
        if baseline is not None:
            payload["baselined_count"] = baselined
        if audit_suppressions:
            payload["suppressions"] = [s.as_dict()
                                       for s in result.suppressions]
            payload["unused_suppression_count"] = len(unused)
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    elif fmt == "sarif":
        catalogue = (ParseErrorRule(),) + tuple(rules)
        print(json.dumps(sarif_payload(findings, catalogue),
                         indent=2, sort_keys=True), file=out)
    else:
        for finding in findings:
            print(finding.format(), file=out)
        if audit_suppressions:
            for suppression in result.suppressions:
                print(suppression.format(), file=out)
        summary = "clean" if not findings else "%d finding%s" % (
            len(findings), "" if len(findings) == 1 else "s")
        if baselined:
            summary += " (%d baselined)" % baselined
        print("checked %d files: %s" % (result.checked, summary), file=out)
        if unused:
            print("%d unused suppression%s" % (
                len(unused), "" if len(unused) == 1 else "s"), file=out)
    return 1 if findings or unused else 0


def list_rules(out=None, deep=True):
    """Print the rule catalogue (id, name, one-line description)."""
    from repro.lint.engine import ParseErrorRule

    out = out if out is not None else sys.stdout
    for rule in (ParseErrorRule(),) + tuple(default_rules(deep)):
        print("%s  %-18s %s" % (rule.rule_id, rule.name, rule.description),
              file=out)
    return 0
