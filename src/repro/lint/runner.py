"""Lint entry point shared by the CLI and the test suite."""

import json
import os
import sys


def default_lint_paths():
    """With no arguments, lint the installed ``repro`` package itself."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def run_lint(paths=None, fmt="text", out=None, rules=None):
    """Lint ``paths`` and render the findings.

    Returns the process exit code: 0 for a clean tree, 1 when findings
    exist, 2 on usage errors (a path that does not exist).
    """
    from repro.lint.engine import LintEngine
    from repro.lint.rules import DEFAULT_RULES

    out = out if out is not None else sys.stdout
    paths = list(paths) if paths else default_lint_paths()
    engine = LintEngine(DEFAULT_RULES if rules is None else rules)
    try:
        findings, checked = engine.run(paths)
    except FileNotFoundError as error:
        print("lint: %s" % (error,), file=out)
        return 2
    if fmt == "json":
        payload = {
            "checked_files": checked,
            "finding_count": len(findings),
            "findings": [f.as_dict() for f in findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for finding in findings:
            print(finding.format(), file=out)
        print("checked %d files: %s" % (
            checked,
            "clean" if not findings else "%d finding%s" % (
                len(findings), "" if len(findings) == 1 else "s")), file=out)
    return 1 if findings else 0


def list_rules(out=None):
    """Print the rule catalogue (id, name, one-line description)."""
    from repro.lint.engine import ParseErrorRule
    from repro.lint.rules import DEFAULT_RULES

    out = out if out is not None else sys.stdout
    for rule in (ParseErrorRule(),) + tuple(DEFAULT_RULES):
        print("%s  %-18s %s" % (rule.rule_id, rule.name, rule.description),
              file=out)
    return 0
