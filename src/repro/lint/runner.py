"""Lint entry point shared by the CLI and the test suite.

Stream discipline (PR 3): findings — text or JSON — go to ``out``
(stdout), diagnostics such as usage errors go to ``err`` (stderr), so
``repro lint --format json | jq`` always parses.
"""

import hashlib
import json
import os
import sys


def default_lint_paths():
    """With no arguments, lint the installed ``repro`` package itself."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def default_rules(deep=False):
    """The configured rule set: per-file, plus the flow rules for deep."""
    from repro.lint.flow.rules import FLOW_RULES
    from repro.lint.rules import DEFAULT_RULES

    return DEFAULT_RULES + FLOW_RULES if deep else DEFAULT_RULES


def _file_hashes(paths):
    """(path, content SHA-256) for every file the engine would lint."""
    from repro.lint.engine import _iter_python_files

    pairs = []
    for path in _iter_python_files(paths):
        with open(path, "rb") as handle:
            content = handle.read()
        pairs.append((path, hashlib.sha256(content).hexdigest()))
    return pairs


def run_lint(paths=None, fmt="text", out=None, err=None, rules=None,
             deep=False, cache_dir=None, audit_suppressions=False):
    """Lint ``paths`` and render the findings.

    Returns the process exit code: 0 for a clean tree, 1 when findings
    exist (or, under ``audit_suppressions``, when unused suppressions
    exist), 2 on usage errors (a path that does not exist). With
    ``cache_dir`` set, an unchanged (file set, rule set) pair is served
    from the content-hash cache without parsing anything.
    """
    from repro.lint.engine import LintEngine

    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    paths = list(paths) if paths else default_lint_paths()
    if rules is None:
        rules = default_rules(deep)
    cache = None
    cache_key = None
    result = None
    try:
        if cache_dir is not None:
            from repro.lint.cache import LintCache

            cache = LintCache(cache_dir)
            cache_key = cache.key_for(_file_hashes(paths),
                                      [rule.rule_id for rule in rules])
            result = cache.load(cache_key)
        if result is None:
            result = LintEngine(rules).run_detailed(paths)
            if cache is not None:
                cache.store(cache_key, result)
    except FileNotFoundError as error:
        print("lint: %s" % (error,), file=err)
        return 2
    findings = result.findings
    unused = result.unused_suppressions() if audit_suppressions else []
    if fmt == "json":
        payload = {
            "checked_files": result.checked,
            "finding_count": len(findings),
            "findings": [f.as_dict() for f in findings],
        }
        if audit_suppressions:
            payload["suppressions"] = [s.as_dict()
                                       for s in result.suppressions]
            payload["unused_suppression_count"] = len(unused)
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for finding in findings:
            print(finding.format(), file=out)
        if audit_suppressions:
            for suppression in result.suppressions:
                print(suppression.format(), file=out)
        print("checked %d files: %s" % (
            result.checked,
            "clean" if not findings else "%d finding%s" % (
                len(findings), "" if len(findings) == 1 else "s")), file=out)
        if unused:
            print("%d unused suppression%s" % (
                len(unused), "" if len(unused) == 1 else "s"), file=out)
    return 1 if findings or unused else 0


def list_rules(out=None, deep=True):
    """Print the rule catalogue (id, name, one-line description)."""
    from repro.lint.engine import ParseErrorRule

    out = out if out is not None else sys.stdout
    for rule in (ParseErrorRule(),) + tuple(default_rules(deep)):
        print("%s  %-18s %s" % (rule.rule_id, rule.name, rule.description),
              file=out)
    return 0
