"""Virtual memory areas: the guest OS's view of an address-space region."""

from repro.common.errors import SimulationError


class VMA:
    """One contiguous mapping: [start, end), with region-wide attributes.

    ``cow`` marks regions whose pages may be copy-on-write shared (after a
    fork or a content-based-sharing pass); the kernel's write-fault path
    resolves them (Section V, content-based page sharing).
    """

    __slots__ = ("start", "end", "writable", "kind", "cow")

    def __init__(self, start, end, writable=True, kind="anon", cow=False):
        if end <= start:
            raise SimulationError("empty VMA [%#x, %#x)" % (start, end))
        self.start = start
        self.end = end
        self.writable = writable
        self.kind = kind
        self.cow = cow

    @property
    def size(self):
        return self.end - self.start

    def contains(self, va):
        return self.start <= va < self.end

    def overlaps(self, start, end):
        return start < self.end and self.start < end

    def __repr__(self):
        return "VMA([%#x, %#x), %s%s%s)" % (
            self.start,
            self.end,
            self.kind,
            " rw" if self.writable else " ro",
            " cow" if self.cow else "",
        )


class AddressSpace:
    """An ordered collection of non-overlapping VMAs."""

    def __init__(self):
        self._vmas = []

    def __iter__(self):
        return iter(self._vmas)

    def __len__(self):
        return len(self._vmas)

    def find(self, va):
        """The VMA containing ``va`` or None."""
        for vma in self._vmas:
            if vma.contains(va):
                return vma
        return None

    def add(self, vma):
        for existing in self._vmas:
            if existing.overlaps(vma.start, vma.end):
                raise SimulationError("VMA overlap: %r vs %r" % (vma, existing))
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        return vma

    def remove_range(self, start, end):
        """Drop or trim VMAs overlapping [start, end); returns removed VMAs.

        Splitting is supported so a partial munmap behaves like Linux.
        """
        removed = []
        kept = []
        for vma in self._vmas:
            if not vma.overlaps(start, end):
                kept.append(vma)
                continue
            removed.append(vma)
            if vma.start < start:
                kept.append(VMA(vma.start, start, vma.writable, vma.kind, vma.cow))
            if end < vma.end:
                kept.append(VMA(end, vma.end, vma.writable, vma.kind, vma.cow))
        self._vmas = sorted(kept, key=lambda v: v.start)
        return removed

    def clone(self, mark_cow=True):
        """A copy of this address space (used by fork)."""
        copied = AddressSpace()
        for vma in self._vmas:
            copied._vmas.append(
                VMA(vma.start, vma.end, vma.writable, vma.kind,
                    cow=vma.cow or (mark_cow and vma.writable))
            )
        return copied
