"""A guest process: its address space and guest page table."""

from repro.guest.vma import AddressSpace
from repro.mem.pagetable import PageTable


class GuestSegfault(Exception):
    """An access outside every VMA — a workload/simulator bug surface."""

    def __init__(self, pid, va):
        self.pid = pid
        self.va = va
        super().__init__("segfault: pid %d touched unmapped va %#x" % (pid, va))


# Guest user-space layout (scaled; the exact values are arbitrary but the
# mmap region must be disjoint from the code/stack anchors).
CODE_BASE = 0x0000_0000_0040_0000
HEAP_BASE = 0x0000_0001_0000_0000
MMAP_BASE = 0x0000_0010_0000_0000
STACK_TOP = 0x0000_7FFF_FFF0_0000


class GuestProcess:
    """Per-process guest state the kernel manages.

    ``asid`` tags TLB entries; we reuse the pid. ``page_table`` is the
    guest page table (gVA=>gPA) the guest OS owns — the VMM mediates
    writes to it through the table's observer when shadow-covered.
    """

    def __init__(self, pid, guest_mem, observer=None):
        self.pid = pid
        self.asid = pid
        self.page_table = PageTable(guest_mem, "gPT[%d]" % pid, observer=observer)
        self.vmas = AddressSpace()
        self.mmap_cursor = MMAP_BASE
        self.alive = True
        # Statistics the kernel maintains (the guest's /proc view).
        self.minor_faults = 0
        self.cow_faults = 0
        self.resident_pages = 0

    @property
    def gptr(self):
        """The guest CR3: root gfn of the guest page table."""
        return self.page_table.root_frame

    def find_vma(self, va):
        vma = self.vmas.find(va)
        if vma is None:
            raise GuestSegfault(self.pid, va)
        return vma

    def __repr__(self):
        return "GuestProcess(pid=%d, vmas=%d, rss=%d)" % (
            self.pid,
            len(self.vmas),
            self.resident_pages,
        )
