"""The guest operating system.

A deliberately Linux-shaped kernel: demand paging, mmap/munmap, fork with
copy-on-write, content-based page sharing, and a clock-style reclaimer.
Its job in this reproduction is to generate *page-table update traffic*
with the same structure real guests produce — leaf-heavy, bursty, and
concentrated in the dynamic parts of the address space — because that
traffic is what the paper's policies feed on.

The kernel never talks to the VMM directly. Guest page-table writes are
observed by the VMM through the page table's observer; TLB maintenance
and CR3 writes go through the :class:`GuestPlatform` callbacks, which the
surrounding system routes (and which trap under shadow paging).
"""

from repro.common.errors import SimulationError
from repro.common.params import FOUR_KB, align_up
from repro.guest.process import CODE_BASE, GuestProcess
from repro.guest.vma import VMA


class GuestPlatform:
    """Hooks from the guest kernel into the hardware/VMM underneath.

    The default implementation is a bare-metal machine: nothing traps.
    """

    def observer_for(self, pid):
        """Page-table observer to attach to a new process's gPT."""
        return None

    def process_created(self, proc):
        """A process (and its guest page table) now exists."""

    def process_destroyed(self, proc):
        """The process's page table is about to be torn down."""

    def invlpg(self, proc, va):
        """The guest executed INVLPG for ``va``."""

    def flush_tlb(self, proc):
        """The guest executed a full TLB flush."""

    def context_switch(self, old, new):
        """The guest wrote CR3 to switch from ``old`` to ``new``."""


class GuestKernel:
    """The guest OS: owns guest-physical memory and all guest processes."""

    CODE_PAGES = 16

    def __init__(self, guest_mem, platform=None, page_size=FOUR_KB):
        self.guest_mem = guest_mem
        self.platform = platform if platform is not None else GuestPlatform()
        self.page_size = page_size
        self.processes = {}
        self.current = None
        self._next_pid = 1
        self._clock_hands = {}
        self._free_regions = {}

    # -- helpers ------------------------------------------------------------

    @property
    def _granule(self):
        return self.page_size.bytes

    @property
    def _frames_per_page(self):
        return 1 << (self.page_size.shift - 12)

    def _page_range(self, va, size):
        start = va & ~(self._granule - 1)
        end = align_up(va + size, self._granule)
        return range(start, end, self._granule)

    def _alloc_page_frames(self, tag=None):
        """Guest frames backing one page at the kernel's granule."""
        if self._frames_per_page == 1:
            return self.guest_mem.alloc_data_page(tag)
        base = self.guest_mem.alloc_contiguous(self._frames_per_page)
        from repro.mem.physmem import DataPage

        self.guest_mem.install(base, DataPage(tag))
        return base

    def _free_page_frames(self, base):
        for frame in range(base, base + self._frames_per_page):
            self.guest_mem.free_frame(frame)

    def _release_frame(self, base):
        """Drop one reference to a (possibly shared) data page."""
        page = self.guest_mem.read(base)
        if page is not None and page.shared > 1:
            page.shared -= 1
            return
        self._free_page_frames(base)

    # -- process lifecycle -----------------------------------------------------

    def create_process(self, code_pages=None):
        """Create a process with a small populated code region."""
        pid = self._next_pid
        self._next_pid += 1
        observer = self.platform.observer_for(pid)
        proc = GuestProcess(pid, self.guest_mem, observer=observer)
        self.processes[pid] = proc
        self.platform.process_created(proc)
        pages = self.CODE_PAGES if code_pages is None else code_pages
        if pages:
            size = pages * self._granule
            proc.vmas.add(VMA(CODE_BASE, CODE_BASE + size, writable=False, kind="code"))
            for va in self._page_range(CODE_BASE, size):
                self._populate(proc, va, writable=False, tag="code")
        if self.current is None:
            self.current = proc
        return proc

    def destroy_process(self, proc):
        """Tear down a process: free its pages and its page table."""
        if not proc.alive:
            raise SimulationError("double destroy of pid %d" % proc.pid)
        proc.alive = False
        for va, pte, _level in list(proc.page_table.iter_leaves()):
            self._release_frame(pte.frame)
        self.platform.process_destroyed(proc)
        proc.page_table.destroy()
        self.platform.flush_tlb(proc)
        del self.processes[proc.pid]
        self._clock_hands.pop(proc.pid, None)
        self._free_regions.pop(proc.pid, None)
        if self.current is proc:
            self.current = next(iter(self.processes.values()), None)

    def context_switch(self, pid):
        """Write CR3: the VMM traps this under shadow-style modes."""
        proc = self.processes[pid]
        old, self.current = self.current, proc
        self.platform.context_switch(old, proc)
        return proc

    # -- memory mapping ----------------------------------------------------------

    def mmap(self, proc, size, writable=True, kind="anon", populate=False):
        """Reserve a region; optionally populate it eagerly.

        Freed regions of the same size are reused first (as real
        allocators do), keeping page-table structure stable across
        map/unmap churn.
        """
        if size <= 0:
            raise SimulationError("mmap of non-positive size")
        size = align_up(size, self._granule)
        free_list = self._free_regions.setdefault(proc.pid, {}).get(size)
        if free_list:
            va = free_list.pop()
        else:
            va = proc.mmap_cursor
            proc.mmap_cursor += size + self._granule  # guard gap
        proc.vmas.add(VMA(va, va + size, writable=writable, kind=kind))
        if populate:
            for page_va in self._page_range(va, size):
                self._populate(proc, page_va, writable=writable)
        return va

    def munmap(self, proc, va, size):
        """Unmap a region: leaf PT writes + INVLPGs, frames freed."""
        size = align_up(size, self._granule)
        removed = proc.vmas.remove_range(va, va + size)
        if not removed:
            raise SimulationError("munmap of unmapped region %#x" % va)
        if len(removed) == 1 and removed[0].start == va and removed[0].size == size:
            self._free_regions.setdefault(proc.pid, {}).setdefault(size, []).append(va)
        for page_va in self._page_range(va, size):
            old = proc.page_table.unmap(page_va, self.page_size)
            if old is not None and old.present:
                self._release_frame(old.frame)
                proc.resident_pages -= 1
                self.platform.invlpg(proc, page_va)

    def _populate(self, proc, va, writable, tag=None):
        base = self._alloc_page_frames(tag)
        proc.page_table.map(va, base, self.page_size, writable=writable)
        proc.resident_pages += 1
        return base

    def mprotect(self, proc, va, size, writable):
        """Change protection on every VMA overlapping ``[va, va+size)``.

        Downgrades (rw -> ro) clear the writable bit on present leaves
        and invalidate them, like a real kernel's change_protection().
        Upgrades are lazy: the VMA becomes writable but read-only leaves
        stay; the next write faults and the 'prot'/'cow' paths fix it,
        which keeps COW sharing intact.
        """
        size = align_up(size, self._granule)
        end = va + size
        touched = 0
        for vma in proc.vmas:
            if vma.start >= end or vma.end <= va:
                continue
            touched += 1
            vma.writable = writable
            if writable:
                continue
            lo = max(vma.start, va)
            hi = min(vma.end, end)
            for page_va in self._page_range(lo, hi - lo):
                _n, _i, pte = proc.page_table.leaf_entry(page_va, self.page_size)
                if pte is not None and pte.present and pte.writable:
                    proc.page_table.set_flags(page_va, self.page_size,
                                              writable=False)
                    self.platform.invlpg(proc, page_va)
        if not touched:
            raise SimulationError("mprotect of unmapped range %#x" % va)
        return touched

    # -- fault handling --------------------------------------------------------------

    def handle_page_fault(self, proc, va, is_write):
        """Resolve a guest page fault; the access retries afterwards.

        Returns a string classifying the fault ('minor', 'cow', 'prot')
        for accounting.
        """
        vma = proc.find_vma(va)
        if is_write and not vma.writable:
            raise GuestProtectionError(proc.pid, va)
        page_va = va & ~(self._granule - 1)
        _node, _index, pte = proc.page_table.leaf_entry(page_va, self.page_size)
        if pte is not None and pte.present:
            if is_write and not pte.writable:
                if vma.cow:
                    self._break_cow(proc, page_va, pte)
                    proc.cow_faults += 1
                    return "cow"
                # Writable VMA, read-only PTE without COW: re-enable.
                proc.page_table.set_flags(page_va, self.page_size, writable=True)
                self.platform.invlpg(proc, page_va)
                return "prot"
            # Spurious fault (e.g., raced with another resolution): done.
            return "spurious"
        self._populate(proc, page_va, writable=vma.writable and not vma.cow)
        proc.minor_faults += 1
        return "minor"

    def _break_cow(self, proc, page_va, pte):
        """Copy-on-write resolution: private copy or write-enable."""
        page = self.guest_mem.read(pte.frame)
        if page is not None and page.shared > 1:
            page.shared -= 1
            new_base = self._alloc_page_frames(tag=page.tag)
            proc.page_table.map(page_va, new_base, self.page_size, writable=True)
        else:
            proc.page_table.set_flags(page_va, self.page_size, writable=True)
        self.platform.invlpg(proc, page_va)

    # -- fork & sharing -----------------------------------------------------------------

    def fork(self, parent):
        """Fork: clone VMAs, share pages copy-on-write.

        Write-protecting every parent page is the page-table write storm
        that makes fork expensive under shadow paging.
        """
        pid = self._next_pid
        self._next_pid += 1
        observer = self.platform.observer_for(pid)
        child = GuestProcess(pid, self.guest_mem, observer=observer)
        child.vmas = parent.vmas.clone(mark_cow=True)
        child.mmap_cursor = parent.mmap_cursor
        self.processes[pid] = child
        self.platform.process_created(child)
        for vma in parent.vmas:
            if vma.writable:
                vma.cow = True
        for va, pte, _level in list(parent.page_table.iter_leaves()):
            if pte.writable:
                parent.page_table.set_flags(va, self.page_size, writable=False)
                self.platform.invlpg(parent, va)
            page = self.guest_mem.read(pte.frame)
            if page is not None:
                page.shared += 1
            child.page_table.map(va, pte.frame, self.page_size, writable=False)
            child.resident_pages += 1
        return child

    def dedup_region(self, proc, va, size, group=2):
        """Content-based page sharing inside a region (Section V).

        Models a KSM-style scanner: every ``group`` consecutive resident
        pages are found identical, collapsed onto one frame, and mapped
        read-only COW. Subsequent writes break the sharing.
        """
        size = align_up(size, self._granule)
        vma = proc.find_vma(va)
        vma.cow = True
        resident = []
        for page_va in self._page_range(va, size):
            _n, _i, pte = proc.page_table.leaf_entry(page_va, self.page_size)
            if pte is not None and pte.present:
                resident.append((page_va, pte))
        shared = 0
        for i in range(0, len(resident) - group + 1, group):
            keeper_va, keeper_pte = resident[i]
            keeper_page = self.guest_mem.read(keeper_pte.frame)
            if keeper_page is None:
                continue
            proc.page_table.set_flags(keeper_va, self.page_size, writable=False)
            self.platform.invlpg(proc, keeper_va)
            for dup_va, dup_pte in resident[i + 1:i + group]:
                if dup_pte.frame == keeper_pte.frame:
                    continue
                self._release_frame(dup_pte.frame)
                keeper_page.shared += 1
                proc.page_table.map(dup_va, keeper_pte.frame, self.page_size,
                                    writable=False)
                self.platform.invlpg(proc, dup_va)
                shared += 1
        return shared

    # -- memory pressure -------------------------------------------------------------------

    def reclaim(self, proc, target_pages, scan_limit=None, precise_aging=False):
        """Clock-algorithm page reclaim (Section V, memory pressure).

        Clears accessed bits on the first encounter (a PT write) and
        evicts pages found still-unreferenced on the second. Like a real
        kernel's shrinker, each call scans a bounded batch
        (``scan_limit``, default 8x the target) rather than sweeping the
        whole resident set at once.

        With ``precise_aging`` each accessed-bit clear is followed by an
        INVLPG, so the next touch of that page re-walks and re-sets the
        bit regardless of translation mode. The default (no INVLPG)
        matches Linux, which tolerates stale-TLB aging; precise aging is
        what the differential fuzzer needs to keep accessed bits
        bit-identical across native/nested/shadow machines.
        """
        leaves = [(va, pte) for va, pte, _ in proc.page_table.iter_leaves()]
        if not leaves:
            return 0
        hand = self._clock_hands.get(proc.pid, 0) % len(leaves)
        evicted = 0
        examined = 0
        limit = min(2 * len(leaves),
                    scan_limit if scan_limit is not None else 8 * target_pages)
        while evicted < target_pages and examined < limit:
            va, pte = leaves[hand]
            hand = (hand + 1) % len(leaves)
            examined += 1
            # Re-read the live entry: the snapshot goes stale as we
            # evict, and a wrapped clock hand must not see (and
            # double-free!) pages this very loop already unmapped.
            _node, _index, live = proc.page_table.leaf_entry(va, self.page_size)
            if live is not pte or not pte.present:
                continue
            if pte.accessed:
                proc.page_table.set_flags(va, self.page_size, accessed=False)
                if precise_aging:
                    self.platform.invlpg(proc, va)
            else:
                proc.page_table.unmap(va, self.page_size)
                self._release_frame(pte.frame)
                proc.resident_pages -= 1
                self.platform.invlpg(proc, va)
                evicted += 1
        self._clock_hands[proc.pid] = hand
        return evicted


class GuestProtectionError(Exception):
    """A write to a read-only VMA: the guest would deliver SIGSEGV."""

    def __init__(self, pid, va):
        self.pid = pid
        self.va = va
        super().__init__("write protection violation: pid %d at %#x" % (pid, va))
