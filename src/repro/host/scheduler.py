"""The vCPU scheduler: one physical core, N guest vCPUs.

Round-robin with weighted quanta: VMs run in ``vm_id`` order, each for
``quantum_cycles * weight`` simulated cycles before preemption, until
every program finishes. All decisions derive from the shared clock and
the fixed VM order — no wall time, no unseeded randomness — so a
consolidated run replays bit-identically (REPRO403 keeps it honest).

Cross-VM world switches are the *host's* cost, distinct from the guest
context-switch VMtraps inside a VM: the outgoing VMCS is saved, the
incoming one loaded, and (without VPID-style tagged TLBs) the incoming
VM's cached translations flushed. The cost is charged on the shared
clock between quanta — never inside a guest's step — so each guest's
operation stream is untouched by scheduling.
"""

from repro.common.timedomain import advances, charges, cycles
from repro.obs.tracer import NULL_TRACER


class VCpuScheduler:
    """Interleaves VM programs on the shared clock until all finish."""

    def __init__(self, host_config, clock, tracer=NULL_TRACER,
                 metrics=None):
        self.config = host_config
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        self.current = None
        self.world_switches = 0
        self.world_switch_cycles = 0

    @cycles("duration")
    def quantum_for(self, vm):
        """This VM's time slice, in cycles (weighted round-robin)."""
        return max(1, int(self.config.quantum_cycles * vm.weight))

    @advances("host_wall")
    @charges("world_switch_cycles")
    def world_switch(self, new_vm):
        """Deschedule the current VM and put ``new_vm`` on the core."""
        old_vm = self.current
        if old_vm is new_vm:
            return
        if old_vm is not None and old_vm.system.vmm is not None:
            old_vm.system.vmm.vm_preempt()
        cycles = self.config.world_switch_cycles if old_vm is not None else 0
        if cycles:
            self.clock.advance(cycles)
            self.world_switches += 1
            self.world_switch_cycles += cycles
            new_vm.world_switches += 1
            new_vm.world_switch_cycles += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.vm_switch(self.clock.now - cycles,
                             old_vm.vm_id if old_vm is not None else None,
                             new_vm.vm_id, cycles)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.inc("host.vm%d.world_switches" % new_vm.vm_id)
        flush = not self.config.vpid and old_vm is not None
        if new_vm.system.vmm is not None:
            new_vm.system.vmm.vm_resume(flush_tlb=flush)
        elif flush:
            new_vm.system.mmu.flush_all()
        self.current = new_vm

    def run_quantum(self, vm):
        """Run ``vm`` for one weighted quantum (or to completion)."""
        self.world_switch(vm)
        slice_end = self.clock.now + self.quantum_for(vm)
        while self.clock.now < slice_end:
            if not vm.step():
                break

    def run(self, vms):
        """Drive every runnable VM to completion, round-robin."""
        ordered = sorted(vms, key=lambda vm: vm.vm_id)
        while True:
            runnable = [vm for vm in ordered if vm.runnable]
            if not runnable:
                break
            for vm in runnable:
                if vm.runnable:
                    self.run_quantum(vm)
        if self.current is not None and self.current.system.vmm is not None:
            self.current.system.vmm.vm_preempt()
        self.current = None
