"""The Host: N guest VMs over shared, overcommitted RAM.

Assembly mirrors :class:`repro.core.machine.System` one level up: where
``System`` wires one guest's hardware + kernel (+ VMM), ``Host`` wires
one *machine's* worth of guests — a shared clock, a global frame ledger
partitioned into per-VM reservations, N fully independent single-VM
systems built on those reservations, the vCPU scheduler, and the
balloon driver.

Isolation invariant (what the fuzz oracle asserts): each VM's system is
constructed exactly as a solo machine with ``host_mem_frames`` equal to
its reservation would be — same allocator geometry, same VM-local frame
numbers — so consolidation changes *when* a guest runs and what its
traps cost, never what its translations resolve to.

Time authority: the ``Host`` owns the one wall-time :class:`Clock` and
hands each VM a :class:`VirtualClock` view of it. ``repro.lint.time``
(REPRO702) pins that arrangement — only ``Host`` and
``VCpuScheduler`` may advance the host clock directly; everything
VM-side bills its own view and reaches host wall time solely through
the pass-through inside ``repro.common.clock``.
"""

from dataclasses import replace

from repro.common.clock import Clock, VirtualClock
from repro.common.config import MODE_NATIVE, HostConfig
from repro.common.errors import SimulationError
from repro.core.machine import System
from repro.host.balloon import BalloonDriver
from repro.host.memory import HostMemoryManager
from repro.host.scheduler import VCpuScheduler
from repro.host.vm import VirtualMachine
from repro.obs.tracer import NULL_TRACER


class Host:
    """One consolidated physical machine."""

    def __init__(self, host_config=None, machine_config=None, configs=None,
                 tracer=None, metrics=None):
        """Assemble the host.

        ``machine_config`` applies one :class:`MachineConfig` to every
        VM (the homogeneous grid the bench sweeps); ``configs`` gives an
        explicit per-VM sequence instead (heterogeneous modes). Exactly
        one of the two must be provided.
        """
        self.config = host_config if host_config is not None else HostConfig()
        if (machine_config is None) == (configs is None):
            raise SimulationError(
                "pass exactly one of machine_config= (uniform) or "
                "configs= (per-VM)")
        if configs is None:
            configs = [machine_config] * self.config.vms
        configs = list(configs)
        if len(configs) != self.config.vms:
            raise SimulationError(
                "%d per-VM configs for %d VMs" % (len(configs),
                                                  self.config.vms))
        self.clock = Clock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.memory = HostMemoryManager(self.config.commit_limit_frames)
        self.vms = []
        for vm_id, config in enumerate(configs):
            reservation = self._reservation_for(config)
            # The per-VM config must agree with the reservation so any
            # code reading config.host_mem_frames sees the truth.
            if config.mode != MODE_NATIVE and (
                    config.host_mem_frames != reservation):
                config = replace(config, host_mem_frames=reservation)
            host_mem = self.memory.attach_vm(vm_id, reservation)
            # Each VM runs on its own virtual view of the host clock:
            # charges pass through to host wall time, but the guest (and
            # its VMM's policy intervals) sees only its own cycles.
            system = System(config, clock=VirtualClock(self.clock),
                            host_mem=host_mem)
            if tracer is not None or metrics is not None:
                system.attach_observability(tracer=tracer, metrics=metrics)
            vm = VirtualMachine(vm_id, system,
                                weight=self.config.weight_of(vm_id))
            self.vms.append(vm)
        self.scheduler = VCpuScheduler(self.config, self.clock,
                                       tracer=self.tracer, metrics=metrics)
        self.balloon = BalloonDriver(self.config, self.memory, self.vms,
                                     tracer=self.tracer, metrics=metrics,
                                     clock=self.clock)

    def _reservation_for(self, config):
        """Host frames reserved for one VM.

        Virtualized guests draw from ``vm_frames``; a native "VM" (a
        bare-metal tenant with no VMM) needs its RAM sized like a solo
        native machine's — ``guest_mem_frames`` — or its allocator
        geometry (and thus its behavior under memory pressure) would
        diverge from the solo baseline.
        """
        if config.mode == MODE_NATIVE:
            return config.guest_mem_frames
        return self.config.vm_frames

    def vm(self, vm_id):
        return self.vms[vm_id]

    def load(self, programs):
        """Install one guest program per VM (``factory(api) -> generator``)."""
        if len(programs) != len(self.vms):
            raise SimulationError(
                "%d programs for %d VMs" % (len(programs), len(self.vms)))
        for vm, program in zip(self.vms, programs):
            vm.load(program)

    def run(self):
        """Schedule every loaded program to completion."""
        self.scheduler.run(self.vms)

    def collect_metrics(self, label=None):
        """Per-VM :class:`RunMetrics`, in ``vm_id`` order."""
        prefix = label if label is not None else "vm"
        return [vm.collect_metrics("%s%d" % (prefix, vm.vm_id))
                for vm in self.vms]

    def host_report(self):
        """JSON-safe host-level accounting for bench/experiment output."""
        return {
            "vms": self.config.vms,
            "overcommit_ratio": self.config.overcommit_ratio,
            "world_switches": self.scheduler.world_switches,
            "world_switch_cycles": self.scheduler.world_switch_cycles,
            "balloon_episodes": self.balloon.episodes,
            "balloon_frames": self.balloon.frames_reclaimed,
            "ledger": self.memory.snapshot(),
            "per_vm": [
                {
                    "vm_id": vm.vm_id,
                    "weight": vm.weight,
                    "cpu_cycles": vm.cpu_cycles,
                    "world_switches": vm.world_switches,
                    "world_switch_cycles": vm.world_switch_cycles,
                    "balloon_frames": vm.balloon_frames,
                    "balloon_episodes": vm.balloon_episodes,
                }
                for vm in self.vms
            ],
        }
