"""The balloon/reclaim driver: frame revocation under host pressure.

Installed as the :class:`~repro.host.memory.HostMemoryManager` pressure
handler. When a VM's allocation would push the committed total past the
physical limit, the driver runs synchronously in direct-reclaim style —
on the requesting VM's time, exactly like a Linux allocation stalling in
``try_to_free_pages`` — picking victims and asking their VMMs to revoke
backed frames (:meth:`repro.vmm.vmm.VMM.balloon_revoke`: host-PT unmaps,
shadow invalidations, TLB shootdowns; the revocation *work* is charged
to the victim's VMM trap accounting).

Victim policy, deterministic by construction: the VM with the largest
committed charge, excluding the requester, ties broken by lowest
``vm_id``. The requester itself is eligible only as a last resort (no
other VM can give anything back) — self-reclaim is how a single
overcommitted VM thrashes.
"""

from repro.obs.tracer import NULL_TRACER


class BalloonDriver:
    """Selects victims and revokes frames when the ledger hits the wall."""

    def __init__(self, host_config, ledger, vms, tracer=NULL_TRACER,
                 metrics=None, clock=None):
        self.config = host_config
        self.ledger = ledger
        self.vms = {vm.vm_id: vm for vm in vms}
        self.tracer = tracer
        self.metrics = metrics
        self.clock = clock
        self.episodes = 0
        self.frames_reclaimed = 0
        ledger.pressure_handler = self.reclaim

    def _revocable(self, vm):
        """Can this VM give frames back at all?"""
        return vm.system.vmm is not None and self.ledger.committed.get(
            vm.vm_id, 0) > 0

    def _pick_victim(self, requester_vm_id, exhausted):
        """Largest committed charge, requester excluded, lowest id wins ties."""
        best = None
        for vm_id in sorted(self.vms):
            if vm_id == requester_vm_id or vm_id in exhausted:
                continue
            vm = self.vms[vm_id]
            if not self._revocable(vm):
                continue
            charge = self.ledger.committed[vm_id]
            if best is None or charge > self.ledger.committed[best.vm_id]:
                best = vm
        if best is not None:
            return best
        # Last resort: the requester squeezes itself (self-ballooning).
        requester = self.vms.get(requester_vm_id)
        if (requester is not None and requester_vm_id not in exhausted
                and self._revocable(requester)):
            return requester
        return None

    def reclaim(self, requester_vm_id, need):
        """Free at least ``need`` frames; returns frames actually freed.

        The driver advances no clock of its own: revocation cycles are
        charged on each *victim's* virtual clock by its VMM's trap
        accounting, and the driver is not a host-clock authority
        (REPRO702) — it only reads timestamps for trace events.
        """
        freed_total = 0
        exhausted = set()
        while freed_total < need:
            victim = self._pick_victim(requester_vm_id, exhausted)
            if victim is None:
                break
            batch = max(self.config.balloon_batch, need - freed_total)
            freed = victim.system.vmm.balloon_revoke(
                batch, cycles_per_page=self.config.balloon_page_cycles)
            if freed <= 0:
                # Nothing revocable left (all its frames hold page-table
                # nodes, not backings): skip it for this episode.
                exhausted.add(victim.vm_id)
                continue
            freed_total += freed
            self.frames_reclaimed += freed
            self.episodes += 1
            victim.balloon_frames += freed
            victim.balloon_episodes += 1
            tracer = self.tracer
            if tracer.enabled:
                # Host wall time when available; the victim's virtual
                # time is the only clock a bare driver can see.
                now = (self.clock.now if self.clock is not None
                       else victim.system.clock.now)
                tracer.balloon(now, victim.vm_id, freed, requester_vm_id)
            if self.metrics is not None and self.metrics.enabled:
                self.metrics.inc(
                    "host.vm%d.balloon_frames" % victim.vm_id, freed)
        return freed_total
