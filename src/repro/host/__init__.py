"""repro.host — the multi-VM consolidation subsystem.

Generalizes the single-VM stack to N guests sharing one physical
machine: a global frame ledger with per-VM reservations and overcommit
(:mod:`repro.host.memory`), per-VM machine bundles on a shared clock
(:mod:`repro.host.vm`), a weighted round-robin vCPU scheduler
(:mod:`repro.host.scheduler`), a balloon/reclaim driver
(:mod:`repro.host.balloon`), and the :class:`Host` that assembles them
(:mod:`repro.host.host`). The ``HostSystem`` runner façade lives in
:mod:`repro.core.hostsys`; see ``docs/multivm.md`` for the architecture
and experiment guide.
"""

from repro.host.balloon import BalloonDriver
from repro.host.host import Host
from repro.host.memory import HostMemoryManager, HostPressureError, MeteredMemory
from repro.host.scheduler import VCpuScheduler
from repro.host.vm import VirtualMachine, VMachineAPI

__all__ = [
    "BalloonDriver",
    "Host",
    "HostMemoryManager",
    "HostPressureError",
    "MeteredMemory",
    "VCpuScheduler",
    "VirtualMachine",
    "VMachineAPI",
]
