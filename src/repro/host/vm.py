"""One guest VM on a consolidated host.

A :class:`VirtualMachine` bundles a fully assembled single-VM
:class:`repro.core.machine.System` (built on a per-VM
:class:`~repro.common.clock.VirtualClock` view of the host clock and
the VM's metered memory reservation) with the scheduling state the host
needs: the guest program to run, per-vCPU cycle accounting, and the
world-switch / balloon counters that are the host's cost — never the
guest's.

Guest programs are *generators*: ``program(api)`` yields between small
batches of guest work, and each ``next()`` is one schedulable step. The
scheduler preempts only at yield points, so a preempted-and-resumed
program executes the exact operation stream of an uninterrupted one —
the property the determinism tests and the cross-VM isolation oracle
both assert.
"""

from repro.common.timedomain import cycles
from repro.core.simulator import MachineAPI


class VMachineAPI(MachineAPI):
    """The machine API one VM's program sees, with per-VM accounting.

    Identical to :class:`MachineAPI` except that ``start_measurement``
    also pins this VM's cpu-cycle baseline, so per-VM metrics can report
    *vCPU* cycles in the measured window rather than host wall-clock
    (which includes every other VM's quanta).
    """

    def __init__(self, system, vm):
        super().__init__(system)
        self.vm = vm

    def start_measurement(self):
        super().start_measurement()
        self.vm.note_measurement_start()


class VirtualMachine:
    """Scheduling and accounting state for one consolidated guest."""

    def __init__(self, vm_id, system, weight=1.0):
        self.vm_id = vm_id
        self.system = system
        self.weight = weight
        self.api = VMachineAPI(system, self)
        self.program = None
        self.finished = False
        # vCPU time: clock cycles consumed while this VM's program ran.
        self.cpu_cycles = 0
        self._measured_base = None
        self._step_begin = None
        # Host-side costs attributed to (but not charged as) this VM.
        self.world_switches = 0
        self.world_switch_cycles = 0
        self.balloon_frames = 0
        self.balloon_episodes = 0

    def load(self, program_factory):
        """Install the guest program (``program_factory(api) -> generator``)."""
        self.program = program_factory(self.api)
        self.finished = False

    @property
    def runnable(self):
        return self.program is not None and not self.finished

    def step(self):
        """Run one schedulable unit of guest work.

        Returns True while the program has more work, False at exit.
        The virtual-clock delta across the ``next()`` is this vCPU's
        time; balloon revocations triggered by this VM's allocations
        advance the *victims'* virtual clocks (and host wall time), not
        this one's.
        """
        if not self.runnable:
            return False
        clock = self.system.clock
        self._step_begin = clock.now
        try:
            next(self.program)
        except StopIteration:
            self.finished = True
            self.program = None
        finally:
            self.cpu_cycles += clock.now - self._step_begin
            self._step_begin = None
        return not self.finished

    def note_measurement_start(self):
        """Pin the measured-window baseline (mid-step safe)."""
        partial = 0
        if self._step_begin is not None:
            partial = self.system.clock.now - self._step_begin
        self._measured_base = self.cpu_cycles + partial

    @property
    @cycles("duration")
    def measured_cpu_cycles(self):
        """vCPU cycles since ``start_measurement`` (whole run if never called)."""
        base = self._measured_base if self._measured_base is not None else 0
        return self.cpu_cycles - base

    def collect_metrics(self, label=None):
        """Per-VM :class:`RunMetrics` with vCPU (not wall) total cycles.

        Everything except ``total_cycles`` comes straight from the VM's
        own ``System`` — counters are per-system already, so they are
        guest-accurate under consolidation. ``total_cycles`` must be
        overridden: the system computes wall-clock since measurement
        start, which under consolidation includes other VMs' quanta.
        """
        metrics = self.system.collect_metrics(
            label if label is not None else "vm%d" % self.vm_id)
        metrics.total_cycles = self.measured_cpu_cycles
        return metrics

    def __repr__(self):
        return ("VirtualMachine(id=%d, weight=%s, cpu_cycles=%d, "
                "finished=%r)" % (self.vm_id, self.weight, self.cpu_cycles,
                                  self.finished))
