"""Host physical memory for a consolidated machine.

One real machine's RAM, partitioned into per-VM reservations with
overcommit. Two cooperating classes:

* :class:`HostMemoryManager` — the global commit ledger. It knows how
  many frames the machine physically has, how many each VM currently
  holds, and invokes the pressure handler (the balloon driver) when a
  charge would exceed the physical limit.

* :class:`MeteredMemory` — one VM's *view* of host memory. It subclasses
  :class:`repro.mem.physmem.PhysicalMemory` with the reservation as its
  frame count, so the VM-local frame numbers it hands out are
  **bit-identical to a solo machine** built with the same reservation —
  the property the cross-VM isolation oracle asserts. Every allocation
  first charges the ledger; every free credits it.

The metered view also tracks live frames and refuses a double free:
the balloon driver and the VMM both return frames, and a frame freed
twice would silently corrupt a *different VM* once the ledger undercounts
(exactly the bug class the revocation path risks).
"""

from repro.common.addrspace import returns, takes
from repro.common.effects import mutates
from repro.common.errors import SimulationError
from repro.mem.physmem import OutOfMemoryError, PhysicalMemory


class HostPressureError(OutOfMemoryError):
    """The commit limit was hit and reclaim could not free enough."""


class MeteredMemory(PhysicalMemory):
    """One VM's reservation-sized slice of host memory.

    ``base`` is the VM's partition origin in host-global frame space —
    reporting only (``global_frame``); all simulator state is keyed by
    the VM-local frame number so solo and consolidated runs match.
    """

    def __init__(self, num_frames, name, ledger, vm_id, base):
        super().__init__(num_frames, name)
        self.ledger = ledger
        self.vm_id = vm_id
        self.base = base
        self._live = set()

    @takes(frame="frame")
    def global_frame(self, frame):
        """The host-global frame number of a VM-local frame."""
        return self.base + frame

    # NOTE: these overrides carry no @mutates("host_ledger") annotation
    # on purpose — their names shadow PhysicalMemory's, and the analyzer
    # resolves attribute calls by name matching, so annotating them
    # would demand ledger authority at every guest allocation site in
    # the tree. The REPRO406 authority boundary is drawn at the uniquely
    # named ledger mutators (charge/credit) instead.

    @returns("frame")
    def alloc_frame(self, contents=None):
        self.ledger.charge(self.vm_id, 1)
        frame = super().alloc_frame(contents)
        self._live.add(frame)
        return frame

    @returns("frame")
    def alloc_contiguous(self, count):
        self.ledger.charge(self.vm_id, count)
        frame = super().alloc_contiguous(count)
        self._live.update(range(frame, frame + count))
        return frame

    @takes(frame="frame")
    def free_frame(self, frame):
        if frame not in self._live:
            raise SimulationError(
                "%s: double free of frame %d (vm %d) — the frame is not "
                "live; a revoked frame may have been returned twice"
                % (self.name, frame, self.vm_id))
        self._live.discard(frame)
        super().free_frame(frame)
        self.ledger.credit(self.vm_id, 1)

    @property
    def live_frames(self):
        """Frames this VM currently holds (== its ledger charge)."""
        return len(self._live)


class HostMemoryManager:
    """The global frame ledger of one consolidated host.

    Tracks per-VM committed frames against the physical total. When a
    charge would exceed it, the pressure handler (installed by the
    balloon driver) runs in direct-reclaim style — synchronously, on
    the requesting VM's time — and the charge retries. Determinism:
    the ledger's decisions depend only on allocation history, never on
    wall time.
    """

    def __init__(self, total_frames):
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        self.total_frames = total_frames
        self.committed = {}
        self.reservations = {}
        self._next_base = 0
        # Installed by the balloon driver: callable(requester_vm_id,
        # frames_needed) -> frames actually freed.
        self.pressure_handler = None
        # Reclaim accounting (surfaced in bench reports).
        self.reclaim_episodes = 0
        self.frames_reclaimed = 0

    def attach_vm(self, vm_id, reservation, name=None):
        """Carve out one VM's reservation; returns its metered view."""
        if vm_id in self.reservations:
            raise SimulationError("vm %d already attached" % vm_id)
        self.reservations[vm_id] = reservation
        self.committed[vm_id] = 0
        memory = MeteredMemory(
            reservation,
            name if name is not None else "host[vm%d]" % vm_id,
            ledger=self,
            vm_id=vm_id,
            base=self._next_base,
        )
        self._next_base += reservation
        return memory

    @property
    def total_committed(self):
        return sum(self.committed.values())

    @property
    def available(self):
        return self.total_frames - self.total_committed

    @property
    def overcommitted(self):
        """Is the sum of reservations above the physical total?"""
        return sum(self.reservations.values()) > self.total_frames

    @mutates("host_ledger")
    def charge(self, vm_id, frames):
        """Commit ``frames`` to ``vm_id``, reclaiming under pressure."""
        while self.total_committed + frames > self.total_frames:
            need = self.total_committed + frames - self.total_frames
            freed = 0
            if self.pressure_handler is not None:
                self.reclaim_episodes += 1
                freed = self.pressure_handler(vm_id, need)
                self.frames_reclaimed += freed
            if freed <= 0:
                raise HostPressureError(
                    "host memory exhausted: vm %d needs %d frame(s), "
                    "%d/%d committed and reclaim freed nothing"
                    % (vm_id, frames, self.total_committed,
                       self.total_frames))
        self.committed[vm_id] += frames

    @mutates("host_ledger")
    def credit(self, vm_id, frames):
        """Return ``frames`` from ``vm_id`` to the host pool."""
        remaining = self.committed.get(vm_id, 0) - frames
        if remaining < 0:
            raise SimulationError(
                "vm %d credited %d frame(s) it never charged" % (vm_id, frames))
        self.committed[vm_id] = remaining

    def snapshot(self):
        """JSON-safe ledger state (bench / experiment reports)."""
        return {
            "total_frames": self.total_frames,
            "committed": dict(self.committed),
            "reservations": dict(self.reservations),
            "reclaim_episodes": self.reclaim_episodes,
            "frames_reclaimed": self.frames_reclaimed,
        }
