"""Flat array-backed leaf map: page-table state as parallel arrays.

The reference :class:`~repro.mem.pagetable.PageTable` is a radix tree of
per-node dicts — ideal for modelling walks, slow to snapshot or compare.
:class:`FlatLeafMap` stores one leaf translation per slot in three
parallel ``array('q')`` columns (packed key, frame, packed metadata),
sorted by key with bisect lookups. The equivalence suite uses it as the
canonical "final translation state" representation: build one map per
core, then ``==`` or :meth:`diff` them.

Keys are opaque 63-bit integers chosen by the caller (the fastpath core
packs ``(asid, vpn)``); metadata packs ``(page_shift << 2) |
(writable << 1) | dirty``.
"""

from array import array
from bisect import bisect_left

from repro.common.addrspace import takes

META_WRITABLE_BIT = 2
META_DIRTY_BIT = 1


def pack_meta(page_shift, writable, dirty):
    """Pack one leaf's flag word (the frame rides in its own column)."""
    return (page_shift << 2) | (bool(writable) << 1) | bool(dirty)


class FlatLeafMap:
    """Sorted parallel-array map: packed key -> (frame, meta)."""

    def __init__(self):
        self._keys = array("q")
        self._frames = array("q")
        self._meta = array("q")
        self._dirty_order = False

    def __len__(self):
        return len(self._keys)

    @takes(frame="frame")
    def add(self, key, frame, meta):
        """Append one leaf; keys may arrive unsorted."""
        keys = self._keys
        if keys and key <= keys[-1]:
            self._dirty_order = True
        keys.append(key)
        self._frames.append(frame)
        self._meta.append(meta)

    def _ensure_sorted(self):
        if not self._dirty_order:
            return
        order = sorted(range(len(self._keys)), key=self._keys.__getitem__)
        self._keys = array("q", (self._keys[i] for i in order))
        self._frames = array("q", (self._frames[i] for i in order))
        self._meta = array("q", (self._meta[i] for i in order))
        self._dirty_order = False

    def get(self, key):
        """``(frame, meta)`` for ``key``, or None."""
        self._ensure_sorted()
        keys = self._keys
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return self._frames[i], self._meta[i]
        return None

    def entries(self):
        """All ``(key, frame, meta)`` rows in key order."""
        self._ensure_sorted()
        return list(zip(self._keys, self._frames, self._meta))

    def __eq__(self, other):
        if not isinstance(other, FlatLeafMap):
            return NotImplemented
        return self.entries() == other.entries()

    def __ne__(self, other):
        equal = self.__eq__(other)
        return equal if equal is NotImplemented else not equal

    __hash__ = None

    def diff(self, other):
        """Rows that differ: ``(key, mine, theirs)`` with None for absent."""
        mine = {key: (frame, meta) for key, frame, meta in self.entries()}
        theirs = {key: (frame, meta) for key, frame, meta in other.entries()}
        out = []
        for key in sorted(mine.keys() | theirs.keys()):
            if mine.get(key) != theirs.get(key):
                out.append((key, mine.get(key), theirs.get(key)))
        return out
