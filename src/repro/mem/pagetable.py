"""A multi-level radix page table stored in a simulated physical memory.

This class provides the *software* view of a page table: the operations
an OS or VMM performs (map, unmap, protect, scan). Hardware walks — the
ones that cost memory references — live in :mod:`repro.hw.walker` and
read the same nodes through physical memory.

Guest page tables take an ``observer``: the VMM registers one to mediate
guest writes (the write-protection mechanism of Section III-B). Every
mutation of an entry funnels through :meth:`_write_entry`, so an observer
sees the complete update stream, exactly like KVM's write-protect traps.
"""

from repro.common.addrspace import returns, takes
from repro.common.errors import SimulationError
from repro.common.params import (
    FOUR_KB,
    LEAF_LEVEL,
    ROOT_LEVEL,
    level_shift,
    pt_index,
)
from repro.mem.pte import PTE, PageTableNode


class PageTableObserver:
    """Callbacks a page table invokes around mutations.

    The default implementation does nothing; the VMM subclasses it.
    """

    def node_allocated(self, table, node, parent):
        """A new page-table node was linked under ``parent``."""

    def pte_written(self, table, node, index, old, new):
        """The entry ``node.entries[index]`` changed from ``old`` to ``new``.

        ``old`` and ``new`` are PTEs or None (None means not-present and
        never installed). Called *after* the write takes effect.
        """

    def node_freed(self, table, node):
        """A page-table node is about to be freed."""


class PageTable:
    """A radix page table rooted in one node.

    ``physmem`` supplies frames for nodes; ``name`` labels the table in
    diagnostics ("gPT", "hPT", "sPT", "PT").
    """

    def __init__(self, physmem, name="PT", observer=None):
        self.physmem = physmem
        self.name = name
        self.observer = observer
        self.root = self._new_node(ROOT_LEVEL, parent=None)

    @property
    def root_frame(self):
        return self.root.frame

    # -- node management -------------------------------------------------

    def _new_node(self, level, parent):
        frame = self.physmem.alloc_frame()
        node = PageTableNode(level, frame)
        self.physmem.install(frame, node)
        if self.observer is not None:
            self.observer.node_allocated(self, node, parent)
        return node

    @takes(frame="frame")
    def node_at(self, frame):
        """The :class:`PageTableNode` stored in ``frame``."""
        node = self.physmem.read(frame)
        if not isinstance(node, PageTableNode):
            raise SimulationError("%s: frame %d is not a page-table node" % (self.name, frame))
        return node

    def _write_entry(self, node, index, new):
        old = node.entries.get(index)
        if new is None:
            node.clear(index)
        else:
            node.set(index, new)
        if self.observer is not None:
            self.observer.pte_written(self, node, index, old, new)

    # -- traversal --------------------------------------------------------

    def child_node(self, node, index):
        """The next-level node linked at ``node[index]``, or None."""
        pte = node.get(index)
        if pte is None or not pte.present or pte.huge:
            return None
        return self.node_at(pte.frame)

    @takes(va="addr")
    def ensure_path(self, va, leaf_level):
        """Walk (allocating as needed) down to ``leaf_level``; return node.

        Intermediate entries are created present/writable/user as real
        OSes do; the leaf entry itself is *not* touched.
        """
        node = self.root
        for level in range(ROOT_LEVEL, leaf_level, -1):
            index = pt_index(va, level)
            pte = node.get(index)
            if pte is not None and pte.present:
                if pte.huge:
                    raise SimulationError(
                        "%s: huge mapping at level %d blocks path to level %d"
                        % (self.name, level, leaf_level)
                    )
                node = self.node_at(pte.frame)
                continue
            child = self._new_node(level - 1, parent=node)
            self._write_entry(node, index, PTE(frame=child.frame))
            node = child
        return node

    @takes(va="addr")
    def lookup(self, va):
        """Software walk: returns (pte, level) of the mapping or (None, level).

        ``level`` on a miss is the level at which the walk stopped.
        """
        node = self.root
        for level in range(ROOT_LEVEL, LEAF_LEVEL - 1, -1):
            index = pt_index(va, level)
            pte = node.get(index)
            if pte is None or not pte.present:
                return None, level
            if pte.huge or level == LEAF_LEVEL:
                return pte, level
            node = self.node_at(pte.frame)
        raise SimulationError("unreachable walk state")  # pragma: no cover

    @takes(va="addr")
    def leaf_entry(self, va, page_size=FOUR_KB):
        """The (node, index, pte) triple for ``va`` at ``page_size``.

        Returns (None, None, None) if the path is absent.
        """
        node = self.root
        for level in range(ROOT_LEVEL, page_size.leaf_level, -1):
            pte = node.get(pt_index(va, level))
            if pte is None or not pte.present or pte.huge:
                return None, None, None
            node = self.node_at(pte.frame)
        index = pt_index(va, page_size.leaf_level)
        return node, index, node.get(index)

    @takes(va="addr")
    @returns("frame", None)
    def translate(self, va):
        """Frame and page shift backing ``va``, or None if unmapped."""
        pte, level = self.lookup(va)
        if pte is None:
            return None
        shift = level_shift(level)
        base_frame = pte.frame
        # A huge mapping covers many 4K frames; pick the right one.
        offset_frames = (va & ((1 << shift) - 1)) >> 12
        return base_frame + offset_frames, shift

    # -- mutation ---------------------------------------------------------

    @takes(va="addr", frame="frame")
    def map(self, va, frame, page_size=FOUR_KB, writable=True, user=True,
            accessed=False, dirty=False):
        """Install a leaf mapping va -> frame at ``page_size``."""
        leaf_level = page_size.leaf_level
        node = self.ensure_path(va, leaf_level)
        pte = PTE(
            frame=frame,
            writable=writable,
            user=user,
            accessed=accessed,
            dirty=dirty,
            huge=leaf_level > LEAF_LEVEL,
        )
        self._write_entry(node, pt_index(va, leaf_level), pte)
        return pte

    @takes(va="addr")
    def unmap(self, va, page_size=FOUR_KB):
        """Remove the leaf mapping for ``va``; returns the old PTE or None."""
        node, index, pte = self.leaf_entry(va, page_size)
        if node is None or pte is None:
            return None
        self._write_entry(node, index, None)
        return pte

    @takes(va="addr")
    def set_flags(self, va, page_size=FOUR_KB, **flags):
        """Update flag fields on the leaf PTE for ``va``.

        Recognized keys: writable, user, accessed, dirty, present.
        Returns the updated PTE, or None if there is no mapping.
        """
        node, index, pte = self.leaf_entry(va, page_size)
        if pte is None:
            return None
        new = pte.copy()
        for key, value in flags.items():
            if key not in ("writable", "user", "accessed", "dirty", "present"):
                raise ValueError("unknown PTE flag: %r" % (key,))
            setattr(new, key, value)
        self._write_entry(node, index, new)
        return new

    @staticmethod
    def _links_child_node(node, pte):
        """True when ``pte`` (inside ``node``) points at a child PT node
        rather than at a data page."""
        return (
            node.level > LEAF_LEVEL
            and pte.present
            and not pte.huge
            and not pte.switching
            and not pte.guest_node
        )

    def clear_subtree(self, node, index):
        """Unlink and free the whole subtree under ``node[index]``."""
        pte = node.get(index)
        if pte is None:
            return
        if self._links_child_node(node, pte):
            self._free_subtree(self.node_at(pte.frame))
        self._write_entry(node, index, None)

    def _free_subtree(self, node):
        for _, pte in list(node.present_items()):
            if self._links_child_node(node, pte):
                self._free_subtree(self.node_at(pte.frame))
        if self.observer is not None:
            self.observer.node_freed(self, node)
        self.physmem.free_frame(node.frame)

    def destroy(self):
        """Free every node including the root."""
        self._free_subtree(self.root)
        self.root = None

    # -- iteration ---------------------------------------------------------

    def iter_nodes(self):
        """Yield every node, parents before children."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for _, pte in node.present_items():
                if self._links_child_node(node, pte):
                    stack.append(self.node_at(pte.frame))

    def iter_leaves(self):
        """Yield (va, pte, level) for every installed leaf mapping."""
        def recurse(node, va_prefix):
            for index, pte in sorted(node.entries.items()):
                if not pte.present:
                    continue
                va = va_prefix | (index << level_shift(node.level))
                if pte.huge or node.level == LEAF_LEVEL:
                    yield va, pte, node.level
                elif not pte.switching:
                    child = self.node_at(pte.frame)
                    yield from recurse(child, va)

        yield from recurse(self.root, 0)

    def count_mappings(self):
        """Number of installed leaf mappings (any granule)."""
        return sum(1 for _ in self.iter_leaves())
