"""Simulated physical memories.

Two instances exist in a virtualized system, exactly as in the paper:

* **guest-physical memory** — the RAM the guest believes it owns; guest
  page-table nodes and guest data pages live here, addressed by guest
  frame number (gfn),
* **host-physical memory** — the machine's real RAM; host and shadow
  page-table nodes live here, and every guest frame is backed by a host
  frame via the host page table.

The simulator is functional, so a "frame" stores a Python object (a page
table node or a data-page descriptor) rather than 4096 bytes. Memory
*references* are counted by the hardware walker, not here.
"""

from repro.common.addrspace import returns, takes
from repro.common.errors import SimulationError


class OutOfMemoryError(SimulationError):
    """The frame allocator is exhausted."""


class DataPage:
    """Contents of one allocated data frame.

    ``tag`` identifies what the page holds (useful for content-based
    sharing experiments); ``shared`` counts COW references to the frame.
    """

    __slots__ = ("tag", "shared")

    def __init__(self, tag=None):
        self.tag = tag
        self.shared = 1

    def __repr__(self):
        return "DataPage(tag=%r, shared=%d)" % (self.tag, self.shared)


class FrameAllocator:
    """A bump-then-free-list allocator of physical frames.

    Frames can be allocated singly or as naturally aligned contiguous
    runs (needed to back 2 MB / 1 GB pages with real contiguity).
    """

    def __init__(self, num_frames):
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        self._next = 0
        self._free = []

    @property
    def allocated(self):
        return self._next - len(self._free)

    @property
    def available(self):
        return self.num_frames - self.allocated

    @returns("frame")
    def alloc(self):
        """Allocate one frame; returns its frame number."""
        if self._free:
            return self._free.pop()
        if self._next >= self.num_frames:
            raise OutOfMemoryError("out of physical frames (%d in use)" % self.allocated)
        frame = self._next
        self._next += 1
        return frame

    @returns("frame")
    def alloc_contiguous(self, count):
        """Allocate ``count`` frames, naturally aligned; returns the first.

        Large-page backing requires alignment: a 2 MB page needs 512
        frames starting at a 512-frame boundary. The bump region is
        preferred; once it is exhausted, the lowest fully free aligned
        block is reclaimed from the free list (without this, map/unmap
        churn of large pages "leaks" the bump pointer and a long-running
        guest OOMs with most of memory on the free list — found by the
        differential fuzzer's 2M campaigns).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        start = (self._next + count - 1) // count * count
        if start + count <= self.num_frames:
            # Frames skipped for alignment go back on the free list.
            self._free.extend(range(self._next, start))
            self._next = start + count
            return start
        free_set = set(self._free)
        for base in range(0, self._next - count + 1, count):
            if all(base + offset in free_set for offset in range(count)):
                block = set(range(base, base + count))
                self._free = [f for f in self._free if f not in block]
                return base
        raise OutOfMemoryError(
            "cannot back a %d-frame large page (%d in use)" % (count, self.allocated)
        )

    @takes(frame="frame")
    def free(self, frame):
        """Return one frame to the allocator."""
        if not 0 <= frame < self._next:
            raise SimulationError("freeing frame %d that was never allocated" % frame)
        self._free.append(frame)


class PhysicalMemory:
    """A frame-indexed object store plus its allocator.

    ``name`` distinguishes guest from host memory in error messages.
    """

    def __init__(self, num_frames, name="mem"):
        self.name = name
        self.allocator = FrameAllocator(num_frames)
        self._frames = {}

    @returns("frame")
    def alloc_frame(self, contents=None):
        """Allocate a frame and optionally install its contents."""
        frame = self.allocator.alloc()
        if contents is not None:
            self._frames[frame] = contents
        return frame

    @returns("frame")
    def alloc_data_page(self, tag=None):
        """Allocate a frame holding a fresh :class:`DataPage`."""
        return self.alloc_frame(DataPage(tag))

    @returns("frame")
    def alloc_contiguous(self, count):
        """Allocate an aligned run of ``count`` empty frames."""
        return self.allocator.alloc_contiguous(count)

    @takes(frame="frame")
    def free_frame(self, frame):
        """Free a frame and drop its contents."""
        self._frames.pop(frame, None)
        self.allocator.free(frame)

    @takes(frame="frame")
    def install(self, frame, contents):
        """Set the contents of an already allocated frame."""
        self._frames[frame] = contents

    @takes(frame="frame")
    def read(self, frame):
        """Contents of ``frame`` (None if the frame holds no object)."""
        return self._frames.get(frame)

    @takes(frame="frame")
    def read_required(self, frame):
        """Contents of ``frame``; raises if nothing was installed there."""
        contents = self._frames.get(frame)
        if contents is None:
            raise SimulationError("%s: frame %d has no contents" % (self.name, frame))
        return contents

    def __contains__(self, frame):
        return frame in self._frames
