"""Page-table entries.

One PTE class serves all four tables (native, guest, host, shadow). The
shadow table additionally uses two fields the others never set:

* ``switching`` — the agile-paging switching bit of Section III-A; when
  set on a shadow entry, ``frame`` holds the frame of the *next guest
  page-table level* and the hardware walker continues in nested mode,
* ``guest_node`` — marks that ``frame`` indexes guest-physical memory
  (a guest PT node) rather than host-physical memory.
"""


class PTE:
    """A single page-table entry."""

    __slots__ = (
        "present",
        "writable",
        "user",
        "accessed",
        "dirty",
        "huge",
        "switching",
        "guest_node",
        "frame",
    )

    def __init__(
        self,
        frame=0,
        present=True,
        writable=True,
        user=True,
        accessed=False,
        dirty=False,
        huge=False,
        switching=False,
        guest_node=False,
    ):
        self.frame = frame
        self.present = present
        self.writable = writable
        self.user = user
        self.accessed = accessed
        self.dirty = dirty
        self.huge = huge
        self.switching = switching
        self.guest_node = guest_node

    def copy(self):
        """An independent copy of this entry."""
        clone = PTE.__new__(PTE)
        clone.frame = self.frame
        clone.present = self.present
        clone.writable = self.writable
        clone.user = self.user
        clone.accessed = self.accessed
        clone.dirty = self.dirty
        clone.huge = self.huge
        clone.switching = self.switching
        clone.guest_node = self.guest_node
        return clone

    def __repr__(self):
        flags = "".join(
            ch
            for ch, on in (
                ("P", self.present),
                ("W", self.writable),
                ("U", self.user),
                ("A", self.accessed),
                ("D", self.dirty),
                ("H", self.huge),
                ("S", self.switching),
                ("g", self.guest_node),
            )
            if on
        )
        return "PTE(frame=%d, %s)" % (self.frame, flags or "-")


class PageTableNode:
    """One 4 KB page-table page: up to 512 entries, stored sparsely.

    ``level`` records the radix level this node serves (4 = root) and
    ``frame`` the physical frame the node occupies, so faults and VMM
    bookkeeping can name it.
    """

    __slots__ = ("level", "frame", "entries")

    def __init__(self, level, frame):
        self.level = level
        self.frame = frame
        self.entries = {}

    def get(self, index):
        """The entry at ``index`` or None if never installed."""
        return self.entries.get(index)

    def set(self, index, pte):
        self.entries[index] = pte

    def clear(self, index):
        """Remove the entry at ``index`` (idempotent)."""
        self.entries.pop(index, None)

    def present_items(self):
        """Iterate (index, pte) over present entries."""
        return ((i, e) for i, e in self.entries.items() if e.present)

    def used_entries(self):
        return len(self.entries)

    def __repr__(self):
        return "PageTableNode(level=%d, frame=%d, used=%d)" % (
            self.level,
            self.frame,
            len(self.entries),
        )
