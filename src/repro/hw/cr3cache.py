"""The context-switch hardware optimization of Section IV.

A small (4–8 entry) hardware cache maps a guest page-table pointer (the
value the guest writes to CR3) to the matching shadow page-table pointer.
On a hit the hardware installs the shadow root itself and the VMtrap that
shadow paging normally pays on every guest context switch is avoided.
The VMM fills and invalidates the cache.
"""

from collections import OrderedDict

from repro.common.addrspace import returns, takes


class CR3CacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0


class CR3Cache:
    """Fully associative, LRU cache of gCR3 -> sCR3 pairs."""

    def __init__(self, entries=8):
        if entries <= 0:
            raise ValueError("CR3 cache needs a positive entry count")
        self.capacity = entries
        self._entries = OrderedDict()
        self.stats = CR3CacheStats()

    @takes(gcr3="gfn")
    @returns("hfn")
    def lookup(self, gcr3):
        """The cached shadow root for ``gcr3`` or None (counts stats)."""
        sptr = self._entries.get(gcr3)
        if sptr is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(gcr3)
        self.stats.hits += 1
        return sptr

    @takes(gcr3="gfn", sptr="hfn")
    def insert(self, gcr3, sptr):
        """VMM fills the cache after resolving a miss."""
        if gcr3 not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[gcr3] = sptr
        self._entries.move_to_end(gcr3)

    @takes(gcr3="gfn")
    def invalidate(self, gcr3):
        """VMM drops a pair when the shadow root changes or dies."""
        self._entries.pop(gcr3, None)

    def flush(self):
        self._entries.clear()
