"""The nested TLB: a small cache of gPA=>hPA translations.

AMD proposed (and Intel ships, as EPT-cached entries) a structure that
caches second-stage translations so the repeated host walks inside a 2D
nested walk can be skipped [Bhargava et al. 2008]. The paper's baseline
hardware includes it; Table II / Table VI raw reference counts assume it
absent. It is therefore optional here (``nested_tlb_entries`` in the
machine config) and is an ablation axis.
"""

from collections import OrderedDict

from repro.common.addrspace import returns, takes


class NestedTLBStats:
    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0


class NestedTLB:
    """Fully associative, LRU cache of guest-frame -> host-frame entries."""

    def __init__(self, entries):
        if entries <= 0:
            raise ValueError("nested TLB needs a positive entry count")
        self.capacity = entries
        self._entries = OrderedDict()  # gfn -> (hfn, writable, dirty)
        self.stats = NestedTLBStats()

    @takes(gfn="gfn")
    @returns("hfn", None, None)
    def lookup(self, gfn, is_write):
        """Cached (hfn, writable, dirty) for ``gfn`` or None.

        A write through an entry whose host dirty bit is clear must miss:
        the real walk is needed so hardware can set the host dirty bit
        (which the dirty-bit reversion policy of Section III-C reads).
        """
        hit = self._entries.get(gfn)
        if hit is None:
            self.stats.misses += 1
            return None
        hfn, writable, dirty = hit
        if is_write and (not writable or not dirty):
            self.stats.misses += 1
            return None
        self._entries.move_to_end(gfn)
        self.stats.hits += 1
        return hit

    @takes(gfn="gfn", hfn="hfn")
    def insert(self, gfn, hfn, writable, dirty):
        if gfn not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[gfn] = (hfn, writable, dirty)
        self._entries.move_to_end(gfn)

    @takes(gfn="gfn")
    def invalidate_gfn(self, gfn):
        self._entries.pop(gfn, None)

    def flush(self):
        self._entries.clear()

    def occupancy(self):
        """Live entries (for occupancy gauges)."""
        return len(self._entries)
