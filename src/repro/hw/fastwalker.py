"""Table-driven batch page walker for the fastpath core.

The reference :class:`~repro.hw.walker.PageWalker` dispatches each walk
through an if-chain on the context's paging mode. :class:`BatchWalker`
replaces that with a class-level dispatch table (one dict probe) and adds
:meth:`walk_many`, which retires any number of independent walks in a
single call — submission order is retirement order, so fills into the
PWCs and nested TLB happen in exactly the sequence the reference
produces for the same stream (proven by the equivalence suite).

Walk *semantics* are untouched: every mode handler is inherited from the
reference walker, so Table II reference counts cannot drift.
"""

from repro.common.addrspace import takes
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
    SimulationError,
)
from repro.hw.walker import PageWalker

# Faults a single walk may raise; walk_many captures these per-slot so
# one faulting walk does not abort the rest of the batch.
WALK_FAULTS = (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
)


class BatchWalker(PageWalker):
    """The reference walk engine behind a dispatch table.

    Like :class:`~repro.hw.walker.PageWalker`, this advances no clock:
    batched walks return reference counts (or fault instances) and the
    fastpath core charges cycles at its batch boundaries under its own
    ``@charges`` declarations (REPRO703).
    """

    DISPATCH = {
        "native": PageWalker.native_walk,
        "nested": PageWalker.nested_walk,
        "shadow": PageWalker.shadow_walk,
        "agile": PageWalker.agile_walk,
    }

    @takes(va="gva")
    def walk(self, va, ctx, is_write=False):
        """Dispatch on the context's paging mode via the table."""
        handler = self.DISPATCH.get(ctx.mode)
        if handler is None:
            raise SimulationError("unknown paging mode %r" % (ctx.mode,))
        return handler(self, va, ctx, is_write)

    def walk_many(self, requests):
        """Retire a batch of independent walks in submission order.

        ``requests`` is an iterable of ``(va, ctx, is_write)`` triples.
        Returns one result per request, in order: a
        :class:`~repro.hw.walkstats.WalkResult` on success, or the fault
        instance the walk raised (guest faults and VM exits are data
        here — the caller decides how to resolve them). Each walk sees
        the PWC/nested-TLB fills of every walk retired before it, exactly
        as if the caller had looped over :meth:`walk`.
        """
        dispatch = self.DISPATCH
        metrics = self.metrics
        m_on = metrics.enabled
        results = []
        append = results.append
        for va, ctx, is_write in requests:
            handler = dispatch.get(ctx.mode)
            if handler is None:
                raise SimulationError("unknown paging mode %r" % (ctx.mode,))
            try:
                result = handler(self, va, ctx, is_write)
            except WALK_FAULTS as fault:
                append(fault)
                continue
            if m_on:
                metrics.observe("walker.batch_refs", result.refs)
            append(result)
        return results
