"""Results and context objects for hardware page walks."""

# Sentinel for a walk handled entirely by nested paging with the guest
# root pointer itself translated through the host table (24 refs in the
# 4 KB case) — distinct from an agile walk with all four levels nested
# (20 refs, Figure 3(e)).
NESTED_FULL = "full"


class WalkResult:
    """What a completed hardware page walk produced.

    ``frame``/``page_shift`` name the final (host-)physical page;
    ``refs`` counts memory references performed, matching the paper's
    Table II arithmetic; ``nested_levels`` is the degree of nesting: 0
    for a pure shadow (or native) walk, 1–4 for agile walks that switched,
    and :data:`NESTED_FULL` for a complete nested walk.
    """

    __slots__ = (
        "frame",
        "page_shift",
        "writable",
        "dirty",
        "refs",
        "nested_levels",
        "mode",
    )

    def __init__(self, frame, page_shift, writable, dirty, refs, nested_levels, mode):
        self.frame = frame
        self.page_shift = page_shift
        self.writable = writable
        self.dirty = dirty
        self.refs = refs
        self.nested_levels = nested_levels
        self.mode = mode

    def __repr__(self):
        return "WalkResult(frame=%d, shift=%d, refs=%d, nested=%r, mode=%s)" % (
            self.frame,
            self.page_shift,
            self.refs,
            self.nested_levels,
            self.mode,
        )


class TranslationContext:
    """Hardware-visible translation state for the running guest process.

    This models the architectural page-table pointers of Section III-A:
    up to three of them live simultaneously (shadow, guest, host), plus
    the root switching bit that lets the very first level run nested.

    * native:  ``root_frame``
    * nested:  ``gptr`` (guest root gfn) and ``hptr`` (host root frame)
    * shadow:  ``sptr`` (shadow root frame); gptr/hptr exist but unused
      by hardware
    * agile:   all three; ``sptr is None`` means the process is fully
      nested (the Figure 4 ``sptr == gptr`` case); ``root_switch`` set
      means the walk starts nested at the guest root (Figure 3(e)).
    """

    __slots__ = ("asid", "mode", "root_frame", "gptr", "hptr", "sptr", "root_switch")

    def __init__(self, asid, mode, root_frame=None, gptr=None, hptr=None,
                 sptr=None, root_switch=False):
        self.asid = asid
        self.mode = mode
        self.root_frame = root_frame
        self.gptr = gptr
        self.hptr = hptr
        self.sptr = sptr
        self.root_switch = root_switch
