"""Hardware page-walk state machines.

This module is a function-for-function port of the paper's pseudocode:

* ``host_walk``      — Figure 2(a): the base native / host 1D walk,
* ``_nested_pt_access`` — Figure 2(e): one guest-PT access plus the host
  walk that translates the gPA it produces,
* ``nested_walk``    — Figure 2(b),
* ``shadow_walk``    — Figure 2(c): a 1D walk over the shadow table,
* ``agile_walk``     — Figure 4: starts in shadow mode and switches to
  nested mode when it reads a shadow entry whose switching bit is set.

Every method counts memory references exactly as the paper does, so the
arithmetic of Table II (4 native/shadow, 24 nested, ``4 + 4d`` for an
agile walk with ``d`` nested levels) falls out of the implementation.

Walks may raise (see :mod:`repro.common.errors`): guest faults go to the
guest OS, everything derived from ``VMExit`` goes to the VMM. A raised
fault carries the references spent so far, so partial walks are charged.
"""

from repro.common.addrspace import returns, takes, translates
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
    SimulationError,
)
from repro.common.params import (
    LEAF_LEVEL,
    ROOT_LEVEL,
    level_shift,
    pt_index,
)
from repro.hw.pwc import PWC_GUEST, PWC_NATIVE, PWC_SHADOW
from repro.hw.walkstats import NESTED_FULL, WalkResult
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER


@takes(addr="addr")
@returns("frame")
def _frame_4k(pte, addr, level):
    """The exact 4 KB frame backing ``addr`` given a leaf at ``level``."""
    span_frames = 1 << (level_shift(level) - 12)
    return pte.frame + ((addr >> 12) & (span_frames - 1))


@takes(frame_4k="frame", va="addr")
@returns("frame")
def _entry_base(frame_4k, va, eff_shift):
    """Base frame of the translation granule containing ``va``."""
    return frame_4k - ((va >> 12) & ((1 << (eff_shift - 12)) - 1))


class PageWalker:
    """The MMU's page-walk engine.

    ``host_mem`` holds host/native page-table nodes (and shadow nodes);
    ``guest_mem`` holds guest page-table nodes. ``pwc`` and ``nested_tlb``
    are optional acceleration structures. Setting :attr:`journal` to a
    list makes every memory reference append a ``(structure, level)``
    tuple, reproducing the chronological orders of Figures 1 and 3.

    Time accounting: the walker never advances a clock. It *counts*
    memory references in its :class:`~repro.hw.walkstats.WalkResult`,
    and ``System._charge_refs``/``_charge_translation`` convert those
    counts to cycles on the machine's own (guest) clock under their
    ``@charges`` declarations — so ``repro.lint.time`` (REPRO703) sees
    one charging surface, not one per walk flavor. The only clock use
    here is the read-only trace timestamp in :meth:`_probe`.
    """

    def __init__(self, host_mem, guest_mem=None, pwc=None, nested_tlb=None,
                 host_pwc=None):
        self.host_mem = host_mem
        self.guest_mem = guest_mem
        self.pwc = pwc
        # EPT MMU-cache analogue: partial translations of the *host*
        # table, keyed by gPA. Real processors cache these too, which is
        # why a mostly-warm nested walk costs ~2 references, not 5+.
        self.host_pwc = host_pwc
        self.nested_tlb = nested_tlb
        self.journal = None
        # Optional data-cache model for PTE reads: when set, each walk
        # reference is classified hit/miss and `cached_refs` counts the
        # hits of the current walk (the MMU resets it per translation).
        self.pte_cache = None
        self.cached_refs = 0
        # Observability: null objects until System.attach_observability
        # installs a tracer/registry; probes of the walk-acceleration
        # structures (PWCs, nested TLB) are emitted as `pwc` events.
        self.tracer = NULL_TRACER
        self.clock = None
        self.metrics = NULL_METRICS

    # -- low-level helpers -------------------------------------------------

    def _note(self, structure, level):
        if self.journal is not None:
            self.journal.append((structure, level))

    def _probe(self, structure, hit):
        """Trace one walk-accelerator probe (called only when tracing)."""
        self.tracer.pwc(self.clock.now if self.clock else 0, structure, hit)

    @takes(frame="frame")
    def _touch(self, space, frame, index):
        """Classify one walk reference against the PTE data cache."""
        if self.pte_cache is not None and self.pte_cache.access(space, frame, index):
            self.cached_refs += 1

    @takes(frame="frame")
    def _node(self, mem, frame, what):
        node = mem.read(frame)
        if node is None:
            raise SimulationError("%s walk reached empty frame %d" % (what, frame))
        return node

    # -- Figure 2(a): 1D host / native walk ---------------------------------

    @takes(addr="gpa", hptr="hfn", va="gva")
    @returns("hfn", None, None, None)
    def host_walk(self, addr, hptr, is_write=False, va=None, structure="hPT"):
        """Walk the host (or native) table for ``addr``.

        Returns ``(frame_4k, leaf_level, leaf_pte, refs)``. Raises
        :class:`HostPageFault` on a hole or write-protection violation —
        with nested paging a fault in the host table is a VM exit
        (Figure 2(b) comment).
        """
        refs = 0
        node = self._node(self.host_mem, hptr, structure)
        start_level = ROOT_LEVEL
        pwc_fills = []
        if self.host_pwc is not None:
            hit = self.host_pwc.lookup(0, addr)
            if self.tracer.enabled:
                self._probe("host_pwc", hit is not None)
            if hit is not None:
                skipped, frame, _mode = hit
                node = self._node(self.host_mem, frame, structure)
                start_level = ROOT_LEVEL - skipped
        for level in range(start_level, LEAF_LEVEL - 1, -1):
            refs += 1
            self._note(structure, level)
            self._touch("host", node.frame, pt_index(addr, level))
            pte = node.get(pt_index(addr, level))
            if pte is None or not pte.present:
                raise HostPageFault(va if va is not None else addr, gpa=addr,
                                    refs=refs, level=level, is_write=is_write)
            pte.accessed = True
            if pte.huge or level == LEAF_LEVEL:
                if is_write:
                    if not pte.writable:
                        raise HostPageFault(va if va is not None else addr, gpa=addr,
                                            refs=refs, level=level, is_write=True)
                    pte.dirty = True
                if self.host_pwc is not None:
                    for depth, frame, mode in pwc_fills:
                        self.host_pwc.insert(0, addr, depth, frame, mode)
                return _frame_4k(pte, addr, level), level, pte, refs
            node = self._node(self.host_mem, pte.frame, structure)
            pwc_fills.append((ROOT_LEVEL - (level - 1), node.frame, PWC_NATIVE))
        raise SimulationError("host walk fell off the table")  # pragma: no cover

    @takes(va="gva")
    def native_walk(self, va, ctx, is_write=False):
        """Base-native translation: a single 1D walk (Figure 1(a))."""
        refs = 0
        node = self._node(self.host_mem, ctx.root_frame, "PT")
        start_level = ROOT_LEVEL
        pwc_fills = []
        if self.pwc is not None:
            hit = self.pwc.lookup(ctx.asid, va)
            if self.tracer.enabled:
                self._probe("pwc", hit is not None)
            if hit is not None:
                skipped, frame, _mode = hit
                node = self._node(self.host_mem, frame, "PT")
                start_level = ROOT_LEVEL - skipped
        for level in range(start_level, LEAF_LEVEL - 1, -1):
            refs += 1
            self._note("PT", level)
            self._touch("host", node.frame, pt_index(va, level))
            pte = node.get(pt_index(va, level))
            if pte is None or not pte.present:
                raise GuestPageFault(va, refs=refs, level=level, is_write=is_write)
            pte.accessed = True
            if pte.huge or level == LEAF_LEVEL:
                if is_write and not pte.writable:
                    raise GuestPageFault(va, refs=refs, level=level,
                                         is_write=True, protection=True)
                if is_write:
                    pte.dirty = True
                shift = level_shift(level)
                frame_4k = _frame_4k(pte, va, level)
                self._pwc_commit(ctx.asid, va, pwc_fills)
                return WalkResult(
                    frame=_entry_base(frame_4k, va, shift),
                    page_shift=shift,
                    writable=pte.writable,
                    dirty=pte.dirty,
                    refs=refs,
                    nested_levels=0,
                    mode="native",
                )
            node = self._node(self.host_mem, pte.frame, "PT")
            pwc_fills.append((ROOT_LEVEL - (level - 1), node.frame, PWC_NATIVE))
        raise SimulationError("native walk fell off the table")  # pragma: no cover

    def _pwc_commit(self, asid, va, fills):
        if self.pwc is None:
            return
        for depth, frame, mode in fills:
            self.pwc.insert(asid, va, depth, frame, mode)

    # -- Figure 2(e): one nested page-table access ---------------------------

    @translates("gfn", "hfn")
    @takes(gfn="gfn", hptr="hfn", va="gva")
    @returns("hfn", None, None)
    def _translate_gfn(self, gfn, hptr, is_write, va):
        """gfn -> host 4K frame via nested TLB or a host walk.

        Returns ``(hfn_4k, host_shift, refs)``.
        """
        if self.nested_tlb is not None:
            hit = self.nested_tlb.lookup(gfn, is_write)
            if self.tracer.enabled:
                self._probe("nested_tlb", hit is not None)
            if hit is not None:
                hfn, _writable, _dirty = hit
                return hfn, 12, 0
        hfn, level, pte, refs = self.host_walk(gfn << 12, hptr, is_write=is_write, va=va)
        if self.nested_tlb is not None:
            self.nested_tlb.insert(gfn, hfn, pte.writable, pte.dirty)
        return hfn, level_shift(level), refs

    @takes(node_gfn="gfn", va="gva", hptr="hfn")
    def _nested_pt_access(self, node_gfn, va, level, hptr, is_write):
        """Read one guest PTE, then host-walk the gPA it names.

        Returns ``(gpte, at_leaf, next_gfn_or_hfn, host_shift, refs)``:
        at the leaf, the third element is the host 4K frame of the data
        page; above it, the gfn of the next guest node.
        """
        refs = 1
        self._note("gPT", level)
        self._touch("guest", node_gfn, pt_index(va, level))
        node = self._node(self.guest_mem, node_gfn, "gPT")
        gpte = node.get(pt_index(va, level))
        if gpte is None or not gpte.present:
            raise GuestPageFault(va, refs=refs, level=level, is_write=is_write)
        gpte.accessed = True
        at_leaf = gpte.huge or level == LEAF_LEVEL
        if at_leaf:
            if is_write and not gpte.writable:
                raise GuestPageFault(va, refs=refs, level=level,
                                     is_write=True, protection=True)
            if is_write:
                gpte.dirty = True
            gfn_4k = _frame_4k(gpte, va, level)
            try:
                hfn, host_shift, host_refs = self._translate_gfn(gfn_4k, hptr, is_write, va)
            except HostPageFault as fault:
                fault.refs += refs
                raise
            return gpte, True, hfn, host_shift, refs + host_refs
        try:
            _hfn, host_shift, host_refs = self._translate_gfn(gpte.frame, hptr, False, va)
        except HostPageFault as fault:
            fault.refs += refs
            raise
        return gpte, False, gpte.frame, host_shift, refs + host_refs

    # -- Figure 2(b): full nested walk ---------------------------------------

    @takes(va="gva")
    def nested_walk(self, va, ctx, is_write=False, translate_root=True):
        """2D nested translation (Figure 1(b)); up to 24 references."""
        refs = 0
        node_gfn = ctx.gptr
        start_level = ROOT_LEVEL
        pwc_fills = []
        if self.pwc is not None:
            hit = self.pwc.lookup(ctx.asid, va)
            if self.tracer.enabled:
                self._probe("pwc", hit is not None)
            if hit is not None:
                skipped, frame, mode = hit
                if mode != PWC_GUEST:
                    raise SimulationError("nested walk got a %s PWC entry" % mode)
                node_gfn = frame
                start_level = ROOT_LEVEL - skipped
                translate_root = False
        if translate_root:
            # The guest root pointer itself holds a gPA (Figure 2(b)):
            # translating it costs one host walk.
            _hfn, _shift, root_refs = self._translate_gfn(node_gfn, ctx.hptr, False, va)
            refs += root_refs
        return self._nested_levels(va, ctx, is_write, node_gfn, start_level,
                                   refs, pwc_fills, nested_tag=NESTED_FULL)

    @takes(va="gva", node_gfn="gfn")
    def _nested_levels(self, va, ctx, is_write, node_gfn, start_level, refs,
                       pwc_fills, nested_tag):
        """Walk guest levels ``start_level``..leaf in nested mode."""
        nested_count = 0
        for level in range(start_level, LEAF_LEVEL - 1, -1):
            try:
                gpte, at_leaf, nxt, host_shift, step_refs = self._nested_pt_access(
                    node_gfn, va, level, ctx.hptr, is_write
                )
            except (GuestPageFault, HostPageFault) as fault:
                fault.refs += refs
                raise
            refs += step_refs
            nested_count += 1
            if at_leaf:
                guest_shift = level_shift(level)
                eff_shift = min(guest_shift, host_shift)
                nested_levels = nested_tag
                if nested_tag is not NESTED_FULL:
                    nested_levels = nested_count
                self._pwc_commit(ctx.asid, va, pwc_fills)
                return WalkResult(
                    frame=_entry_base(nxt, va, eff_shift),
                    page_shift=eff_shift,
                    writable=gpte.writable,
                    dirty=gpte.dirty,
                    refs=refs,
                    nested_levels=nested_levels,
                    mode="nested" if nested_tag is NESTED_FULL else "agile",
                )
            node_gfn = nxt
            pwc_fills.append((ROOT_LEVEL - (level - 1), node_gfn, PWC_GUEST))
        raise SimulationError("nested walk fell off the table")  # pragma: no cover

    # -- Figure 2(c): shadow walk --------------------------------------------

    @takes(va="gva")
    def shadow_walk(self, va, ctx, is_write=False):
        """1D walk of the shadow table; native-speed TLB misses."""
        return self._shadow_levels(va, ctx, is_write, allow_switching=False)

    # -- Figure 4: agile walk --------------------------------------------------

    @takes(va="gva")
    def agile_walk(self, va, ctx, is_write=False):
        """Start in shadow mode; switch to nested at a switching bit.

        Implements Figure 4 including its ``sptr == gptr`` full-nested
        case (``ctx.sptr is None`` here) and the root switching bit.
        """
        if ctx.sptr is None:
            return self.nested_walk(va, ctx, is_write)
        if ctx.root_switch:
            # Figure 3(e): all levels nested, but sptr names the guest
            # root directly, so no initial gptr translation is needed.
            return self._nested_levels(va, ctx, is_write, ctx.gptr, ROOT_LEVEL,
                                       refs=0, pwc_fills=[], nested_tag="agile")
        return self._shadow_levels(va, ctx, is_write, allow_switching=True)

    @takes(va="gva")
    def _shadow_levels(self, va, ctx, is_write, allow_switching):
        refs = 0
        node = self._node(self.host_mem, ctx.sptr, "sPT")
        start_level = ROOT_LEVEL
        pwc_fills = []
        if self.pwc is not None:
            hit = self.pwc.lookup(ctx.asid, va)
            if self.tracer.enabled:
                self._probe("pwc", hit is not None)
            if hit is not None:
                skipped, frame, mode = hit
                start_level = ROOT_LEVEL - skipped
                if mode == PWC_GUEST:
                    if not allow_switching:
                        raise SimulationError("shadow walk got a guest PWC entry")
                    return self._nested_levels(
                        va, ctx, is_write, frame, start_level, refs, [],
                        nested_tag="agile",
                    )
                node = self._node(self.host_mem, frame, "sPT")
        for level in range(start_level, LEAF_LEVEL - 1, -1):
            refs += 1
            self._note("sPT", level)
            self._touch("host", node.frame, pt_index(va, level))
            spte = node.get(pt_index(va, level))
            if spte is None or not spte.present:
                raise ShadowNotPresentFault(va, refs=refs, level=level, is_write=is_write)
            spte.accessed = True
            if allow_switching and spte.switching:
                # The switching bit: this entry holds the frame of the
                # next *guest* level; the walk continues nested.
                return self._nested_levels(
                    va, ctx, is_write, spte.frame, level - 1, refs, pwc_fills,
                    nested_tag="agile",
                )
            if spte.huge or level == LEAF_LEVEL:
                if is_write and not spte.writable:
                    raise ShadowProtectionFault(va, refs=refs, level=level)
                if is_write:
                    spte.dirty = True
                shift = level_shift(level)
                frame_4k = _frame_4k(spte, va, level)
                self._pwc_commit(ctx.asid, va, pwc_fills)
                return WalkResult(
                    frame=_entry_base(frame_4k, va, shift),
                    page_shift=shift,
                    writable=spte.writable,
                    dirty=spte.dirty,
                    refs=refs,
                    nested_levels=0,
                    mode="shadow" if not allow_switching else "agile",
                )
            node = self._node(self.host_mem, spte.frame, "sPT")
            pwc_fills.append((ROOT_LEVEL - (level - 1), node.frame, PWC_SHADOW))
        raise SimulationError("shadow walk fell off the table")  # pragma: no cover

    # -- dispatch ---------------------------------------------------------------

    @takes(va="gva")
    def walk(self, va, ctx, is_write=False):
        """Dispatch on the context's paging mode."""
        if ctx.mode == "native":
            return self.native_walk(va, ctx, is_write)
        if ctx.mode == "nested":
            return self.nested_walk(va, ctx, is_write)
        if ctx.mode == "shadow":
            return self.shadow_walk(va, ctx, is_write)
        if ctx.mode == "agile":
            return self.agile_walk(va, ctx, is_write)
        raise SimulationError("unknown paging mode %r" % (ctx.mode,))
