"""The memory-management unit: TLB hierarchy + walk engine + caches.

``MMU.translate`` is the single hardware entry point the simulator core
drives. It probes the TLB hierarchy, falls back to the mode-appropriate
page walk, and fills the TLBs — propagating walker faults (guest faults
and VM exits) to the caller, which models the OS/VMM handling them and
retrying, exactly as hardware re-executes the faulting instruction.
"""

from repro.common.addrspace import takes
from repro.common.config import CORE_FASTPATH
from repro.hw.fastpwc import FastPageWalkCache
from repro.hw.fasttlb import FastMultiSizeTLB
from repro.hw.fastwalker import BatchWalker
from repro.hw.nested_tlb import NestedTLB
from repro.hw.pwc import PageWalkCache
from repro.hw.tlbhierarchy import MultiSizeTLB
from repro.hw.walker import PageWalker
from repro.hw.walkstats import NESTED_FULL
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

# walker.depth histogram encodes the NESTED_FULL sentinel as this bucket
# value (one past the deepest agile nesting level), keeping the layer-0
# metrics module free of hw vocabulary.
DEPTH_NESTED_FULL = 5


class MMUCounters:
    """Aggregate hardware counters, the simulator's `perf` analogue."""

    __slots__ = (
        "tlb_hits_l1",
        "tlb_hits_l2",
        "tlb_misses",
        "walk_refs",
        "fault_refs",
        "walks_by_depth",
        "write_upgrades",
    )

    def __init__(self):
        self.tlb_hits_l1 = 0
        self.tlb_hits_l2 = 0
        self.tlb_misses = 0
        self.walk_refs = 0
        self.fault_refs = 0
        # Degree-of-nesting histogram for Table VI: keys 0..4 and 'full'.
        self.walks_by_depth = {0: 0, 1: 0, 2: 0, 3: 0, 4: 0, NESTED_FULL: 0}
        self.write_upgrades = 0

    def reset(self):
        """Zero every counter (start of a measurement window)."""
        self.tlb_hits_l1 = 0
        self.tlb_hits_l2 = 0
        self.tlb_misses = 0
        self.walk_refs = 0
        self.fault_refs = 0
        self.walks_by_depth = {k: 0 for k in self.walks_by_depth}
        self.write_upgrades = 0

    @property
    def tlb_hits(self):
        return self.tlb_hits_l1 + self.tlb_hits_l2

    @property
    def avg_refs_per_miss(self):
        return self.walk_refs / self.tlb_misses if self.tlb_misses else 0.0


class TranslationOutcome:
    """What one call to :meth:`MMU.translate` did."""

    __slots__ = ("frame", "hit_level", "walk", "cached_refs")

    def __init__(self, frame, hit_level, walk, cached_refs=0):
        self.frame = frame
        self.hit_level = hit_level  # 'l1', 'l2', or None (walked)
        self.walk = walk  # WalkResult or None on a TLB hit
        # Walk references served by the PTE data cache (0 unless the
        # optional cache model is enabled).
        self.cached_refs = cached_refs

    @property
    def tlb_hit(self):
        return self.hit_level is not None


class MMU:
    """One core's translation hardware, configured per MachineConfig."""

    def __init__(self, config, host_mem, guest_mem=None):
        self.config = config
        self.page_size = config.page_size
        sizes = {config.page_size, config.host_granule}
        from repro.common.params import FOUR_KB

        sizes.add(FOUR_KB)  # broken-down entries always need a 4K array
        # The fastpath core swaps the packed-array structures in here;
        # both variants are bit-identical in behaviour (tests/fastpath).
        fast = config.core == CORE_FASTPATH
        tlb_cls = FastMultiSizeTLB if fast else MultiSizeTLB
        pwc_cls = FastPageWalkCache if fast else PageWalkCache
        walker_cls = BatchWalker if fast else PageWalker
        self.hierarchy = tlb_cls(config.tlbs, sizes, primary=config.page_size)
        self.pwc = (
            pwc_cls(config.pwc.entries_per_table, enabled=True)
            if config.pwc.enabled
            else None
        )
        self.nested_tlb = (
            NestedTLB(config.nested_tlb_entries) if config.nested_tlb_entries else None
        )
        self.host_pwc = (
            pwc_cls(config.pwc.entries_per_table, enabled=True)
            if config.pwc.enabled and config.virtualized
            else None
        )
        self.walker = walker_cls(host_mem, guest_mem, self.pwc, self.nested_tlb,
                                 host_pwc=self.host_pwc)
        if config.pte_cache_lines:
            from repro.hw.ptecache import PTECache

            self.walker.pte_cache = PTECache(config.pte_cache_lines)
        self.counters = MMUCounters()
        # BadgerTrap analogue: when set, called as miss_hook(va, WalkResult)
        # after every successful page walk (i.e., every TLB miss).
        self.miss_hook = None
        # Observability: null objects until System.attach_observability
        # installs a real tracer/registry; `clock` is set alongside the
        # tracer. Hot paths pay one attribute load + branch when off.
        self.tracer = NULL_TRACER
        self.clock = None
        self.metrics = NULL_METRICS

    @takes(va="gva")
    def translate(self, ctx, va, is_write=False, kind="data"):
        """Translate ``va``; may raise a guest fault or VM exit.

        A write through a clean or read-only TLB entry re-walks so dirty
        bits get set (and protection faults surface), mirroring x86.
        """
        entry, level = self.hierarchy.lookup(ctx.asid, va, kind)
        tracer = self.tracer
        if entry is not None:
            if not is_write or (entry.writable and entry.dirty):
                if level == "l1":
                    self.counters.tlb_hits_l1 += 1
                else:
                    self.counters.tlb_hits_l2 += 1
                if tracer.enabled:
                    tracer.tlb_hit(self.clock.now if self.clock else 0,
                                   level, ctx.asid)
                return TranslationOutcome(entry.frame, level, None)
            self.counters.write_upgrades += 1
        self.walker.cached_refs = 0
        try:
            result = self.walker.walk(va, ctx, is_write)
        except Exception as fault:
            refs = getattr(fault, "refs", 0)
            self.counters.fault_refs += refs
            raise
        self.counters.tlb_misses += 1
        self.counters.walk_refs += result.refs
        if ctx.mode == "agile":
            self.counters.walks_by_depth[result.nested_levels] += 1
        metrics = self.metrics
        if metrics.enabled:
            metrics.observe("walker.refs", result.refs)
            if ctx.mode == "agile":
                depth = result.nested_levels
                metrics.observe("walker.depth",
                                DEPTH_NESTED_FULL if depth == NESTED_FULL
                                else depth)
        if tracer.enabled:
            tracer.walk(self.clock.now if self.clock else 0, result.mode,
                        result.refs, result.nested_levels, result.page_shift,
                        ctx.asid)
        if self.miss_hook is not None:
            self.miss_hook(va, result)
        self.hierarchy.fill(ctx.asid, va, result.frame, result.writable,
                            result.dirty, result.page_shift, kind)
        return TranslationOutcome(result.frame, None, result,
                                  cached_refs=self.walker.cached_refs)

    # -- shootdown interface used by the OS and VMM -------------------------

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        self.hierarchy.invalidate_page(asid, va)
        if self.pwc is not None:
            self.pwc.invalidate_prefix(asid, va)

    def invalidate_asid(self, asid):
        self.hierarchy.invalidate_asid(asid)
        if self.pwc is not None:
            self.pwc.invalidate_asid(asid)

    def flush_all(self):
        self.hierarchy.flush()
        if self.pwc is not None:
            self.pwc.flush()
        if self.host_pwc is not None:
            self.host_pwc.flush()
        if self.nested_tlb is not None:
            self.nested_tlb.flush()
        if self.walker.pte_cache is not None:
            self.walker.pte_cache.flush()

    def flush_pwc(self):
        if self.pwc is not None:
            self.pwc.flush()

    @takes(gfn="gfn")
    def invalidate_nested_gfn(self, gfn):
        if self.nested_tlb is not None:
            self.nested_tlb.invalidate_gfn(gfn)
