"""The per-core two-level TLB hierarchy of the paper's Table III.

One hierarchy instance serves one translation granule (the paper runs
each experiment with a single page size used at both translation levels,
Section VI). Lookups probe L1 then L2; fills populate both; all
invalidations are broadcast.
"""

from repro.common.addrspace import takes
from repro.hw.tlb import TLB, TLBEntry


class TLBHierarchy:
    """L1 data + L1 instruction + unified L2 for one page size."""

    # Which TLB implementation backs the three structures. The fastpath
    # core swaps in the packed-list FastTLB (repro.hw.fasttlb) here.
    TLB_CLS = TLB

    def __init__(self, config, page_size):
        self.page_size = page_size
        name = page_size.name
        shift = page_size.shift
        if name not in config.l1d:
            raise ValueError("no L1D geometry for page size %s" % name)
        tlb_cls = self.TLB_CLS
        self.l1d = tlb_cls(config.l1d[name].entries, config.l1d[name].ways, shift, "L1D")
        self.l1i = None
        if name in config.l1i:
            geometry = config.l1i[name]
            self.l1i = tlb_cls(geometry.entries, geometry.ways, shift, "L1I")
        self.l2 = None
        if name in config.l2:
            geometry = config.l2[name]
            self.l2 = tlb_cls(geometry.entries, geometry.ways, shift, "L2")

    def _l1_for(self, kind):
        if kind == "inst" and self.l1i is not None:
            return self.l1i
        return self.l1d

    @takes(va="gva")
    def lookup(self, asid, va, kind="data"):
        """Probe L1 then L2. Returns (entry, level) with level in
        {"l1", "l2", None}."""
        l1 = self._l1_for(kind)
        entry = l1.lookup(asid, va)
        if entry is not None:
            return entry, "l1"
        if self.l2 is not None:
            entry = self.l2.lookup(asid, va)
            if entry is not None:
                # Promote into L1, as hardware does.
                l1.insert(entry)
                return entry, "l2"
        return None, None

    @takes(va="gva", frame="hfn")
    def fill(self, asid, va, frame, writable, dirty, kind="data"):
        """Install a fresh translation into L1 (+L2)."""
        entry = TLBEntry(
            asid=asid,
            vpn=va >> self.page_size.shift,
            frame=frame,
            page_shift=self.page_size.shift,
            writable=writable,
            dirty=dirty,
        )
        self._l1_for(kind).insert(entry)
        if self.l2 is not None:
            self.l2.insert(entry)
        return entry

    def _all(self):
        structures = [self.l1d]
        if self.l1i is not None:
            structures.append(self.l1i)
        if self.l2 is not None:
            structures.append(self.l2)
        return structures

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        for tlb in self._all():
            tlb.invalidate_page(asid, va)

    def invalidate_asid(self, asid):
        for tlb in self._all():
            tlb.invalidate_asid(asid)

    def flush(self):
        for tlb in self._all():
            tlb.flush()

    def iter_entries(self):
        """Every cached entry across L1D/L1I/L2, without side effects."""
        for tlb in self._all():
            yield from tlb.iter_entries()

    @takes(va="gva")
    def peek(self, asid, va):
        """First matching entry for ``va`` with no stats/LRU effects."""
        for tlb in self._all():
            entry = tlb.peek(asid, va)
            if entry is not None:
                return entry
        return None

    @property
    def hits(self):
        return sum(t.stats.hits for t in self._all())

    @property
    def misses(self):
        """Demand misses: probes that missed the whole hierarchy.

        L1 misses that hit L2 are not full misses, so this is the L2 miss
        count when an L2 exists (every L2 probe follows an L1 miss).
        """
        if self.l2 is not None:
            return self.l2.stats.misses
        return self.l1d.stats.misses + (self.l1i.stats.misses if self.l1i else 0)


class MultiSizeTLB:
    """TLB front end holding one hierarchy per translation granule.

    Real cores keep separate 4K/2M(/1G) TLB arrays and probe them in
    parallel; translations enter the array matching their granule. This
    matters when the two translation stages use *different* page sizes:
    a 2 MB guest page backed by 4 KB host pages is "broken into smaller
    pages for entry into the TLB" (Section V) — the fill lands in the
    4K array automatically because the effective granule is 4K.
    """

    # Which per-granule hierarchy this front end builds; the fastpath
    # core overrides it with FastTLBHierarchy.
    HIERARCHY_CLS = TLBHierarchy

    def __init__(self, config, page_sizes, primary):
        self.hierarchies = {}
        for page_size in page_sizes:
            if page_size.name in config.l1d:
                self.hierarchies[page_size.shift] = self.HIERARCHY_CLS(config, page_size)
        if primary.shift not in self.hierarchies:
            raise ValueError("no TLB geometry for primary size %s" % primary)
        self.primary_shift = primary.shift
        # Probe order: the run's dominant granule first.
        self._order = sorted(self.hierarchies,
                             key=lambda s: (s != primary.shift, s))

    @takes(va="gva")
    def lookup(self, asid, va, kind="data"):
        for shift in self._order:
            entry, level = self.hierarchies[shift].lookup(asid, va, kind)
            if entry is not None:
                return entry, level
        return None, None

    @takes(va="gva", frame="hfn")
    def fill(self, asid, va, frame, writable, dirty, page_shift, kind="data"):
        """Install at the largest supported granule <= ``page_shift``."""
        candidates = [s for s in self.hierarchies if s <= page_shift]
        shift = max(candidates) if candidates else min(self.hierarchies)
        if shift != page_shift:
            # Break the translation down to the structure's granule.
            frame_4k = frame + ((va & ((1 << page_shift) - 1)) >> 12)
            frame = frame_4k - ((va >> 12) & ((1 << (shift - 12)) - 1))
        return self.hierarchies[shift].fill(asid, va, frame, writable, dirty, kind)

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        for hierarchy in self.hierarchies.values():
            hierarchy.invalidate_page(asid, va)

    def invalidate_asid(self, asid):
        for hierarchy in self.hierarchies.values():
            hierarchy.invalidate_asid(asid)

    def flush(self):
        for hierarchy in self.hierarchies.values():
            hierarchy.flush()

    def iter_entries(self):
        """Every cached entry in every granule array (no side effects)."""
        for hierarchy in self.hierarchies.values():
            yield from hierarchy.iter_entries()

    @takes(va="gva")
    def peek_entries(self, asid, va):
        """All entries translating ``va`` across granules, side-effect free."""
        found = []
        for hierarchy in self.hierarchies.values():
            entry = hierarchy.peek(asid, va)
            if entry is not None:
                found.append(entry)
        return found

    @property
    def misses(self):
        return sum(h.misses for h in self.hierarchies.values())
