"""Page-walk caches (MMU caches), extended for agile paging.

Modern Intel cores keep three partial-translation tables that let a walk
skip the top one, two, or three levels of the radix tree. Section III-A
extends each entry with a single mode bit so the cached pointer may name
either a shadow page-table node (continue in shadow mode) or a guest
page-table node (continue in nested mode). This module implements that
extended design; with the mode fixed it degenerates to the stock caches
used by native and nested walks.
"""

from collections import OrderedDict

from repro.common.addrspace import takes
from repro.common.params import ROOT_LEVEL, level_shift

# What the cached pointer points at / which mode the walk continues in.
PWC_NATIVE = "native"  # node of a native page table (also used for sPT-as-1D)
PWC_SHADOW = "shadow"  # shadow page-table node: continue in shadow mode
PWC_GUEST = "guest"  # guest page-table node: continue in nested mode


class PWCStats:
    __slots__ = ("hits", "misses", "fills")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.fills = 0


class PageWalkCache:
    """Three skip tables: depth k caches the node reached after k levels.

    A depth-``k`` entry is tagged by the top ``k`` radix indices of the
    VA (plus the ASID) and stores the frame of the node that serves level
    ``ROOT_LEVEL - k``, together with the mode to continue in.
    """

    MAX_SKIP = 3  # never skips the leaf level

    def __init__(self, entries_per_table=32, enabled=True):
        self.enabled = enabled
        self.entries_per_table = entries_per_table
        # Index 1..3 used; deeper table = more levels skipped.
        self._tables = {k: OrderedDict() for k in range(1, self.MAX_SKIP + 1)}
        self.stats = PWCStats()

    @staticmethod
    @takes(va="addr")
    def _tag(asid, va, depth):
        # The top `depth` radix indices: the VA bits above the index
        # field of the last level the cached entry lets the walk skip.
        return asid, va >> level_shift(ROOT_LEVEL - depth + 1)

    @takes(va="addr")
    def lookup(self, asid, va):
        """Deepest available partial translation for ``va``.

        Returns ``(levels_skipped, frame, mode)`` or None. A successful
        hit means the walk may begin at level ``ROOT_LEVEL - skipped``
        inside the node at ``frame``, in ``mode``.
        """
        if not self.enabled:
            return None
        for depth in range(self.MAX_SKIP, 0, -1):
            table = self._tables[depth]
            key = self._tag(asid, va, depth)
            hit = table.get(key)
            if hit is not None:
                table.move_to_end(key)
                self.stats.hits += 1
                frame, mode = hit
                return depth, frame, mode
        self.stats.misses += 1
        return None

    @takes(va="addr", frame="frame")
    def insert(self, asid, va, depth, frame, mode):
        """Cache the node reached after walking ``depth`` levels of ``va``."""
        if not self.enabled or not 1 <= depth <= self.MAX_SKIP:
            return
        table = self._tables[depth]
        key = self._tag(asid, va, depth)
        if key not in table and len(table) >= self.entries_per_table:
            table.popitem(last=False)
        table[key] = (frame, mode)
        table.move_to_end(key)
        self.stats.fills += 1

    def invalidate_asid(self, asid):
        for table in self._tables.values():
            for key in [k for k in table if k[0] == asid]:
                del table[key]

    @takes(va="addr")
    def invalidate_prefix(self, asid, va):
        """Drop entries covering ``va`` (called when PT structure changes)."""
        for depth, table in self._tables.items():
            table.pop(self._tag(asid, va, depth), None)

    def flush(self):
        for table in self._tables.values():
            table.clear()

    def occupancy(self):
        """Live entries across all skip tables (for occupancy gauges)."""
        return sum(len(table) for table in self._tables.values())
