"""Set-associative, LRU-replacement translation lookaside buffers.

Entries are tagged by (ASID, virtual page number). An entry caches the
complete gVA=>hPA (or VA=>PA when native) translation, which is what all
four techniques in the paper produce on a fill — only the *walk* that
creates the entry differs between modes.
"""

from collections import OrderedDict

from repro.common.addrspace import takes


class TLBEntry:
    """One cached translation."""

    __slots__ = ("asid", "vpn", "frame", "page_shift", "writable", "dirty")

    def __init__(self, asid, vpn, frame, page_shift, writable, dirty=False):
        self.asid = asid
        self.vpn = vpn
        self.frame = frame
        self.page_shift = page_shift
        self.writable = writable
        # ``dirty`` records whether the backing leaf PTE already has its
        # dirty bit set; a write through a clean entry must re-walk so the
        # hardware/VMM can set dirty bits (Section III-B).
        self.dirty = dirty

    def __repr__(self):
        return "TLBEntry(asid=%d, vpn=%#x, frame=%d, w=%s, d=%s)" % (
            self.asid,
            self.vpn,
            self.frame,
            self.writable,
            self.dirty,
        )


class TLBStats:
    """Hit/miss/fill counters for one TLB structure."""

    __slots__ = ("hits", "misses", "fills", "evictions", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def miss_rate(self):
        total = self.accesses
        return self.misses / total if total else 0.0


class TLB:
    """One set-associative TLB for a single page size."""

    def __init__(self, entries, ways, page_shift, name="TLB"):
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.name = name
        self.page_shift = page_shift
        self.ways = ways
        self.num_sets = entries // ways
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = TLBStats()

    @takes(vpn="vpn")
    def _set_for(self, vpn):
        return self._sets[vpn % self.num_sets]

    @takes(va="gva")
    def lookup(self, asid, va, update_stats=True):
        """The entry translating ``va`` for ``asid``, or None on a miss."""
        vpn = va >> self.page_shift
        entries = self._set_for(vpn)
        key = (asid, vpn)
        entry = entries.get(key)
        if entry is None:
            if update_stats:
                self.stats.misses += 1
            return None
        entries.move_to_end(key)
        if update_stats:
            self.stats.hits += 1
        return entry

    def insert(self, entry):
        """Install ``entry``, evicting the set's LRU victim if full."""
        entries = self._set_for(entry.vpn)
        key = (entry.asid, entry.vpn)
        if key not in entries and len(entries) >= self.ways:
            entries.popitem(last=False)
            self.stats.evictions += 1
        entries[key] = entry
        entries.move_to_end(key)
        self.stats.fills += 1
        return entry

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        """Drop the entry for one page (the INVLPG analogue)."""
        vpn = va >> self.page_shift
        if self._set_for(vpn).pop((asid, vpn), None) is not None:
            self.stats.invalidations += 1

    def invalidate_asid(self, asid):
        """Drop every entry belonging to ``asid``."""
        for entries in self._sets:
            victims = [key for key in entries if key[0] == asid]
            for key in victims:
                del entries[key]
            self.stats.invalidations += len(victims)

    def flush(self):
        """Drop everything (a full TLB flush)."""
        for entries in self._sets:
            self.stats.invalidations += len(entries)
            entries.clear()

    def occupancy(self):
        """Number of valid entries currently cached."""
        return sum(len(entries) for entries in self._sets)

    # -- non-perturbing introspection (paranoid-mode invariant checks) ------

    @takes(va="gva")
    def peek(self, asid, va):
        """Like :meth:`lookup`, but touches neither stats nor LRU order.

        Invariant checking must observe the TLB without perturbing
        replacement decisions, or paranoid mode would change the very
        results it validates.
        """
        vpn = va >> self.page_shift
        return self._set_for(vpn).get((asid, vpn))

    def iter_entries(self):
        """Iterate every valid entry (no stats/LRU side effects)."""
        for entries in self._sets:
            yield from entries.values()
