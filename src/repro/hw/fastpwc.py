"""Flat list-backed page-walk cache for the fastpath core.

Same three skip tables as :class:`~repro.hw.pwc.PageWalkCache`, but each
table is a pair of parallel lists (tags and ``(frame, mode)`` payloads)
probed with ``list.index`` instead of an ``OrderedDict``. List order is
LRU order — index 0 is the replacement victim, the tail is MRU — so
every hit, fill, and eviction lands on the same entry as the reference,
which the parity suite checks op-for-op.
"""

from repro.common.addrspace import takes
from repro.hw.pwc import PageWalkCache


class FastPageWalkCache(PageWalkCache):
    """Packed-list reimplementation of the reference PWC."""

    def __init__(self, entries_per_table=32, enabled=True):
        super().__init__(entries_per_table, enabled)
        # Replace the OrderedDict tables with parallel tag/payload lists,
        # still indexed 1..MAX_SKIP by levels skipped.
        self._tables = None
        self._tags = {k: [] for k in range(1, self.MAX_SKIP + 1)}
        self._payloads = {k: [] for k in range(1, self.MAX_SKIP + 1)}

    @takes(va="addr")
    def lookup(self, asid, va):
        """Deepest available partial translation for ``va``."""
        if not self.enabled:
            return None
        for depth in range(self.MAX_SKIP, 0, -1):
            tags = self._tags[depth]
            tag = self._tag(asid, va, depth)
            try:
                i = tags.index(tag)
            except ValueError:
                continue
            payloads = self._payloads[depth]
            payload = payloads[i]
            if i != len(tags) - 1:  # move to MRU, as the dict did
                del tags[i]
                del payloads[i]
                tags.append(tag)
                payloads.append(payload)
            self.stats.hits += 1
            frame, mode = payload
            return depth, frame, mode
        self.stats.misses += 1
        return None

    @takes(va="addr", frame="frame")
    def insert(self, asid, va, depth, frame, mode):
        """Cache the node reached after walking ``depth`` levels of ``va``."""
        if not self.enabled or not 1 <= depth <= self.MAX_SKIP:
            return
        tags = self._tags[depth]
        payloads = self._payloads[depth]
        tag = self._tag(asid, va, depth)
        try:
            i = tags.index(tag)
        except ValueError:
            if len(tags) >= self.entries_per_table:
                del tags[0]
                del payloads[0]
        else:
            del tags[i]
            del payloads[i]
        tags.append(tag)
        payloads.append((frame, mode))
        self.stats.fills += 1

    def invalidate_asid(self, asid):
        for depth in range(1, self.MAX_SKIP + 1):
            tags = self._tags[depth]
            keep = [i for i, tag in enumerate(tags) if tag[0] != asid]
            if len(keep) != len(tags):
                payloads = self._payloads[depth]
                self._tags[depth] = [tags[i] for i in keep]
                self._payloads[depth] = [payloads[i] for i in keep]

    @takes(va="addr")
    def invalidate_prefix(self, asid, va):
        """Drop entries covering ``va`` (called when PT structure changes)."""
        for depth in range(1, self.MAX_SKIP + 1):
            tags = self._tags[depth]
            try:
                i = tags.index(self._tag(asid, va, depth))
            except ValueError:
                continue
            del tags[i]
            del self._payloads[depth][i]

    def flush(self):
        for depth in range(1, self.MAX_SKIP + 1):
            del self._tags[depth][:]
            del self._payloads[depth][:]

    def occupancy(self):
        """Live entries across all skip tables (for occupancy gauges)."""
        return sum(len(tags) for tags in self._tags.values())
