"""Flat array-backed TLB structures: the fastpath core's hot stores.

Each :class:`FastTLB` set is a pair of parallel Python lists holding
packed integer keys and values instead of an ``OrderedDict`` of
:class:`~repro.hw.tlb.TLBEntry` objects. ``list.index`` runs the
associative probe in C, LRU order is list order (index 0 is the LRU
victim, the tail is MRU), and a hit never allocates on the batch path —
the packed value *is* the translation.

The packing is deliberately boring so the equivalence suite can reason
about it: a key is ``(vpn << 16) | asid``; a value is
``(frame << 8) | (page_shift << 2) | (writable << 1) | dirty``. Every
operation reproduces the reference :class:`~repro.hw.tlb.TLB` exactly —
same stats arithmetic, same eviction victim, same LRU updates — which
``tests/fastpath/test_tlb_parity.py`` proves op-for-op.
"""

from repro.common.addrspace import takes
from repro.hw.tlb import TLB, TLBEntry
from repro.hw.tlbhierarchy import MultiSizeTLB, TLBHierarchy

# Key layout: the ASID occupies the low 16 bits, the VPN the rest.
KEY_ASID_BITS = 16
KEY_ASID_MASK = (1 << KEY_ASID_BITS) - 1
# Value layout: frame above bit 8; page_shift in bits 2..7; then the
# writable and dirty permission bits the write-upgrade check reads.
VAL_FRAME_BITS = 8
VAL_WD_MASK = 0b11


@takes(frame="hfn")
def pack_value(frame, page_shift, writable, dirty):
    """Pack one translation into a FastTLB value word."""
    return ((frame << VAL_FRAME_BITS) | (page_shift << 2)
            | (bool(writable) << 1) | bool(dirty))


def unpack_entry(asid, vpn, value):
    """Materialize a reference-compatible :class:`TLBEntry` from a value."""
    return TLBEntry(
        asid=asid,
        vpn=vpn,
        frame=value >> VAL_FRAME_BITS,
        page_shift=(value >> 2) & 0x3F,
        writable=bool(value & 2),
        dirty=bool(value & 1),
    )


class FastTLB(TLB):
    """Packed-list reimplementation of the reference set-associative TLB."""

    def __init__(self, entries, ways, page_shift, name="TLB"):
        super().__init__(entries, ways, page_shift, name)
        # Replace the OrderedDict sets with parallel key/value lists.
        del self._sets
        self._keys = [[] for _ in range(self.num_sets)]
        self._vals = [[] for _ in range(self.num_sets)]

    @takes(va="gva")
    def lookup(self, asid, va, update_stats=True):
        """The entry translating ``va`` for ``asid``, or None on a miss."""
        vpn = va >> self.page_shift
        set_index = vpn % self.num_sets
        keys = self._keys[set_index]
        key = (vpn << KEY_ASID_BITS) | asid
        try:
            i = keys.index(key)
        except ValueError:
            if update_stats:
                self.stats.misses += 1
            return None
        vals = self._vals[set_index]
        value = vals[i]
        if i != len(keys) - 1:  # move to MRU (tail), as the dict did
            del keys[i]
            del vals[i]
            keys.append(key)
            vals.append(value)
        if update_stats:
            self.stats.hits += 1
        return unpack_entry(asid, vpn, value)

    def insert(self, entry):
        """Install ``entry``, evicting the set's LRU victim if full."""
        vpn = entry.vpn
        set_index = vpn % self.num_sets
        keys = self._keys[set_index]
        vals = self._vals[set_index]
        key = (vpn << KEY_ASID_BITS) | entry.asid
        try:
            i = keys.index(key)
        except ValueError:
            if len(keys) >= self.ways:
                del keys[0]
                del vals[0]
                self.stats.evictions += 1
        else:
            del keys[i]
            del vals[i]
        keys.append(key)
        vals.append(pack_value(entry.frame, entry.page_shift,
                               entry.writable, entry.dirty))
        self.stats.fills += 1
        return entry

    @takes(va="gva")
    def invalidate_page(self, asid, va):
        """Drop the entry for one page (the INVLPG analogue)."""
        vpn = va >> self.page_shift
        set_index = vpn % self.num_sets
        keys = self._keys[set_index]
        try:
            i = keys.index((vpn << KEY_ASID_BITS) | asid)
        except ValueError:
            return
        del keys[i]
        del self._vals[set_index][i]
        self.stats.invalidations += 1

    def invalidate_asid(self, asid):
        """Drop every entry belonging to ``asid``."""
        for set_index in range(self.num_sets):
            keys = self._keys[set_index]
            keep = [i for i, key in enumerate(keys)
                    if key & KEY_ASID_MASK != asid]
            removed = len(keys) - len(keep)
            if removed:
                vals = self._vals[set_index]
                self._keys[set_index] = [keys[i] for i in keep]
                self._vals[set_index] = [vals[i] for i in keep]
                self.stats.invalidations += removed

    def flush(self):
        """Drop everything (a full TLB flush)."""
        for set_index in range(self.num_sets):
            keys = self._keys[set_index]
            self.stats.invalidations += len(keys)
            del keys[:]
            del self._vals[set_index][:]

    def occupancy(self):
        """Number of valid entries currently cached."""
        return sum(len(keys) for keys in self._keys)

    # -- non-perturbing introspection (paranoid-mode invariant checks) ------

    @takes(va="gva")
    def peek(self, asid, va):
        """Like :meth:`lookup`, but touches neither stats nor LRU order."""
        vpn = va >> self.page_shift
        set_index = vpn % self.num_sets
        try:
            i = self._keys[set_index].index((vpn << KEY_ASID_BITS) | asid)
        except ValueError:
            return None
        return unpack_entry(asid, vpn, self._vals[set_index][i])

    def iter_entries(self):
        """Iterate every valid entry (no stats/LRU side effects)."""
        for set_index in range(self.num_sets):
            vals = self._vals[set_index]
            for i, key in enumerate(self._keys[set_index]):
                yield unpack_entry(key & KEY_ASID_MASK,
                                   key >> KEY_ASID_BITS, vals[i])


class FastTLBHierarchy(TLBHierarchy):
    """Reference hierarchy logic over packed-list TLB arrays."""

    TLB_CLS = FastTLB


class FastMultiSizeTLB(MultiSizeTLB):
    """Reference multi-granule front end over packed-list hierarchies."""

    HIERARCHY_CLS = FastTLBHierarchy
