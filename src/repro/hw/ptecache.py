"""A data-cache model for page-table entries.

Commodity processors cache page-table entries in their ordinary data
caches [Intel optimization manual; paper Section II], so repeated walk
references to the same page-table cache line are much cheaper than
DRAM. The flat per-reference cost in :class:`CostConfig` models the
*average*; enabling this structure makes the split explicit — each walk
reference is classified hit/cheap or miss/expensive — and provides an
ablation axis for how much PTE caching matters per paging mode (nested
walks touch many more lines, so they benefit more).

Geometry: 64-byte lines hold 8 PTEs; lines are tagged by (address
space, node frame, line-within-node) and kept in a set-associative LRU
array like a small slice of an L2 cache.
"""

from collections import OrderedDict

from repro.common.addrspace import takes

PTES_PER_LINE = 8


class PTECacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self):
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PTECache:
    """Set-associative cache of page-table cache lines."""

    def __init__(self, lines=256, ways=8):
        if lines <= 0 or ways <= 0 or lines % ways:
            raise ValueError("lines must be a positive multiple of ways")
        self.ways = ways
        self.num_sets = lines // ways
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = PTECacheStats()

    @takes(frame="frame")
    def access(self, space, frame, index):
        """Touch the line holding entry ``index`` of node ``frame``.

        Returns True on a hit; on a miss the line is filled. ``space``
        distinguishes guest-physical from host-physical frames.
        """
        line = index // PTES_PER_LINE
        key = (space, frame, line)
        entries = self._sets[hash(key) % self.num_sets]
        if key in entries:
            entries.move_to_end(key)
            self.stats.hits += 1
            return True
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[key] = True
        self.stats.misses += 1
        return False

    @takes(frame="frame")
    def invalidate_frame(self, space, frame):
        """Drop every line of one node (the frame was freed/repurposed)."""
        for entries in self._sets:
            for key in [k for k in entries if k[0] == space and k[1] == frame]:
                del entries[key]

    def flush(self):
        for entries in self._sets:
            entries.clear()
