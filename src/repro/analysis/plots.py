"""ASCII rendering of the paper's figures.

No plotting library is assumed: Figure 5 renders as horizontal stacked
bars (``#`` for page-walk overhead, ``%`` for VMM overhead), one group
per workload — close enough to the paper's stacked-bar layout to eyeball
the shape in a terminal or a text report.
"""

CONFIG_ORDER = ("B", "N", "S", "A")
MODE_TO_LABEL = {"native": "B", "nested": "N", "shadow": "S", "agile": "A",
                 "shsp": "H"}


def render_figure5(results, page_size_name="4K", width=60, max_overhead=None):
    """Render one page-size slice of Figure 5 as ASCII bars.

    ``results`` is the dict from
    :func:`repro.analysis.experiments.figure5`:
    {workload: {(page_size_name, mode): RunMetrics}}.
    """
    bars = []
    for name, configs in results.items():
        for (size, mode), metrics in configs.items():
            if size != page_size_name:
                continue
            bars.append((name, MODE_TO_LABEL.get(mode, mode[:1].upper()),
                         metrics.page_walk_overhead, metrics.vmm_overhead))
    if not bars:
        return "(no data for page size %s)" % page_size_name
    peak = max_overhead or max(pw + vm for _n, _m, pw, vm in bars) or 1.0
    scale = width / peak
    lines = [
        "Figure 5 (%s pages)  #=page-walk  %%=VMM  (full width = %.0f%%)"
        % (page_size_name, 100 * peak)
    ]
    last_name = None
    order = {label: i for i, label in enumerate(("B", "N", "S", "H", "A"))}
    for name, label, pw, vm in sorted(
            bars, key=lambda b: (b[0], order.get(b[1], 9))):
        if name != last_name:
            lines.append("")
            lines.append(name)
            last_name = name
        walk_cells = int(round(pw * scale))
        vmm_cells = int(round(vm * scale))
        bar = "#" * walk_cells + "%" * vmm_cells
        lines.append("  %s |%-*s| %5.1f%%" % (label, width, bar[:width],
                                              100 * (pw + vm)))
    return "\n".join(lines)


def render_mode_mix(metrics_by_workload, width=50):
    """Render Table VI's miss mix as per-workload segmented bars."""
    symbols = {"Shadow": ".", "L4": "4", "L3": "3", "L2": "2", "L1": "1",
               "Nested": "N"}
    lines = ["Agile TLB-miss mix  .=shadow  4/3/2/1=switch level  N=nested"]
    for name, metrics in metrics_by_workload.items():
        mix = metrics.mode_mix()
        bar = ""
        for column, symbol in symbols.items():
            bar += symbol * int(round(mix.get(column, 0.0) * width))
        lines.append("  %-10s |%-*s| avg %.2f refs/miss"
                     % (name, width, bar[:width], metrics.avg_refs_per_miss))
    return "\n".join(lines)
