"""The paper's two-step evaluation methodology (Section VI).

The authors could not run agile paging on real hardware, so they:

* **Step 1** — ran each workload under *shadow* paging with an
  instrumented KVM, traced every guest page-table update, replayed the
  shadow=>nested policy offline, and produced (a) the lists of guest
  virtual addresses that would live under nested mode at each switching
  level and (b) the fraction of VMtraps agile paging eliminates (FV_i).
* **Step 2** — ran the workload again under *nested* paging with
  BadgerTrap (TLB misses turned into traps), classified each miss
  address against the step-1 lists, and produced the fraction of misses
  served at each switching level (FN_i).
* Fed both into the Table IV linear model.

This module reproduces the methodology against the simulator, using the
``pt_write_hook`` (the trace-cmd analogue) and ``miss_hook`` (the
BadgerTrap analogue). Its projections are cross-checked against direct
agile simulation in the test suite and in EXPERIMENTS.md.
"""

from collections import defaultdict

from repro.common.config import sandy_bridge_config
from repro.common.params import level_shift
from repro.core.costmodel import AgileFractions
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.vmm import traps as T


class PTUpdateTrace:
    """Step-1 output: which guest-PT nodes turn nested, and FV fractions."""

    def __init__(self):
        # (level, covering_prefix) for every node classified as nested.
        self.nested_nodes = set()
        self.total_pt_writes = 0
        self.eliminated_pt_writes = 0
        self.trap_counts = {}
        self.trap_cycles = {}
        self.metrics = None

    @property
    def fv(self):
        """Fraction of each VMtrap category agile paging eliminates.

        PT-write traps covered by nested-mode nodes disappear; context
        switches and dirty syncs are eliminated by the Section IV
        hardware optimizations; INVLPGs over nested regions follow
        their PT writes.
        """
        pt_fraction = (
            self.eliminated_pt_writes / self.total_pt_writes
            if self.total_pt_writes
            else 0.0
        )
        return {
            T.PT_WRITE: pt_fraction,
            T.INVLPG: pt_fraction,
            T.CONTEXT_SWITCH: 1.0,  # CR3 cache (Section IV)
            T.DIRTY_SYNC: 1.0,  # A/D hardware assist (Section IV)
        }

    def covering_level(self, va):
        """Topmost nested node covering ``va``, or None (full shadow)."""
        for level in (4, 3, 2, 1):
            shift = level_shift(level + 1) if level < 4 else None
            if level == 4:
                if (4, 0) in self.nested_nodes:
                    return 4
                continue
            if (level, va >> shift) in self.nested_nodes:
                return level
        return None


def run_step1(workload, config=None, write_threshold=2, write_interval=200_000):
    """Step 1: shadow-paging run + offline shadow=>nested classification.

    Returns a :class:`PTUpdateTrace`.
    """
    if config is None:
        config = sandy_bridge_config()
    system = System(config.with_mode("shadow"))
    trace = PTUpdateTrace()
    events = []  # (level, prefix_key, now)

    def hook(node, leaf_va, now):
        meta = _node_meta(system, node)
        if meta is None or meta.prefix is None:
            return
        if node.level == 4:
            key = (4, 0)
        else:
            key = (node.level, meta.prefix >> level_shift(node.level + 1))
        events.append((key, now))

    system.vmm.pt_write_hook = hook
    trace.metrics = Simulator(system).run(workload)
    trace.trap_counts = dict(system.vmm.traps.counts)
    trace.trap_cycles = dict(system.vmm.traps.cycles)
    # Consider only the measurement window, consistent with every other
    # metric: the trap counters above were reset at start_measurement,
    # and a multi-minute real run amortizes its warmup the same way.
    start = system._measurement_start
    events = [(key, now) for key, now in events if now >= start]
    # Offline policy replay: a node with `write_threshold` writes inside
    # one `write_interval` window becomes nested; writes landing on an
    # already-nested node are the traps agile paging eliminates.
    windows = {}
    nested = set()
    eliminated = 0
    for key, now in events:
        if key in nested:
            eliminated += 1
            continue
        start, count = windows.get(key, (now, 0))
        if now - start > write_interval:
            start, count = now, 0
        count += 1
        windows[key] = (start, count)
        if count >= write_threshold:
            nested.add(key)
    # A nested node makes its descendants nested too: normalize so the
    # covering_level query (which looks for the topmost) stays simple.
    trace.nested_nodes = nested
    trace.total_pt_writes = len(events)
    trace.eliminated_pt_writes = eliminated
    return trace


def _node_meta(system, node):
    for state in system.vmm.states.values():
        if state.manager is None:
            continue
        meta = state.manager.node_meta.get(node.frame)
        if meta is not None:
            return meta
    return None


def run_step2(workload, trace, config=None):
    """Step 2: nested-paging run + BadgerTrap-style miss classification.

    Returns ``(AgileFractions, nested_metrics)``.
    """
    if config is None:
        config = sandy_bridge_config()
    system = System(config.with_mode("nested"))
    miss_by_level = defaultdict(int)
    total = [0]

    def hook(va, _result):
        total[0] += 1
        level = trace.covering_level(va)
        if level is not None:
            miss_by_level[level] += 1

    system.mmu.miss_hook = hook
    nested_metrics = Simulator(system).run(workload)
    fractions = AgileFractions(fv=dict(trace.fv))
    if total[0]:
        fractions.fn = {
            level: count / total[0] for level, count in miss_by_level.items()
        }
    return fractions, nested_metrics


def two_step_projection(workload_factory, config=None):
    """Run the complete methodology for one workload.

    ``workload_factory`` must build a *fresh* deterministic workload per
    call (the methodology runs it multiple times, as the paper does).
    Returns a dict with the fractions, the runs, and the projected agile
    overheads from the Table IV model.
    """
    from repro.core import costmodel

    if config is None:
        config = sandy_bridge_config()
    trace = run_step1(workload_factory(), config)
    fractions, nested_metrics = run_step2(workload_factory(), trace, config)
    native_system = System(config.with_mode("native"))
    native_metrics = Simulator(native_system).run(workload_factory())

    native_run = costmodel.measured_run_from_metrics(native_metrics)
    shadow_run = costmodel.measured_run_from_metrics(trace.metrics)
    nested_run = costmodel.measured_run_from_metrics(nested_metrics)
    e_ideal = costmodel.ideal_cycles(native_run)
    pw_agile = costmodel.agile_walk_overhead(
        fractions, shadow_run, nested_run,
        base_misses=native_run.tlb_misses, e_ideal=e_ideal,
    )
    vmm_agile = costmodel.agile_vmm_overhead(
        fractions, shadow_run, trace.trap_cycles, e_ideal=e_ideal,
    )
    return {
        "fractions": fractions,
        "trace": trace,
        "native": native_metrics,
        "shadow": trace.metrics,
        "nested": nested_metrics,
        "projected_pw_overhead": pw_agile,
        "projected_vmm_overhead": vmm_agile,
    }
