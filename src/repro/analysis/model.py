"""Analysis-side access to the Table IV performance model.

The model itself lives in :mod:`repro.core.costmodel`; this module adds
the comparison helpers the analysis layer uses to put *direct* agile
simulation and the *projected* (two-step) agile numbers side by side,
which is how EXPERIMENTS.md validates the methodology port.
"""

from repro.core.costmodel import (
    AgileFractions,
    MeasuredRun,
    agile_vmm_overhead,
    agile_walk_overhead,
    ideal_cycles,
    measured_run_from_metrics,
    page_walk_overhead,
    vmm_overhead,
)

__all__ = [
    "AgileFractions",
    "MeasuredRun",
    "agile_vmm_overhead",
    "agile_walk_overhead",
    "ideal_cycles",
    "measured_run_from_metrics",
    "page_walk_overhead",
    "vmm_overhead",
    "compare_projection_to_direct",
]


def compare_projection_to_direct(projection, direct_metrics):
    """Put the two-step projection next to a direct agile simulation.

    ``projection`` is the dict from
    :func:`repro.analysis.twostep.two_step_projection`;
    ``direct_metrics`` a RunMetrics from an agile-mode run of the same
    workload. Returns a dict of (projected, direct) pairs.
    """
    return {
        "pw_overhead": (
            projection["projected_pw_overhead"],
            direct_metrics.page_walk_overhead,
        ),
        "vmm_overhead": (
            projection["projected_vmm_overhead"],
            direct_metrics.vmm_overhead,
        ),
        "total_overhead": (
            projection["projected_pw_overhead"] + projection["projected_vmm_overhead"],
            direct_metrics.page_walk_overhead + direct_metrics.vmm_overhead,
        ),
    }
