"""Formatters that regenerate the paper's tables from simulator output."""

from repro.core.metrics import TABLE6_COLUMNS


def format_table(headers, rows, title=None):
    """Plain-text table (the benchmarks print these)."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [str(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def table1_rows(measurements):
    """Table I: the qualitative trade-off grid, from micro-measurements.

    ``measurements`` maps mode -> dict with keys ``max_refs`` (measured
    worst-case walk references) and ``pt_update_traps`` (VMtraps per
    guest PT update).
    """
    order = ("native", "nested", "shadow", "agile")
    titles = {
        "native": "Base Native",
        "nested": "Nested Paging",
        "shadow": "Shadow Paging",
        "agile": "Agile Paging",
    }
    translation = {
        "native": "VA=>PA",
        "nested": "gVA=>hPA",
        "shadow": "gVA=>hPA",
        "agile": "gVA=>hPA",
    }
    hardware = {
        "native": "1D page walk",
        "nested": "2D+1D page walk",
        "shadow": "1D page walk",
        "agile": "2D+1D walk with switching",
    }
    rows = []
    for mode in order:
        info = measurements[mode]
        updates = "fast direct" if info["pt_update_traps"] == 0 else "slow mediated by VMM"
        rows.append((
            titles[mode],
            "fast (%s)" % translation[mode],
            info["max_refs"],
            updates,
            hardware[mode],
        ))
    return rows


TABLE2_LEVELS = (
    ("PTptr", "page table pointer"),
    ("L4", "page table level 4 entry"),
    ("L3", "page table level 3 entry"),
    ("L2", "page table level 2 entry"),
    ("L1", "page table entry (PTE)"),
)


def table2_rows(measured_totals):
    """Table II: per-level memory references by degree of nesting.

    ``measured_totals`` maps degree d (0..4 shadow levels nested, plus
    "nested") to the measured total references; the per-level split is
    derived from the architecture (0/4 for the pointer, 1/5 per level).
    """
    def split(degree):
        if degree == "nested":
            return [4, 5, 5, 5, 5]
        per_level = [1] * 4
        for i in range(4 - degree, 4):
            per_level[i] = 5
        return [0] + per_level

    rows = []
    names = ["PTptr"] + [name for name, _ in TABLE2_LEVELS[1:]]
    for i, name in enumerate(names):
        native = 0 if name == "PTptr" else 1
        nested = 4 if name == "PTptr" else 5
        agile = "%d or %d" % (native, nested)
        rows.append((name, native, nested, native, agile))
    totals = ("All", 4, measured_totals["nested"], 4,
              "%d-%d" % (measured_totals[0], measured_totals["nested"]))
    rows.append(totals)
    return rows


def table6_rows(results):
    """Table VI: % of TLB misses per agile mode + avg refs per miss.

    ``results`` maps workload name -> RunMetrics from an agile run with
    page-walk caches disabled.
    """
    rows = []
    for name, metrics in results.items():
        mix = metrics.mode_mix()
        row = [name]
        for column, _key in TABLE6_COLUMNS:
            row.append("%.1f%%" % (100.0 * mix.get(column, 0.0)))
        row.append("%.2f" % metrics.avg_refs_per_miss)
        rows.append(tuple(row))
    return rows


def figure5_rows(results):
    """Figure 5 as a table: overhead components per configuration.

    ``results`` maps workload -> {(page_size, mode): RunMetrics}.
    """
    rows = []
    for name, configs in results.items():
        for (size, mode), metrics in sorted(configs.items()):
            rows.append((
                name,
                "%s:%s" % (size, {"native": "B", "nested": "N",
                                  "shadow": "S", "agile": "A"}[mode]),
                "%.1f%%" % (100 * metrics.page_walk_overhead),
                "%.1f%%" % (100 * metrics.vmm_overhead),
                "%.1f%%" % (100 * (metrics.page_walk_overhead
                                   + metrics.vmm_overhead)),
            ))
    return rows
