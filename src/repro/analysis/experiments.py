"""Experiment runners: one function per table/figure in the paper.

Each returns structured data; the benchmark harnesses print it in the
paper's row format and EXPERIMENTS.md records paper-vs-measured.

The grid-shaped experiments (Table V, Table VI, Figure 5) are built on
:mod:`repro.runner`: each ``<name>_cells`` function enumerates the
sweep as frozen :class:`CellSpec` cells, and the matching experiment
function executes them through a :class:`SweepRunner` — pass
``runner=SweepRunner(workers=N, cache=ResultCache(...))`` to fan the
sweep across processes and/or reuse cached cells; the default runs
serially in-process with results identical to the pre-runner code path.
The hand-instrumented micro-measurements (Tables I/II, Figure 3) poke
VMM internals mid-run and stay direct.
"""

from dataclasses import replace

from repro.common.config import (
    ALL_MODES,
    MODE_AGILE,
    MODE_NATIVE,
    MODE_NESTED,
    MODE_SHADOW,
    HostConfig,
    sandy_bridge_config,
)
from repro.common.effects import policy_decision
from repro.common.params import FOUR_KB, TWO_MB
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.runner import CellSpec, SweepRunner
from repro.workloads.suite import SUITE

DEFAULT_OPS = 60_000


def run_one(workload, mode, page_size=FOUR_KB, **overrides):
    """Run one workload under one configuration; returns RunMetrics."""
    config = sandy_bridge_config(mode=mode, page_size=page_size, **overrides)
    system = System(config)
    return Simulator(system).run(workload)


def _sweep(cells, runner):
    """Run cells through the given (or a default serial) runner."""
    if runner is None:
        runner = SweepRunner(workers=1)
    return runner.run(cells).raise_on_failure()


def _suite_classes(workload_names):
    return [cls for cls in SUITE
            if workload_names is None or cls.name in workload_names]


# -- Table I ---------------------------------------------------------------------


def table1_measurements(ops=2_000):
    """Micro-measurements behind the Table I trade-off grid.

    Measures, per mode: worst-case memory references for one TLB miss
    (PWC disabled, cold caches) and whether a guest PT update traps.
    """
    measurements = {}
    for mode in ALL_MODES:
        config = sandy_bridge_config(mode=mode)
        config = replace(config, pwc=replace(config.pwc, enabled=False))
        system = System(config)
        simulator = Simulator(system)
        api = simulator.api
        api.spawn()
        base = api.mmap(4 << 12)
        for i in range(4):
            api.write(base + i * 4096)
        if mode == MODE_AGILE:
            # Force the worst case: fully nested (sptr == gptr, 24 refs).
            proc = system.kernel.current
            manager = system.vmm.states[proc.pid].manager
            manager.fully_nested = True
        system.mmu.flush_all()
        before_refs = system.mmu.counters.walk_refs
        before_misses = system.mmu.counters.tlb_misses
        api.read(base)
        max_refs = system.mmu.counters.walk_refs - before_refs
        assert system.mmu.counters.tlb_misses == before_misses + 1
        # Now: does a page-table update trap to the VMM?
        if mode == MODE_AGILE:
            # Steady state: the dynamic leaf is nested, updates direct.
            traps_before = system.vmm.traps.count("pt_write")
            system.kernel.current.page_table.set_flags(base, writable=False)
            pt_update_traps = system.vmm.traps.count("pt_write") - traps_before
        elif mode in (MODE_SHADOW,):
            traps_before = system.vmm.traps.count("pt_write")
            system.kernel.current.page_table.set_flags(base, writable=False)
            pt_update_traps = system.vmm.traps.count("pt_write") - traps_before
        elif mode == MODE_NESTED:
            system.kernel.current.page_table.set_flags(base, writable=False)
            pt_update_traps = system.vmm.traps.count("pt_write")
        else:
            system.kernel.current.page_table.set_flags(base, writable=False)
            pt_update_traps = 0
        measurements[mode] = {
            "max_refs": max_refs,
            "pt_update_traps": pt_update_traps,
        }
    return measurements


# -- Table II / Figure 3 ------------------------------------------------------------


@policy_decision
def table2_measurements():
    """Measured total walk references at every degree of nesting.

    Builds one agile system, walks the same address with the switching
    point at each level (PWC disabled), and records total references.
    Returns {0: 4, 1: 8, 2: 12, 3: 16, 4: 20, "nested": 24}.
    """
    config = sandy_bridge_config(mode=MODE_AGILE)
    config = replace(config, pwc=replace(config.pwc, enabled=False))
    system = System(config)
    api = Simulator(system).api
    api.spawn()
    base = api.mmap(1 << 12)
    api.write(base)
    proc = system.kernel.current
    manager = system.vmm.states[proc.pid].manager

    # Identify the guest PT node at each level along base's path.
    from repro.common.params import pt_index

    nodes_by_level = {}
    node = proc.page_table.root
    nodes_by_level[4] = node
    for level in (4, 3, 2):
        node = proc.page_table.node_at(node.get(pt_index(base, level)).frame)
        nodes_by_level[level - 1] = node

    def measure():
        system.mmu.flush_all()
        before = system.mmu.counters.walk_refs
        api.read(base)
        return system.mmu.counters.walk_refs - before

    totals = {}
    manager.revert_all()
    totals[0] = measure()
    # Switch progressively deeper subtrees: d = nested guest levels.
    for degree, level in ((1, 1), (2, 2), (3, 3), (4, 4)):
        manager.revert_all()
        manager.switch_to_nested(nodes_by_level[level].frame)
        totals[degree] = measure()
    # Full nested: a separate nested-mode system would report 24; force
    # the agile full-nested path (sptr == gptr).
    manager.revert_all()
    manager.fully_nested = True
    totals["nested"] = measure()
    manager.fully_nested = False
    return totals


@policy_decision
def figure3_journals():
    """Chronological access orders per degree of nesting (Figure 3)."""
    config = sandy_bridge_config(mode=MODE_AGILE)
    config = replace(config, pwc=replace(config.pwc, enabled=False))
    system = System(config)
    api = Simulator(system).api
    api.spawn()
    base = api.mmap(1 << 12)
    api.write(base)
    proc = system.kernel.current
    manager = system.vmm.states[proc.pid].manager
    from repro.common.params import pt_index

    node = proc.page_table.root
    nodes_by_level = {4: node}
    for level in (4, 3, 2):
        node = proc.page_table.node_at(node.get(pt_index(base, level)).frame)
        nodes_by_level[level - 1] = node

    journals = {}

    def capture(label):
        # Prime with a real walk (not a TLB hit) so the VMM refills any
        # shadow entries zapped by the preceding mode change; then
        # journal one clean walk.
        system.mmu.flush_all()
        api.read(base)
        system.mmu.flush_all()
        system.mmu.walker.journal = []
        api.read(base)
        journals[label] = list(system.mmu.walker.journal)
        system.mmu.walker.journal = None

    manager.revert_all()
    capture("shadow-only")
    for label, level in (("switch@4th", 1), ("switch@3rd", 2),
                         ("switch@2nd", 3), ("switch@1st", 4)):
        manager.revert_all()
        manager.switch_to_nested(nodes_by_level[level].frame)
        capture(label)
    manager.revert_all()
    manager.fully_nested = True
    capture("nested-only")
    return journals


# -- Figure 5 -----------------------------------------------------------------------------


def figure5_cells(ops=DEFAULT_OPS, workload_names=None,
                  page_sizes=(FOUR_KB, TWO_MB), modes=ALL_MODES, **overrides):
    """The Figure 5 grid as cells: workloads x page sizes x modes."""
    cells = []
    for cls in _suite_classes(workload_names):
        for page_size in page_sizes:
            for mode in modes:
                cells.append(CellSpec.make(
                    cls.name, mode=mode, page_size=page_size, ops=ops,
                    overrides=overrides or None))
    return cells


def figure5(ops=DEFAULT_OPS, workload_names=None, page_sizes=(FOUR_KB, TWO_MB),
            modes=ALL_MODES, runner=None, **overrides):
    """The headline experiment: the full grid of Figure 5.

    Returns {workload_name: {(page_size_name, mode): RunMetrics}}.
    """
    cells = figure5_cells(ops=ops, workload_names=workload_names,
                          page_sizes=page_sizes, modes=modes, **overrides)
    sweep = _sweep(cells, runner)
    results = {}
    for cell in cells:
        per_config = results.setdefault(cell.workload, {})
        per_config[(cell.page_size, cell.mode)] = sweep.metrics_for(cell)
    return results


def headline_claims(fig5_results, page_size_name="4K"):
    """Section VII-A: agile vs best-of-constituents and vs native.

    Returns per-workload dicts plus geometric means, using total
    (pw + vmm) overhead as the comparison metric.
    """
    import math

    rows = []
    for name, configs in fig5_results.items():
        def total(mode):
            metrics = configs[(page_size_name, mode)]
            return metrics.page_walk_overhead + metrics.vmm_overhead

        native = total(MODE_NATIVE)
        nested = total(MODE_NESTED)
        shadow = total(MODE_SHADOW)
        agile = total(MODE_AGILE)
        best = min(nested, shadow)
        # Execution time ratio: (1 + overhead_a) / (1 + overhead_b).
        vs_best = (1 + best) / (1 + agile)
        vs_native = (1 + agile) / (1 + native)
        rows.append({
            "workload": name,
            "native": native,
            "nested": nested,
            "shadow": shadow,
            "agile": agile,
            "best_constituent": best,
            "agile_speedup_vs_best": vs_best,
            "agile_slowdown_vs_native": vs_native,
        })
    geo = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))
    summary = {
        "geomean_speedup_vs_best": geo([r["agile_speedup_vs_best"] for r in rows]),
        "geomean_slowdown_vs_native": geo([r["agile_slowdown_vs_native"] for r in rows]),
        "max_slowdown_vs_native": max(r["agile_slowdown_vs_native"] for r in rows),
    }
    return rows, summary


# -- Table V --------------------------------------------------------------------------------------


def table5_cells(ops=30_000, workload_names=None):
    """The Table V characterization sweep: the whole suite under shadow.

    Shadow paging exposes each workload's defining ratio — TLB-miss
    traffic vs page-table-update traps — in one configuration.
    """
    return [CellSpec.make(cls.name, mode=MODE_SHADOW, ops=ops)
            for cls in _suite_classes(workload_names)]


def table5(ops=30_000, workload_names=None, runner=None):
    """Table V workload characterization: {workload_name: RunMetrics}."""
    cells = table5_cells(ops=ops, workload_names=workload_names)
    sweep = _sweep(cells, runner)
    return {cell.workload: sweep.metrics_for(cell) for cell in cells}


# -- Table VI -------------------------------------------------------------------------------------


def table6_cells(ops=DEFAULT_OPS, workload_names=None):
    """Table VI as cells: agile mode, 4 KB pages, PWCs disabled."""
    return [CellSpec.make(cls.name, mode=MODE_AGILE, ops=ops,
                          overrides={"pwc.enabled": False})
            for cls in _suite_classes(workload_names)]


def table6(ops=DEFAULT_OPS, workload_names=None, runner=None):
    """Table VI: agile-mode TLB-miss mix with PWCs disabled, 4 KB pages."""
    cells = table6_cells(ops=ops, workload_names=workload_names)
    sweep = _sweep(cells, runner)
    return {cell.workload: sweep.metrics_for(cell) for cell in cells}


# -- Consolidation (multi-VM) -----------------------------------------------------------


VIRTUALIZED_MODES = (MODE_NESTED, MODE_SHADOW, MODE_AGILE)


def consolidation_curve(ops=4_000, ratios=(1, 2, 4), modes=VIRTUALIZED_MODES,
                        vpid=False, seed=7, **overrides):
    """Figure-5-style per-VM overhead vs. consolidation ratio.

    Runs N copies of the CR3-heavy consolidation tenant
    (:class:`~repro.workloads.consolidation.ContextSwitchStorm`, distinct
    seeds) on one :class:`~repro.core.hostsys.HostSystem` per (mode, N)
    point and reports the mean per-VM translation overhead — the same
    ``page_walk + vmm`` split Figure 5 plots, measured on each VM's own
    cycles.

    ``vpid=False`` (the default here) models a host without VPID-tagged
    TLBs: every world switch flushes the incoming guest's TLBs, so the
    per-VM walk overhead grows with the consolidation ratio at a
    mode-dependent slope — steeply for nested's two-dimensional walks,
    gently for shadow's native-depth walks, with agile tracking shadow
    once its hot subtrees converge. Shadow instead pays a CR3 trap per
    guest context switch, which agile's gCR3 cache absorbs (Section IV);
    at 4:1 the curve shows agile at or below min(nested, shadow).

    Returns ``{(mode, ratio): row}`` where each row carries the mean and
    per-VM overhead components plus host-level accounting.
    """
    results = {}
    from repro.core.hostsys import run_consolidated
    from repro.workloads.consolidation import ContextSwitchStorm

    for mode in modes:
        machine_config = sandy_bridge_config(mode=mode, **overrides)
        for ratio in ratios:
            host_config = HostConfig(vms=ratio, vpid=vpid)
            workloads = [ContextSwitchStorm(ops=ops, seed=seed + i)
                         for i in range(ratio)]
            per_vm, report = run_consolidated(
                workloads, host_config=host_config,
                machine_config=machine_config)
            overheads = [m.page_walk_overhead + m.vmm_overhead
                         for m in per_vm]
            results[(mode, ratio)] = {
                "mode": mode,
                "ratio": ratio,
                "per_vm_overhead": sum(overheads) / len(overheads),
                "per_vm_overheads": overheads,
                "page_walk_overhead": (
                    sum(m.page_walk_overhead for m in per_vm) / len(per_vm)),
                "vmm_overhead": (
                    sum(m.vmm_overhead for m in per_vm) / len(per_vm)),
                "world_switches": report["world_switches"],
                "balloon_frames": report["balloon_frames"],
            }
    return results


def consolidation_claims(curve, ratio=None):
    """The acceptance relation over a :func:`consolidation_curve` result.

    At the highest consolidated ratio (or the given one), agile's mean
    per-VM overhead must not exceed the best constituent's — nested's or
    shadow's, whichever is lower — mirroring the solo headline claim
    under multiplexing.
    """
    if ratio is None:
        ratio = max(r for _mode, r in curve)
    agile = curve[(MODE_AGILE, ratio)]["per_vm_overhead"]
    best = min(curve[(MODE_NESTED, ratio)]["per_vm_overhead"],
               curve[(MODE_SHADOW, ratio)]["per_vm_overhead"])
    return {
        "ratio": ratio,
        "agile_per_vm_overhead": agile,
        "best_constituent_overhead": best,
        "agile_le_best": agile <= best,
        "agile_vs_best_ratio": (agile / best) if best else 0.0,
    }
