"""Multi-seed statistics for simulator experiments.

One seeded run is deterministic; claims about orderings ("agile beats
the best constituent") deserve error bars. ``run_many`` repeats a
workload across seeds and aggregates the overheads; ``compare_modes``
does it for several configurations and reports per-mode summaries.
"""

import math

from repro.core.machine import System
from repro.core.simulator import Simulator


class Summary:
    """Mean/stdev/min/max of one scalar across seeds."""

    __slots__ = ("values",)

    def __init__(self, values):
        if not values:
            raise ValueError("no values to summarize")
        self.values = list(values)

    @property
    def mean(self):
        return sum(self.values) / len(self.values)

    @property
    def stdev(self):
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values)
                         / (len(self.values) - 1))

    @property
    def minimum(self):
        return min(self.values)

    @property
    def maximum(self):
        return max(self.values)

    def __repr__(self):
        return "Summary(mean=%.4f, stdev=%.4f, n=%d)" % (
            self.mean, self.stdev, len(self.values))


class ModeStats:
    """Aggregated overheads for one (workload, config) across seeds."""

    def __init__(self, runs):
        if not runs:
            raise ValueError("no runs to aggregate")
        self.runs = runs
        self.page_walk = Summary([m.page_walk_overhead for m in runs])
        self.vmm = Summary([m.vmm_overhead for m in runs])
        self.total = Summary([m.page_walk_overhead + m.vmm_overhead
                              for m in runs])
        self.misses_per_kop = Summary([m.miss_rate_per_kop for m in runs])


def run_many(workload_factory, config, seeds):
    """Run ``workload_factory(seed=s)`` on ``config`` for every seed."""
    runs = []
    for seed in seeds:
        system = System(config)
        runs.append(Simulator(system).run(workload_factory(seed=seed)))
    return ModeStats(runs)


def compare_modes(workload_factory, configs, seeds=(1, 2, 3)):
    """Multi-seed comparison across configurations.

    ``configs`` maps label -> MachineConfig. Returns {label: ModeStats}.
    """
    return {
        label: run_many(workload_factory, config, seeds)
        for label, config in configs.items()
    }


def ordering_confidence(stats_a, stats_b):
    """Fraction of seeds where configuration A's total beat B's.

    1.0 means A won on every seed — the strongest ordering statement a
    deterministic simulator can make without a parametric model.
    """
    wins = sum(
        1
        for a, b in zip(stats_a.total.values, stats_b.total.values)
        if a < b
    )
    return wins / len(stats_a.total.values)
