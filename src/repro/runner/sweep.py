"""The sweep runner: fan experiment cells across worker processes.

``SweepRunner`` executes a list of :class:`CellSpec` cells with

* an on-disk :class:`ResultCache` consulted first (unchanged cells are
  loaded, not re-simulated),
* a ``multiprocessing`` fan-out when ``workers > 1`` — one OS process
  per in-flight cell, at most ``workers`` alive at once, so a crashing
  or hung cell can never poison its siblings,
* per-cell wall-clock timeouts (the child is terminated) and a bounded
  retry budget for failed/timed-out cells,
* graceful degradation to in-process serial execution when
  ``workers <= 1`` or multiprocessing is unavailable.

Determinism: a cell's result depends only on its spec (per-cell seeding
happens inside :func:`execute_cell`), never on scheduling, worker
identity, or sibling cells — the differential harness in
``tests/runner/`` asserts serial ≡ parallel bit-for-bit.
:func:`shard_cells` deterministically partitions a sweep by cell-key
hash, so distributed invocations (``repro sweep --shard K/N``) cover
disjoint, reproducible subsets regardless of cell order.

Timeouts are enforced only when cells run in child processes (parallel
mode); the serial path cannot kill its own stack and documents that.
"""

import json
import os
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS
from repro.runner.spec import execute_cell

STATUS_OK = "ok"  # simulated this run
STATUS_CACHED = "cached"  # loaded from the result cache
STATUS_FAILED = "failed"  # raised on every attempt
STATUS_TIMEOUT = "timeout"  # exceeded the per-cell timeout on every attempt

_SUCCESS = (STATUS_OK, STATUS_CACHED)


def _wall_time():
    """Host wall-clock seconds, for timeout/progress accounting only.

    The runner is harness code scheduling real OS processes; nothing it
    times ever feeds back into simulated results (those come solely from
    the simulated Clock inside :func:`execute_cell`).
    """
    return time.monotonic()  # lint: disable=unseeded-random


class SweepFailure(RuntimeError):
    """Raised by :meth:`SweepResult.raise_on_failure` when cells failed."""


@dataclass
class CellResult:
    """Outcome of one cell: status, metrics (on success), error trail."""

    spec: object
    status: str = None
    metrics: object = None
    attempts: int = 0
    error: str = None
    elapsed: float = 0.0
    # Path of the per-cell trace payload written under --trace-dir
    # (None when tracing was off or the cell came from the cache).
    trace_path: str = None

    @property
    def succeeded(self):
        return self.status in _SUCCESS

    def summary(self):
        row = {
            "cell": self.spec.describe(),
            "cell_key": self.spec.cell_key(),
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 3),
        }
        if self.error:
            row["error"] = self.error
        if self.metrics is not None:
            row["metrics"] = self.metrics.summary()
        if self.trace_path is not None:
            row["trace"] = self.trace_path
        return row


class SweepResult:
    """All cell results of one sweep, in input order."""

    def __init__(self, results, elapsed=0.0, cache_stats=None):
        self.results = results  # OrderedDict: cell_key -> CellResult
        self.elapsed = elapsed
        self.cache_stats = cache_stats

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results.values())

    def __getitem__(self, spec):
        return self.results[spec.cell_key()]

    def count(self, status):
        return sum(1 for r in self if r.status == status)

    @property
    def simulated(self):
        return self.count(STATUS_OK)

    @property
    def cached(self):
        return self.count(STATUS_CACHED)

    def failures(self):
        return [r for r in self if not r.succeeded]

    def metrics_for(self, spec):
        """The RunMetrics of one cell; raises SweepFailure if it failed."""
        result = self[spec]
        if not result.succeeded:
            raise SweepFailure("cell %s %s: %s" % (
                spec.describe(), result.status, result.error))
        return result.metrics

    def raise_on_failure(self):
        bad = self.failures()
        if bad:
            lines = ["%d of %d cells did not complete:" % (len(bad), len(self))]
            for result in bad:
                lines.append("  %s [%s after %d attempt(s)]: %s" % (
                    result.spec.describe(), result.status, result.attempts,
                    (result.error or "").splitlines()[-1] if result.error else ""))
            raise SweepFailure("\n".join(lines))
        return self

    def summary(self):
        """A JSON-safe report of the whole sweep."""
        report = {
            "cells": len(self),
            "simulated": self.simulated,
            "cached": self.cached,
            "failed": self.count(STATUS_FAILED),
            "timeout": self.count(STATUS_TIMEOUT),
            "elapsed": round(self.elapsed, 3),
            "results": [r.summary() for r in self],
        }
        if self.cache_stats is not None:
            report["cache"] = dict(self.cache_stats)
        return report


def shard_cells(cells, shards):
    """Deterministically partition cells into ``shards`` disjoint lists.

    Assignment hashes each cell's content key, so it is stable across
    runs, machines, and input orderings — the same cell always lands in
    the same shard for a given shard count.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    buckets = [[] for _ in range(shards)]
    for cell in cells:
        buckets[int(cell.cell_key()[:16], 16) % shards].append(cell)
    return buckets


def parse_shard(text):
    """Parse ``"K/N"`` (0-based shard K of N) into a (k, n) tuple."""
    try:
        k_text, n_text = text.split("/")
        k, n = int(k_text), int(n_text)
    except (ValueError, AttributeError):
        raise ValueError("shard must look like 'K/N', got %r" % (text,)) from None
    if n <= 0 or not 0 <= k < n:
        raise ValueError("shard %r out of range (need 0 <= K < N)" % (text,))
    return k, n


def _cell_child(spec, conn, trace=False, executor=None):
    """Child-process entry point: run one cell, ship the result back.

    Results travel as their ``to_dict()`` form — the same full-fidelity
    serialization the result cache uses — so the parent rebuilds them
    identically whether a cell was simulated here, serially, or loaded
    from disk. When tracing, the JSON-safe trace payload rides along as
    a third tuple element; the parent writes it to disk, so trace files
    are produced uniformly for serial and parallel sweeps.
    """
    run = executor if executor is not None else execute_cell
    try:
        if trace:
            metrics, payload = run(spec, trace=True)
            conn.send(("ok", metrics.to_dict(), payload))
        else:
            metrics = run(spec)
            conn.send(("ok", metrics.to_dict(), None))
    except BaseException as exc:  # report, never hang the parent
        conn.send(("error", "%s: %s\n%s" % (
            type(exc).__name__, exc, traceback.format_exc())))
    finally:
        conn.close()


def _trace_filename(spec):
    """Deterministic, filesystem-safe trace name for one cell."""
    label = "".join(c if c.isalnum() or c in "._-" else "-"
                    for c in spec.describe())
    return "%s-%s.trace.json" % (label, spec.cell_key()[:8])


@dataclass
class _Attempt:
    process: object
    conn: object
    started: float
    number: int


class SweepRunner:
    """Run cells serially or across a bounded pool of worker processes.

    ``retries`` is the number of *additional* attempts after a failure
    or timeout (so every cell runs at most ``1 + retries`` times).
    ``progress`` is an optional callable receiving one dict per cell
    completion. ``timeout`` is per-attempt wall-clock seconds, enforced
    in parallel mode by killing the child. ``trace_dir``, when set,
    runs every simulated cell under a tracer + interval recorder and
    writes one ``<cell>.trace.json`` payload per cell into that
    directory (cached cells are not re-simulated, so they get no trace).

    The runner is spec-agnostic: any cell object with ``cell_key()`` and
    ``describe()`` works. ``executor`` (default
    :func:`repro.runner.spec.execute_cell`) maps one cell to a result
    object exposing ``to_dict()``; it must be a picklable module-level
    callable so child processes can receive it. ``decode`` (default
    ``RunMetrics.from_dict``) rebuilds the result from that dict in the
    parent. The fuzz campaign (``repro fuzz``) reuses the pool this way
    with differential-oracle cells instead of simulation cells.
    """

    def __init__(self, workers=1, cache=None, timeout=None, retries=1,
                 mp_context=None, progress=None, poll_interval=0.01,
                 trace_dir=None, executor=None, decode=None, metrics=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.mp_context = mp_context
        self.progress = progress
        self.poll_interval = poll_interval
        self.trace_dir = trace_dir
        self.executor = executor if executor is not None else execute_cell
        self.decode = decode
        # Throughput heartbeats: per-status cell counters, a simulated-ops
        # histogram, and a cells/sec gauge, all recorded into the caller's
        # registry. The gauge is wall-clock derived, so determinism
        # comparisons must use counters/histograms only.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._started = None
        self._shard = None

    # -- public ---------------------------------------------------------------

    def run(self, cells, shard=None):
        """Execute the sweep; returns a :class:`SweepResult`.

        ``shard=(k, n)`` restricts the run to the k-th of n deterministic
        shards (see :func:`shard_cells`); other cells are simply absent
        from the result.
        """
        started = _wall_time()
        self._started = started
        self._shard = "%d/%d" % shard if shard is not None else None
        ordered = self._dedupe(cells)
        if shard is not None:
            k, n = shard
            keep = {c.cell_key() for c in shard_cells(ordered, n)[k]}
            ordered = [c for c in ordered if c.cell_key() in keep]

        results = OrderedDict(
            (cell.cell_key(), CellResult(spec=cell)) for cell in ordered)
        pending = []
        for cell in ordered:
            cached = self.cache.get(cell) if self.cache is not None else None
            if cached is not None:
                result = results[cell.cell_key()]
                result.status = STATUS_CACHED
                result.metrics = cached
                result.attempts = 0
                self._report(result, results)
            else:
                pending.append(cell)

        pool = self._make_context() if self.workers > 1 and pending else None
        if pool is not None:
            self._run_parallel(pool, pending, results)
        else:
            self._run_serial(pending, results)

        if self.cache is not None:
            for result in results.values():
                if result.status == STATUS_OK:
                    self.cache.put(result.spec, result.metrics)
        cache_stats = self.cache.stats() if self.cache is not None else None
        return SweepResult(results, elapsed=_wall_time() - started,
                           cache_stats=cache_stats)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _dedupe(cells):
        unique = OrderedDict()
        for cell in cells:
            unique.setdefault(cell.cell_key(), cell)
        return list(unique.values())

    def _report(self, result, results):
        self._heartbeat(result, results)
        if self.progress is None:
            return
        done = sum(1 for r in results.values() if r.status is not None)
        event = {
            "cell": result.spec.describe(),
            "status": result.status,
            "attempts": result.attempts,
            "elapsed": result.elapsed,
            "done": done,
            "total": len(results),
        }
        wall = _wall_time() - self._started if self._started is not None else 0.0
        if wall > 0:
            rate = done / wall
            event["rate"] = rate
            event["eta"] = (len(results) - done) / rate if rate > 0 else None
        if self._shard is not None:
            event["shard"] = self._shard
        self.progress(event)

    def _heartbeat(self, result, results):
        """Record one cell completion into the metrics registry.

        Counters and histograms here are scheduling-independent (they
        depend only on which cells completed and their deterministic
        simulated results), so serial and sharded sweeps merge to equal
        totals; the cells/sec gauge is the one wall-clock-derived value.
        """
        metrics = self.metrics
        if not metrics.enabled or result.status is None:
            return
        metrics.inc("runner.cells.%s" % result.status)
        sim_ops = getattr(result.metrics, "ops", None)
        if sim_ops is not None:
            metrics.inc("runner.sim_ops", sim_ops)
            metrics.observe("runner.cell_sim_ops", sim_ops,
                            bounds=(1000, 10_000, 100_000, 1_000_000))
        wall = _wall_time() - self._started if self._started else 0.0
        if wall > 0:
            done = sum(1 for r in results.values() if r.status is not None)
            metrics.set_gauge("runner.cells_per_sec", done / wall)

    def _decode(self, data):
        """Rebuild a result object from its over-the-pipe dict form."""
        if self.decode is not None:
            return self.decode(data)
        from repro.core.metrics import RunMetrics

        return RunMetrics.from_dict(data)

    def _make_context(self):
        """A usable multiprocessing context, or None to degrade to serial."""
        if self.mp_context is not None:
            return self.mp_context
        try:
            import multiprocessing

            context = multiprocessing.get_context()
            # Probe: some sandboxes ship the module but forbid the
            # primitives; fail here, not mid-sweep.
            recv, send = context.Pipe(duplex=False)
            recv.close()
            send.close()
            return context
        except (ImportError, OSError):
            return None

    def _write_trace(self, spec, payload):
        """Persist one cell's trace payload; returns its path (or None)."""
        if self.trace_dir is None or payload is None:
            return None
        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, _trace_filename(spec))
        with open(path, "w") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        return path

    def _run_serial(self, cells, results):
        """In-process execution with retries (timeouts not enforceable)."""
        tracing = self.trace_dir is not None
        for cell in cells:
            result = results[cell.cell_key()]
            while True:
                result.attempts += 1
                attempt_start = _wall_time()
                try:
                    if tracing:
                        metrics, payload = self.executor(cell, trace=True)
                    else:
                        metrics, payload = self.executor(cell), None
                except Exception as exc:
                    result.elapsed += _wall_time() - attempt_start
                    result.error = "%s: %s\n%s" % (
                        type(exc).__name__, exc, traceback.format_exc())
                    if result.attempts <= self.retries:
                        continue
                    result.status = STATUS_FAILED
                    break
                result.elapsed += _wall_time() - attempt_start
                result.status = STATUS_OK
                result.metrics = metrics
                result.trace_path = self._write_trace(cell, payload)
                break
            self._report(result, results)

    def _run_parallel(self, context, cells, results):
        """Process-per-cell scheduler with ``workers`` live slots."""
        pending = deque((cell, 1) for cell in cells)
        live = {}
        try:
            while pending or live:
                while pending and len(live) < self.workers:
                    cell, attempt = pending.popleft()
                    recv, send = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_cell_child,
                        args=(cell, send, self.trace_dir is not None,
                              self.executor),
                        daemon=True)
                    process.start()
                    send.close()
                    live[cell.cell_key()] = (cell, _Attempt(
                        process=process, conn=recv,
                        started=_wall_time(), number=attempt))
                self._poll_live(live, pending, results)
                if live:
                    time.sleep(self.poll_interval)
        finally:
            for cell, attempt in live.values():
                self._kill(attempt)

    def _poll_live(self, live, pending, results):
        now = _wall_time()
        for key in list(live):
            cell, attempt = live[key]
            outcome = None
            if attempt.conn.poll():
                try:
                    outcome = attempt.conn.recv()
                except (EOFError, OSError):
                    outcome = ("error", "worker died without reporting "
                                        "(exitcode %r)" % attempt.process.exitcode)
            elif not attempt.process.is_alive():
                outcome = ("error", "worker exited without reporting "
                                    "(exitcode %r)" % attempt.process.exitcode)
            elif (self.timeout is not None
                    and now - attempt.started > self.timeout):
                outcome = ("timeout",
                           "cell exceeded %.3gs timeout; worker killed"
                           % self.timeout)
            if outcome is None:
                continue

            del live[key]
            result = results[key]
            result.attempts = attempt.number
            result.elapsed += _wall_time() - attempt.started
            kind = outcome[0]
            if kind == "timeout":
                self._kill(attempt)
            else:
                attempt.process.join()
                attempt.conn.close()

            if kind == "ok":
                result.status = STATUS_OK
                result.metrics = self._decode(outcome[1])
                payload = outcome[2] if len(outcome) > 2 else None
                result.trace_path = self._write_trace(cell, payload)
            else:
                result.error = outcome[1]
                if attempt.number <= self.retries:
                    pending.append((cell, attempt.number + 1))
                    continue
                result.status = STATUS_TIMEOUT if kind == "timeout" else STATUS_FAILED
            self._report(result, results)

    @staticmethod
    def _kill(attempt):
        process = attempt.process
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():  # pragma: no cover - stubborn child
                process.kill()
                process.join(1.0)
        try:
            attempt.conn.close()
        except OSError:  # pragma: no cover
            pass
