"""Source-tree fingerprinting for cache invalidation.

A cached cell result is only valid while the simulator that produced it
is byte-identical: *any* change under ``src/repro`` may shift reproduced
numbers. The fingerprint is a SHA-256 over every ``*.py`` file in the
package (relative path + content), so editing, adding, or deleting any
module invalidates the whole cache — coarse on purpose; recomputing a
cell is cheap next to silently reporting stale paper numbers.
"""

import hashlib
import os

# Fingerprints are stable for the life of a process (source edits while
# running don't count as "the code that produced this result").
_CACHE = {}


def package_root():
    """The directory of the installed ``repro`` package."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def code_fingerprint(root=None):
    """Hex SHA-256 fingerprint of every ``*.py`` file under ``root``."""
    root = os.path.abspath(root) if root else package_root()
    cached = _CACHE.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root)
            digest.update(relative.encode("utf-8"))
            digest.update(b"\0")
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _CACHE[root] = fingerprint
    return fingerprint


def clear_fingerprint_cache():
    """Forget memoized fingerprints (tests that edit source trees)."""
    _CACHE.clear()
