"""Experiment cells: frozen, hashable specifications of one simulation.

A :class:`CellSpec` names everything needed to reproduce one run —
workload, paging mode, page size, operation budget, seed, and config
overrides — in a canonical, JSON-stable form. Two properties follow:

* the spec is *hashable and order-independent*, so it can key a result
  cache and shard deterministically across workers, and
* :func:`execute_cell` can rebuild the identical simulation from the
  spec alone in any process, which is what makes serial and parallel
  sweeps bit-identical.

Config overrides use dotted paths into the nested config dataclasses
(``{"pwc.enabled": False, "policy.write_threshold": 4}``); page sizes
are stored by name (``"4K"``). Workloads resolve through the Table V
suite by name, or through an explicit ``factory`` dotted path
(``"package.module:ClassName"``) for custom/test workloads.
"""

import dataclasses
import hashlib
import importlib
import json
from dataclasses import dataclass

from repro.common.config import EXTENDED_MODES, sandy_bridge_config
from repro.common.params import PAGE_SIZES, PageSize

#: Config fields whose values are page sizes, stored by name in a spec.
_PAGE_SIZE_FIELDS = ("page_size", "host_page_size")

_SCALARS = (type(None), bool, int, float, str)


class SpecError(ValueError):
    """A cell spec is malformed or names something that does not exist."""


def _flatten_overrides(overrides, prefix=""):
    """Yield (dotted_key, scalar) pairs from a friendly overrides dict.

    Accepts nested dataclasses (``pwc=PWCConfig(enabled=False)``),
    nested dicts, :class:`PageSize` values, and already-dotted keys.
    """
    for key, value in overrides.items():
        dotted = prefix + key
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            for field in dataclasses.fields(value):
                yield from _flatten_overrides(
                    {field.name: getattr(value, field.name)}, dotted + ".")
        elif isinstance(value, dict):
            yield from _flatten_overrides(value, dotted + ".")
        elif isinstance(value, PageSize):
            yield dotted, value.name
        elif isinstance(value, _SCALARS):
            yield dotted, value
        else:
            raise SpecError(
                "override %r has unsupported type %s (use scalars, dicts, "
                "config dataclasses, or PageSize)" % (dotted, type(value).__name__))


def canonicalize_overrides(overrides):
    """Normalize an overrides dict to a sorted tuple of (key, value) pairs."""
    if not overrides:
        return ()
    flat = dict(_flatten_overrides(overrides))
    return tuple(sorted(flat.items()))


def _canonicalize_kwargs(kwargs):
    if not kwargs:
        return ()
    for key, value in kwargs.items():
        if not isinstance(value, _SCALARS):
            raise SpecError(
                "workload kwarg %r must be a JSON scalar, got %s"
                % (key, type(value).__name__))
    return tuple(sorted(kwargs.items()))


def _apply_dotted(config, dotted, value):
    """Return ``config`` with one dotted override applied, validating names."""
    parts = dotted.split(".")
    leaf = parts[-1]

    def rebuild(obj, remaining):
        if len(remaining) == 1:
            name = remaining[0]
            if not any(f.name == name for f in dataclasses.fields(obj)):
                raise SpecError("unknown config field %r (in override %r)"
                                % (name, dotted))
            new_value = value
            if name in _PAGE_SIZE_FIELDS and isinstance(value, str):
                try:
                    new_value = PAGE_SIZES[value]
                except KeyError:
                    raise SpecError("unknown page size %r (in override %r)"
                                    % (value, dotted)) from None
            return dataclasses.replace(obj, **{name: new_value})
        name = remaining[0]
        if not any(f.name == name for f in dataclasses.fields(obj)):
            raise SpecError("unknown config field %r (in override %r)"
                            % (name, dotted))
        child = getattr(obj, name)
        if not dataclasses.is_dataclass(child):
            raise SpecError("config field %r is not nested; cannot apply %r"
                            % (name, dotted))
        return dataclasses.replace(obj, **{name: rebuild(child, remaining[1:])})

    del leaf
    return rebuild(config, parts)


def resolve_workload_class(spec):
    """The workload class a spec names (suite name or factory path)."""
    if spec.factory:
        module_name, _, attr = spec.factory.partition(":")
        if not module_name or not attr:
            raise SpecError("factory must look like 'pkg.module:ClassName', "
                            "got %r" % (spec.factory,))
        try:
            module = importlib.import_module(module_name)
            return getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise SpecError("cannot resolve workload factory %r: %s"
                            % (spec.factory, exc)) from exc
    from repro.workloads.suite import SUITE

    classes = {cls.name: cls for cls in SUITE}
    try:
        return classes[spec.workload]
    except KeyError:
        raise SpecError("unknown workload %r (suite: %s)"
                        % (spec.workload, ", ".join(sorted(classes)))) from None


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell: (workload, mode, page size, ops, seed, config).

    ``overrides`` and ``workload_kwargs`` are canonical sorted tuples of
    (key, scalar) pairs — construct specs through :meth:`make`, which
    accepts friendly dicts and normalizes them.
    """

    workload: str
    mode: str = "agile"
    page_size: str = "4K"
    ops: int = 60_000
    seed: int = None  # None: the workload class's default seed
    overrides: tuple = ()
    workload_kwargs: tuple = ()
    factory: str = None

    def __post_init__(self):
        if self.mode not in EXTENDED_MODES:
            raise SpecError("unknown paging mode %r" % (self.mode,))
        if self.page_size not in PAGE_SIZES:
            raise SpecError("unknown page size %r (known: %s)"
                            % (self.page_size, ", ".join(sorted(PAGE_SIZES))))
        if self.ops <= 0:
            raise SpecError("ops must be positive, got %r" % (self.ops,))

    @classmethod
    def make(cls, workload, mode="agile", page_size="4K", ops=60_000,
             seed=None, overrides=None, factory=None, **workload_kwargs):
        """Build a spec from friendly types.

        ``workload`` may be a suite name or a workload class (classes
        from the suite are stored by name; others by factory path).
        ``page_size`` may be a name or a :class:`PageSize`. ``overrides``
        is a dict of config overrides (dotted keys, nested dataclasses,
        or nested dicts).
        """
        if isinstance(workload, type):
            from repro.workloads.suite import SUITE

            if workload in SUITE:
                workload_name = workload.name
            else:
                factory = "%s:%s" % (workload.__module__, workload.__qualname__)
                workload_name = workload.name
            workload = workload_name
        if isinstance(page_size, PageSize):
            page_size = page_size.name
        return cls(
            workload=workload,
            mode=mode,
            page_size=page_size,
            ops=ops,
            seed=seed,
            overrides=canonicalize_overrides(overrides),
            workload_kwargs=_canonicalize_kwargs(workload_kwargs),
            factory=factory,
        )

    # -- identity -------------------------------------------------------------

    def as_dict(self):
        """A JSON-safe dict with a stable shape (for hashing and storage)."""
        return {
            "workload": self.workload,
            "mode": self.mode,
            "page_size": self.page_size,
            "ops": self.ops,
            "seed": self.seed,
            "overrides": [list(pair) for pair in self.overrides],
            "workload_kwargs": [list(pair) for pair in self.workload_kwargs],
            "factory": self.factory,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            workload=data["workload"],
            mode=data["mode"],
            page_size=data["page_size"],
            ops=data["ops"],
            seed=data["seed"],
            overrides=tuple((k, v) for k, v in data.get("overrides", ())),
            workload_kwargs=tuple(
                (k, v) for k, v in data.get("workload_kwargs", ())),
            factory=data.get("factory"),
        )

    def cell_key(self):
        """Content hash of the spec: the cache/shard identity of the cell."""
        blob = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self):
        """Short human label: ``mcf/agile/4K``, plus seed/override marks."""
        label = "%s/%s/%s" % (self.workload, self.mode, self.page_size)
        if self.seed is not None:
            label += "/s%d" % self.seed
        if self.overrides:
            label += "+%d ovr" % len(self.overrides)
        return label

    # -- materialization ------------------------------------------------------

    def build_config(self):
        """The :class:`MachineConfig` this cell runs under."""
        config = sandy_bridge_config(mode=self.mode,
                                     page_size=PAGE_SIZES[self.page_size])
        for dotted, value in self.overrides:
            config = _apply_dotted(config, dotted, value)
        return config

    def build_workload(self, config=None):
        """A fresh workload instance with the cell's deterministic seed."""
        if config is None:
            config = self.build_config()
        workload_cls = resolve_workload_class(self)
        kwargs = {"ops": self.ops, "page_size": config.page_size}
        kwargs.update(dict(self.workload_kwargs))
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return workload_cls(**kwargs)


def execute_cell(spec, trace=False, trace_every=1024):
    """Run one cell from scratch; returns :class:`RunMetrics`.

    Used identically by the serial path and by pool workers, so a cell's
    result never depends on where it ran.

    With ``trace=True`` the run is executed under a fresh tracer and
    interval recorder (sampling every ``trace_every`` ops) and the
    return value becomes ``(metrics, payload)``, where ``payload`` is
    the JSON-safe :func:`repro.obs.exporters.trace_payload` bundle.
    """
    from repro.core.machine import System
    from repro.core.simulator import Simulator

    config = spec.build_config()
    workload = spec.build_workload(config)
    system = System(config)
    if not trace:
        return Simulator(system).run(workload)
    from repro.obs import IntervalRecorder, Tracer
    from repro.obs.exporters import trace_payload

    tracer = Tracer()
    recorder = IntervalRecorder(every=trace_every)
    system.attach_observability(tracer, recorder)
    metrics = Simulator(system).run(workload)
    return metrics, trace_payload(tracer, recorder)
