"""Tiny and fault-injecting workloads for exercising the sweep runner.

These are *not* part of the Table V suite; cells reference them through
``CellSpec.make(factory="repro.runner.testing:ClassName", ...)`` so both
the parent and pool workers can resolve them by import, whatever the
multiprocessing start method.
"""

import time

from repro.workloads.base import Workload


class TinyWorkload(Workload):
    """A minimal deterministic workload: one region, a short access mix."""

    name = "tiny"
    description = "runner-test workload: small, fast, deterministic"

    def __init__(self, ops=200, seed=7, pages=8, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.pages = pages

    def execute(self, api):
        self.reset()
        api.spawn()
        base = api.mmap(self.pages * self.granule)
        self.warm_region(api, base, self.pages, write=True)
        api.start_measurement()
        indices = self.rng.integers(0, self.pages, size=self.ops)
        writes = self.rng.random(self.ops) < 0.25
        self.region_access(api, base, indices, writes)


class CrashyWorkload(TinyWorkload):
    """Raises partway through every run (the unrecoverable-cell case)."""

    name = "crashy"
    description = "runner-test workload: always raises mid-run"

    def execute(self, api):
        api.spawn()
        base = api.mmap(self.granule)
        api.write(base)
        raise RuntimeError("crashy workload raised (by design)")


# In-process attempt counter for CrashOnceWorkload. Only meaningful for
# serial (in-process) retries: each pool worker is a fresh process.
_CRASH_ONCE_ATTEMPTS = {"count": 0}


def reset_crash_once():
    _CRASH_ONCE_ATTEMPTS["count"] = 0


class CrashOnceWorkload(TinyWorkload):
    """Raises on the first in-process attempt, succeeds on the retry."""

    name = "crash-once"
    description = "runner-test workload: fails once, then recovers"

    def execute(self, api):
        _CRASH_ONCE_ATTEMPTS["count"] += 1
        if _CRASH_ONCE_ATTEMPTS["count"] == 1:
            raise RuntimeError("transient failure (by design)")
        super().execute(api)


class SleepyWorkload(TinyWorkload):
    """Blocks in host wall-clock time (the hung-cell/timeout case)."""

    name = "sleepy"
    description = "runner-test workload: hangs for sleep_seconds"

    def __init__(self, ops=200, seed=7, sleep_seconds=60.0, **kw):
        super().__init__(ops=ops, seed=seed, **kw)
        self.sleep_seconds = sleep_seconds

    def execute(self, api):
        time.sleep(self.sleep_seconds)
        super().execute(api)
