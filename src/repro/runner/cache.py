"""Content-addressed on-disk cache of cell results.

Layout::

    <cache_dir>/<fingerprint[:16]>/<cell_key>.json

where ``fingerprint`` is the :mod:`repro.runner.fingerprint` hash of the
simulator source and ``cell_key`` is :meth:`CellSpec.cell_key`. An entry
stores the spec, the fingerprint, and the full-fidelity
:meth:`RunMetrics.to_dict` payload, so a hit reconstructs metrics
bit-identical to a fresh simulation.

Invalidation rules (see docs/runner.md):

* change any override, seed, ops, mode, page size, or workload → new
  cell key → miss;
* change any ``*.py`` under ``src/repro`` → new fingerprint → the whole
  old generation is dead (``prune()`` deletes it);
* a corrupted or unreadable entry is deleted and treated as a miss —
  the cell is recomputed, never trusted.

Writes are atomic (temp file + rename) so a killed worker can't leave a
half-written entry that later parses as valid JSON.
"""

import json
import os
import shutil
import tempfile

from repro.core.metrics import RunMetrics
from repro.runner.fingerprint import code_fingerprint

ENTRY_VERSION = 1


class ResultCache:
    """On-disk cell-result cache keyed by (source fingerprint, cell key)."""

    def __init__(self, path, fingerprint=None):
        self.path = os.path.abspath(path)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    # -- paths ----------------------------------------------------------------

    @property
    def generation_dir(self):
        return os.path.join(self.path, self.fingerprint[:16])

    def entry_path(self, spec):
        return os.path.join(self.generation_dir, spec.cell_key() + ".json")

    # -- lookup/store ---------------------------------------------------------

    def get(self, spec):
        """The cached :class:`RunMetrics` for ``spec``, or None on miss.

        Any defect in the entry — unreadable file, bad JSON, wrong
        fingerprint or key, malformed metrics — deletes it and reports a
        miss, so corruption degrades to recomputation, never to a crash
        or a stale result.
        """
        path = self.entry_path(spec)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["version"] != ENTRY_VERSION:
                raise ValueError("entry version %r" % (entry["version"],))
            if entry["fingerprint"] != self.fingerprint:
                raise ValueError("fingerprint mismatch")
            if entry["cell_key"] != spec.cell_key():
                raise ValueError("cell key mismatch")
            metrics = RunMetrics.from_dict(entry["metrics"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return metrics

    def put(self, spec, metrics):
        """Store one result atomically."""
        entry = {
            "version": ENTRY_VERSION,
            "fingerprint": self.fingerprint,
            "cell_key": spec.cell_key(),
            "spec": spec.as_dict(),
            "metrics": metrics.to_dict(),
        }
        os.makedirs(self.generation_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.generation_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, self.entry_path(spec))
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, spec=None):
        """Drop one entry (or, with ``spec=None``, the whole cache dir)."""
        if spec is not None:
            try:
                os.remove(self.entry_path(spec))
            except OSError:
                pass
            return
        shutil.rmtree(self.path, ignore_errors=True)

    def prune(self):
        """Delete generations whose source fingerprint is no longer current."""
        keep = os.path.basename(self.generation_dir)
        try:
            generations = os.listdir(self.path)
        except OSError:
            return 0
        removed = 0
        for name in generations:
            candidate = os.path.join(self.path, name)
            if name != keep and os.path.isdir(candidate):
                shutil.rmtree(candidate, ignore_errors=True)
                removed += 1
        return removed

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }

    def __repr__(self):
        return "ResultCache(%r, generation=%s, %r)" % (
            self.path, self.fingerprint[:16], self.stats())
