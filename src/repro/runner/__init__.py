"""Parallel experiment runner: cell specs, result cache, sweep pool.

The public surface of the subsystem::

    from repro.runner import CellSpec, ResultCache, SweepRunner

    cells = [CellSpec.make("mcf", mode=m, ops=20_000)
             for m in ("nested", "shadow", "agile")]
    sweep = SweepRunner(workers=4, cache=ResultCache(".repro-cache")).run(cells)
    sweep.raise_on_failure()
    for result in sweep:
        print(result.spec.describe(), result.metrics.summary())
"""

from repro.runner.cache import ResultCache
from repro.runner.fingerprint import clear_fingerprint_cache, code_fingerprint
from repro.runner.spec import (
    CellSpec,
    SpecError,
    canonicalize_overrides,
    execute_cell,
    resolve_workload_class,
)
from repro.runner.sweep import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    SweepFailure,
    SweepResult,
    SweepRunner,
    parse_shard,
    shard_cells,
)

__all__ = [
    "CellSpec",
    "SpecError",
    "canonicalize_overrides",
    "execute_cell",
    "resolve_workload_class",
    "ResultCache",
    "code_fingerprint",
    "clear_fingerprint_cache",
    "SweepRunner",
    "SweepResult",
    "SweepFailure",
    "CellResult",
    "shard_cells",
    "parse_shard",
    "STATUS_OK",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
]
