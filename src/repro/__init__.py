"""repro: a reproduction of "Agile Paging: Exceeding the Best of Nested
and Shadow Paging" (Gandhi, Hill, Swift — ISCA 2016).

A functional simulator of virtualized address translation: x86-64-style
four-level page tables, the Table III TLB hierarchy, page-walk caches,
hardware walk state machines for native/nested/shadow/agile paging, a
guest OS, a KVM-shaped VMM with the paper's switching policies and both
optional hardware optimizations, the Table V workload suite (scaled),
and harnesses regenerating every table and figure in the evaluation.

Quickstart::

    from repro import run_workload, sandy_bridge_config
    from repro.workloads.suite import McfLike

    metrics = run_workload(McfLike(ops=50_000),
                           sandy_bridge_config(mode="agile"))
    print(metrics.summary())
"""

from repro.common.config import (
    ALL_MODES,
    MODE_AGILE,
    MODE_NATIVE,
    MODE_NESTED,
    MODE_SHADOW,
    CostConfig,
    HostConfig,
    MachineConfig,
    PolicyConfig,
    sandy_bridge_config,
)
from repro.common.params import FOUR_KB, ONE_GB, TWO_MB
from repro.core.hostsys import HostSystem, run_consolidated
from repro.core.machine import System
from repro.core.metrics import RunMetrics
from repro.core.simulator import MachineAPI, Simulator, run_workload
from repro.workloads.base import Workload
from repro.workloads.suite import SUITE, make_suite

__version__ = "1.0.0"

__all__ = [
    "ALL_MODES",
    "MODE_AGILE",
    "MODE_NATIVE",
    "MODE_NESTED",
    "MODE_SHADOW",
    "CostConfig",
    "HostConfig",
    "MachineConfig",
    "PolicyConfig",
    "sandy_bridge_config",
    "FOUR_KB",
    "TWO_MB",
    "ONE_GB",
    "System",
    "HostSystem",
    "run_consolidated",
    "RunMetrics",
    "MachineAPI",
    "Simulator",
    "run_workload",
    "Workload",
    "SUITE",
    "make_suite",
    "__version__",
]
