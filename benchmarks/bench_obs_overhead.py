"""Observability overhead: tracing off must be (nearly) free.

The tracer's null-object contract says an instrumented simulator with
``NULL_TRACER`` attached costs one attribute load and a branch per
would-be event. This harness times three configurations of the same
seeded workload —

* **baseline**   — plain ``run_workload``, no observability arguments;
* **tracing off** — an explicit ``attach_observability()`` with the
  defaults (``NULL_TRACER``, no recorder), i.e. the instrumented hot
  paths with every guard false;
* **tracing on** — a full ``Tracer`` + ``IntervalRecorder``;

and enforces the ISSUE acceptance bound: tracing-off wall time within
2 % of baseline (with a small absolute floor so sub-millisecond timing
jitter on tiny REPRO_OPS runs cannot flake the suite). Full tracing is
reported for scale but has no bound — materializing an event per TLB
probe is the price of the data.
"""

import time

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.obs import IntervalRecorder, Tracer
from repro.workloads.suite import DedupLike
from repro.analysis.tables import format_table

from _util import DEFAULT_OPS, emit, pct, run_once

#: Acceptance bound for tracing-off overhead (ISSUE: <= 2%).
MAX_OFF_OVERHEAD = 0.02
#: Jitter floor: differences under this many seconds are noise.
ABS_FLOOR_SECONDS = 0.05
#: Best-of-N timing to shed scheduler noise.
TIMING_ROUNDS = 3


def _timed_run(attach=None):
    """Best-of-N wall time for one seeded dedup/agile run."""
    best = None
    result = None
    for _ in range(TIMING_ROUNDS):
        system = System(sandy_bridge_config(mode="agile"))
        if attach is not None:
            attach(system)
        workload = DedupLike(seed=7, ops=DEFAULT_OPS)
        begin = time.perf_counter()
        metrics = Simulator(system).run(workload)
        elapsed = time.perf_counter() - begin
        if best is None or elapsed < best:
            best, result = elapsed, metrics
    return best, result


def test_tracing_off_is_free(benchmark):
    def measure():
        baseline_s, baseline = _timed_run()
        off_s, off = _timed_run(lambda s: s.attach_observability())
        tracer, recorder = Tracer(), IntervalRecorder(every=1024)
        on_s, on = _timed_run(
            lambda s: s.attach_observability(tracer=tracer,
                                             recorder=recorder))
        return baseline_s, off_s, on_s, baseline, off, on

    baseline_s, off_s, on_s, baseline, off, on = run_once(benchmark, measure)

    def overhead(seconds):
        return (seconds - baseline_s) / baseline_s

    rows = [
        ("baseline", "%.3f" % baseline_s, "—"),
        ("tracing off (null tracer)", "%.3f" % off_s, pct(overhead(off_s))),
        ("tracing on (full)", "%.3f" % on_s, pct(overhead(on_s))),
    ]
    text = format_table(
        ("Configuration", "best-of-%d s" % TIMING_ROUNDS, "vs baseline"),
        rows,
        title=("Observability overhead — dedup/agile, %d ops "
               "(acceptance: off <= %s)" % (DEFAULT_OPS,
                                            pct(MAX_OFF_OVERHEAD))),
    )
    emit("obs_overhead", text)

    # Instrumentation must never perturb results, on or off.
    assert off.to_dict() == baseline.to_dict()
    assert on.to_dict() == baseline.to_dict()

    # The acceptance bound, with an absolute jitter floor.
    assert (off_s - baseline_s <= ABS_FLOOR_SECONDS
            or overhead(off_s) <= MAX_OFF_OVERHEAD), (
        "tracing-off overhead %s exceeds %s"
        % (pct(overhead(off_s)), pct(MAX_OFF_OVERHEAD)))
