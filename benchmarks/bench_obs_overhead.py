"""Observability overhead: tracing *and* metrics off must be (nearly) free.

The null-object contract says an instrumented simulator with
``NULL_TRACER``/``NULL_METRICS`` attached costs one attribute load and a
branch per would-be event. This harness times the same seeded workload
under several observability configurations, on both simulation cores —

* **baseline**     — plain construction, no observability arguments;
* **tracing off**  — explicit ``attach_observability()`` with the
  defaults (``NULL_TRACER``, no recorder), i.e. the instrumented hot
  paths with every guard false;
* **metrics off**  — explicit ``attach_observability(metrics=
  NULL_METRICS)``, rebinding the null registry through machine, MMU and
  walker;
* **tracing on**   — a full ``Tracer`` + ``IntervalRecorder``;
* **metrics on**   — a live ``MetricsRegistry``;

and enforces the ISSUE acceptance bound twice: tracing-off *and*
metrics-off wall time within 2 % of baseline (with a small absolute
floor so sub-millisecond timing jitter on tiny REPRO_OPS runs cannot
flake the suite). The reference core runs ``Simulator``; the fastpath
core times ``access_batch`` directly, where the metrics guards sit
inside the inline loop's flush path. Full tracing/metrics are reported
for scale but have no bound — materializing events is the price of the
data (and tracing intentionally forces the fastpath out of its inline
loop).
"""

import random
import time

from repro.bench import bench_target
from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.obs import IntervalRecorder, Tracer
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.workloads.suite import DedupLike
from repro.analysis.tables import format_table

from _util import DEFAULT_OPS, emit, pct, run_once

#: Acceptance bound for observability-off overhead (ISSUE: <= 2%).
MAX_OFF_OVERHEAD = 0.02
#: Jitter floor: differences under this many seconds are noise.
ABS_FLOOR_SECONDS = 0.05
#: Best-of-N timing to shed scheduler noise.
TIMING_ROUNDS = 3

#: The configurations under test, in measurement order. Each attach
#: callable receives the freshly built system (None = baseline).
def _configs():
    tracer, recorder = Tracer(), IntervalRecorder(every=1024)
    return (
        ("baseline", None),
        ("tracing_off", lambda s: s.attach_observability()),
        ("metrics_off",
         lambda s: s.attach_observability(metrics=NULL_METRICS)),
        ("tracing_on",
         lambda s: s.attach_observability(tracer=tracer, recorder=recorder)),
        ("metrics_on",
         lambda s: s.attach_observability(metrics=MetricsRegistry())),
    )


def _timed_reference(ops, attach=None):
    """Best-of-N wall time for one seeded dedup/agile Simulator run."""
    best = None
    result = None
    for _ in range(TIMING_ROUNDS):
        system = System(sandy_bridge_config(mode="agile"))
        if attach is not None:
            attach(system)
        workload = DedupLike(seed=7, ops=ops)
        begin = time.perf_counter()
        metrics = Simulator(system).run(workload)
        elapsed = time.perf_counter() - begin
        if best is None or elapsed < best:
            best, result = elapsed, metrics
    return best, result


def _timed_fastpath(ops, attach=None):
    """Best-of-N wall time for one seeded stream through ``access_batch``.

    The stream shape mirrors the core-throughput "l1" scenario: a
    64-page working set, so the metrics guards in the inline flush path
    dominate (the configuration the <=2% bound is really about).
    """
    pages = 64
    rng = random.Random(7)
    best = None
    result = None
    for _ in range(TIMING_ROUNDS):
        system = System(sandy_bridge_config(mode="agile", core="fastpath"))
        if attach is not None:
            attach(system)
        proc = system.kernel.create_process()
        base = system.kernel.mmap(proc, size=pages * 4096)
        vas = [base + 4096 * rng.randrange(pages) for _ in range(ops)]
        system.access_batch(vas[: max(1000, ops // 20)])  # warm
        begin = time.perf_counter()
        system.access_batch(vas)
        elapsed = time.perf_counter() - begin
        if best is None or elapsed < best:
            best, result = elapsed, system.collect_metrics()
    return best, result


def _measure(core, ops):
    """Time every configuration on one core; returns ``{label: (s, m)}``."""
    timer = _timed_reference if core == "reference" else _timed_fastpath
    return {label: timer(ops, attach)
            for label, attach in _configs()}


def _check(core, timings):
    """The invariants both the pytest harness and ``repro bench`` assert."""
    baseline_s, baseline = timings["baseline"]
    # Instrumentation must never perturb results, on or off.
    for label, (_s, metrics) in timings.items():
        assert metrics.to_dict() == baseline.to_dict(), (core, label)
    # The acceptance bound, with an absolute jitter floor.
    for label in ("tracing_off", "metrics_off"):
        seconds, _metrics = timings[label]
        overhead = (seconds - baseline_s) / baseline_s
        assert (seconds - baseline_s <= ABS_FLOOR_SECONDS
                or overhead <= MAX_OFF_OVERHEAD), (
            "%s %s overhead %s exceeds %s"
            % (core, label, pct(overhead), pct(MAX_OFF_OVERHEAD)))


def _rows(timings):
    baseline_s, _ = timings["baseline"]
    rows = [("baseline", "%.3f" % baseline_s, "—")]
    for label, (seconds, _metrics) in timings.items():
        if label == "baseline":
            continue
        rows.append((label.replace("_", " "), "%.3f" % seconds,
                     pct((seconds - baseline_s) / baseline_s)))
    return rows


def _run_core(core, ops):
    timings = _measure(core, ops)
    _check(core, timings)
    return timings


def test_observability_off_is_free_reference(benchmark):
    timings = run_once(benchmark, lambda: _run_core("reference", DEFAULT_OPS))
    text = format_table(
        ("Configuration", "best-of-%d s" % TIMING_ROUNDS, "vs baseline"),
        _rows(timings),
        title=("Observability overhead, reference core — dedup/agile, "
               "%d ops (acceptance: off <= %s)"
               % (DEFAULT_OPS, pct(MAX_OFF_OVERHEAD))),
    )
    emit("obs_overhead", text)


def test_observability_off_is_free_fastpath(benchmark):
    timings = run_once(benchmark, lambda: _run_core("fastpath", DEFAULT_OPS))
    text = format_table(
        ("Configuration", "best-of-%d s" % TIMING_ROUNDS, "vs baseline"),
        _rows(timings),
        title=("Observability overhead, fastpath core — access_batch, "
               "%d ops (acceptance: off <= %s)"
               % (DEFAULT_OPS, pct(MAX_OFF_OVERHEAD))),
    )
    emit("obs_overhead_fastpath", text)


@bench_target("obs_overhead", output="BENCH_obs_overhead.json")
def bench(ctx):
    """Per-core, per-configuration overheads against the 2% bound."""
    ops = ctx.ops(DEFAULT_OPS)
    cores = {}
    for core in ("reference", "fastpath"):
        timings = _run_core(core, ops)
        baseline_s, _ = timings["baseline"]
        cores[core] = {
            "baseline_seconds": baseline_s,
            "overheads": {
                label: (seconds - baseline_s) / baseline_s
                for label, (seconds, _m) in timings.items()
                if label != "baseline"},
        }
    return {"ops": ops, "bound": MAX_OFF_OVERHEAD, "cores": cores}
