"""Section VII-A headline claims.

Paper: "agile paging ... improves performance by 12% over the best of
nested and shadow paging on average, and performs less than 4% slower
than unvirtualized native at worst". We check the *shape*: agile wins
against the best constituent on average, and stays within a small
constant factor of native.
"""

from repro.analysis.experiments import figure5, headline_claims
from repro.analysis.tables import format_table
from repro.common.params import FOUR_KB
from repro.bench import Gate, bench_target

from _util import DEFAULT_OPS, emit, run_once


def test_headline_claims(benchmark):
    results = run_once(
        benchmark,
        lambda: figure5(ops=DEFAULT_OPS, page_sizes=(FOUR_KB,)),
    )
    rows, summary = headline_claims(results)
    rendered = format_table(
        ("Workload", "Native", "Nested", "Shadow", "Agile",
         "Speedup vs best", "Slowdown vs native"),
        [
            (
                r["workload"],
                "%.3f" % r["native"],
                "%.3f" % r["nested"],
                "%.3f" % r["shadow"],
                "%.3f" % r["agile"],
                "%.3f" % r["agile_speedup_vs_best"],
                "%.3f" % r["agile_slowdown_vs_native"],
            )
            for r in rows
        ],
        title=(
            "Headline claims (total overhead, 4K) — paper: >=1.12x vs best, "
            "<=1.04x vs native\n"
            "geomean speedup vs best: %.3f   geomean slowdown vs native: %.3f "
            "(max %.3f)"
            % (
                summary["geomean_speedup_vs_best"],
                summary["geomean_slowdown_vs_native"],
                summary["max_slowdown_vs_native"],
            )
        ),
    )
    emit("headline", rendered)
    assert summary["geomean_speedup_vs_best"] > 1.0
    assert summary["geomean_slowdown_vs_native"] < 1.35

@bench_target("headline_claims", output="BENCH_headline_claims.json",
              gates=(Gate("summary.geomean_speedup_vs_best", "higher", 0.1),
                     Gate("summary.geomean_slowdown_vs_native", "lower", 0.1)))
def bench(ctx):
    """The Section VII-A headline numbers at 4K pages."""
    ops = ctx.ops(DEFAULT_OPS)
    results = figure5(ops=ops, page_sizes=(FOUR_KB,))
    rows, summary = headline_claims(results)
    return {"ops": ops, "summary": dict(summary), "workloads": {
        row["workload"]: {
            "agile_speedup_vs_best": row["agile_speedup_vs_best"],
            "agile_slowdown_vs_native": row["agile_slowdown_vs_native"],
        } for row in rows}}
