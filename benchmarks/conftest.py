import os
import sys

# Make the shared _util helpers importable from every benchmark module.
sys.path.insert(0, os.path.dirname(__file__))
