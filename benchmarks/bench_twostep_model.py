"""Section VI methodology: the two-step projection vs direct simulation.

The paper could only *project* agile paging's performance through the
two-step trace methodology and the Table IV linear model. Our simulator
can also run agile paging directly — so this benchmark validates the
methodology port by comparing the projection with the direct run.
"""

from repro.analysis.model import compare_projection_to_direct
from repro.analysis.twostep import two_step_projection
from repro.common.config import sandy_bridge_config
from repro.core.simulator import run_workload
from repro.workloads.suite import DedupLike, GccLike, McfLike
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import DEFAULT_OPS, emit, pct, run_once


def test_twostep_projection_vs_direct(benchmark):
    def measure():
        rows = []
        checks = []
        for cls in (McfLike, GccLike, DedupLike):
            factory = lambda c=cls: c(ops=DEFAULT_OPS)
            projection = two_step_projection(factory)
            direct = run_workload(factory(), sandy_bridge_config(mode="agile"))
            comparison = compare_projection_to_direct(projection, direct)
            projected, measured = comparison["total_overhead"]
            shadow = (projection["shadow"].page_walk_overhead
                      + projection["shadow"].vmm_overhead)
            nested = (projection["nested"].page_walk_overhead
                      + projection["nested"].vmm_overhead)
            rows.append((cls.name, pct(projected), pct(measured),
                         pct(shadow), pct(nested)))
            checks.append((cls.name, projected, measured, shadow, nested))
        return rows, checks

    rows, checks = run_once(benchmark, measure)
    text = format_table(
        ("Workload", "Agile (projected)", "Agile (direct sim)",
         "Shadow", "Nested"),
        rows,
        title="Two-step methodology — projection vs direct simulation",
    )
    emit("twostep", text)
    for name, projected, measured, shadow, nested in checks:
        best = min(shadow, nested)
        # Both the projection and the direct run beat (or tie) the best
        # constituent — the paper's central claim, twice derived.
        assert projected <= best + 0.02, name
        assert measured <= best + 0.02, name

@bench_target("twostep_model", output="BENCH_twostep_model.json")
def bench(ctx):
    """Two-step projection vs direct simulation, three workloads."""
    ops = ctx.ops(DEFAULT_OPS)
    workloads = {}
    for cls in (McfLike, GccLike, DedupLike):
        factory = lambda c=cls: c(ops=ops)
        projection = two_step_projection(factory)
        direct = run_workload(factory(), sandy_bridge_config(mode="agile"))
        comparison = compare_projection_to_direct(projection, direct)
        projected, measured = comparison["total_overhead"]
        workloads[cls.name] = {"projected_overhead": projected,
                               "direct_overhead": measured}
    return {"ops": ops, "workloads": workloads}
