"""Shared helpers for the benchmark harnesses.

Every benchmark prints the paper-style rows to stdout *and* appends them
to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture (run with ``-s`` to watch live).
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Operation budget per simulated run; override for longer, smoother runs:
#   REPRO_OPS=200000 pytest benchmarks/ --benchmark-only
DEFAULT_OPS = int(os.environ.get("REPRO_OPS", "60000"))

# Sweep execution knobs for the grid-shaped harnesses (Table V/VI, Figure 5):
#   REPRO_WORKERS=8 fans cells across processes;
#   REPRO_CACHE_DIR=.repro-cache reuses results until src/repro changes.
DEFAULT_WORKERS = int(os.environ.get("REPRO_WORKERS", "1"))
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "")


def default_runner():
    """A SweepRunner configured from REPRO_WORKERS / REPRO_CACHE_DIR."""
    from repro.runner import ResultCache, SweepRunner

    cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
    return SweepRunner(workers=DEFAULT_WORKERS, cache=cache)


def emit(name, text):
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def pct(value):
    return "%.1f%%" % (100.0 * value)
