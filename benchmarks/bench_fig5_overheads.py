"""Figure 5: execution-time overheads for the whole suite.

The paper's headline figure: page-walk overhead (bottom bar) and VMM
intervention overhead (top dashed bar) for every workload under
{4K, 2M} x {Base native, Nested, Shadow, Agile}.

Shape targets (paper): agile beats the best of nested and shadow for
every workload; nested roughly doubles native walk overheads at 4K;
shadow matches native walks but pays VMtraps on update-heavy loads
(dedup worst); 2M pages shrink walk overheads across the board.
"""

from repro.analysis.experiments import figure5, headline_claims
from repro.analysis.plots import render_figure5
from repro.analysis.tables import figure5_rows, format_table
from repro.bench import Gate, bench_target

from _util import DEFAULT_OPS, default_runner, emit, run_once


def test_figure5_overheads(benchmark):
    results = run_once(
        benchmark, lambda: figure5(ops=DEFAULT_OPS, runner=default_runner()))
    rows = figure5_rows(results)
    text = format_table(
        ("Workload", "Config", "Page walk", "VMM", "Total"),
        rows,
        title="Figure 5 — execution time overheads (ops=%d)" % DEFAULT_OPS,
    )
    text += "\n\n" + render_figure5(results, "4K")
    text += "\n\n" + render_figure5(results, "2M")
    emit("figure5", text)

    _rows, summary = headline_claims(results)
    assert summary["geomean_speedup_vs_best"] > 1.0
    for name, configs in results.items():
        def total(size, mode):
            metrics = configs[(size, mode)]
            return metrics.page_walk_overhead + metrics.vmm_overhead

        best = min(total("4K", "nested"), total("4K", "shadow"))
        assert total("4K", "agile") <= best * 1.05, name
        # 2M large pages reduce agile walk overheads (Section VII point 5).
        assert (configs[("2M", "agile")].page_walk_overhead
                <= configs[("4K", "agile")].page_walk_overhead + 0.01), name

@bench_target("fig5_overheads", output="BENCH_fig5_overheads.json",
              gates=(Gate("summary.geomean_speedup_vs_best", "higher", 0.1),))
def bench(ctx):
    """Whole-suite total overheads plus the headline summary (Figure 5)."""
    ops = ctx.ops(DEFAULT_OPS)
    results = figure5(ops=ops, runner=default_runner())
    _rows, summary = headline_claims(results)
    totals = {}
    for name, configs in results.items():
        totals[name] = {
            "%s_%s" % (size, mode): (configs[(size, mode)].page_walk_overhead
                                     + configs[(size, mode)].vmm_overhead)
            for size, mode in configs}
    return {"ops": ops, "totals": totals, "summary": dict(summary)}
