"""Table VI: % of TLB misses served by each agile mode (no PWCs).

Paper shape: >80% of misses in full shadow mode for every workload,
upper levels almost never switched, and 4-5 average memory accesses per
miss (down from nested paging's 24).
"""

from repro.analysis.experiments import table6
from repro.analysis.tables import format_table, table6_rows
from repro.bench import Gate, bench_target

from _util import DEFAULT_OPS, default_runner, emit, run_once


def test_table6_mode_mix(benchmark):
    results = run_once(
        benchmark, lambda: table6(ops=DEFAULT_OPS, runner=default_runner()))
    rows = table6_rows(results)
    text = format_table(
        ("Workload", "Shadow", "L4", "L3", "L2", "L1", "Nested", "Avg refs"),
        rows,
        title="Table VI — TLB miss mix by agile mode, 4K pages, no PWCs",
    )
    emit("table6", text)
    for name, metrics in results.items():
        mix = metrics.mode_mix()
        assert mix.get("Shadow", 0.0) > 0.5, (name, mix)
        assert metrics.avg_refs_per_miss < 12.0, name
    shadow_fracs = [m.mode_mix().get("Shadow", 0.0) for m in results.values()]
    # Paper: "more than 80% of TLB misses are covered under complete
    # shadow mode" — check the suite average.
    assert sum(shadow_fracs) / len(shadow_fracs) > 0.8

@bench_target("table6_mode_mix", output="BENCH_table6_mode_mix.json",
              gates=(Gate("summary.mean_shadow_fraction", "higher", 0.1),))
def bench(ctx):
    """Where agile mode serves TLB misses (paper Table VI)."""
    ops = ctx.ops(DEFAULT_OPS)
    results = table6(ops=ops, runner=default_runner())
    workloads = {}
    for name, metrics in results.items():
        mix = metrics.mode_mix()
        workloads[name] = {
            "shadow_fraction": mix.get("Shadow", 0.0),
            "avg_refs_per_miss": metrics.avg_refs_per_miss,
        }
    fracs = [cell["shadow_fraction"] for cell in workloads.values()]
    return {"ops": ops, "workloads": workloads,
            "summary": {"mean_shadow_fraction": sum(fracs) / len(fracs)}}
