"""Table III: the simulated system configuration.

Prints the TLB hierarchy geometry (which must match the paper's table
verbatim) and benchmarks raw TLB lookup throughput as a sanity check
that the hierarchy is cheap enough to simulate at scale.
"""

from repro.common.config import sandy_bridge_config, sandy_bridge_tlbs
from repro.common.params import FOUR_KB
from repro.hw.tlbhierarchy import TLBHierarchy
from repro.analysis.tables import format_table
from repro.bench import Gate, bench_target

from _util import emit


def test_table3_geometry_and_lookup_throughput(benchmark):
    tlbs = sandy_bridge_tlbs()
    rows = []
    for structure, geometries in (("L1 DTLB", tlbs.l1d), ("L1 ITLB", tlbs.l1i),
                                  ("L2 TLB", tlbs.l2)):
        for size_name, geometry in sorted(geometries.items()):
            rows.append((structure, size_name,
                         "%d-entry" % geometry.entries,
                         "%d-way" % geometry.ways))
    text = format_table(
        ("Structure", "Page size", "Entries", "Associativity"),
        rows,
        title="Table III — per-core TLB hierarchy (Sandy Bridge)",
    )
    emit("table3", text)

    hierarchy = TLBHierarchy(tlbs, FOUR_KB)
    for vpn in range(512):
        hierarchy.fill(1, vpn << 12, frame=vpn, writable=True, dirty=True)

    def probe():
        hits = 0
        for vpn in range(512):
            entry, _level = hierarchy.lookup(1, vpn << 12)
            hits += entry is not None
        return hits

    hits = benchmark(probe)
    assert hits > 0

    config = sandy_bridge_config()
    assert config.tlbs.l1d["4K"].entries == 64
    assert config.tlbs.l2["4K"].entries == 512

@bench_target("table3_config", output="BENCH_table3_config.json",
              gates=(Gate("lookups_per_sec", "higher", 0.5),))
def bench(ctx):
    """TLB geometry sanity plus raw lookup throughput (paper Table III)."""
    tlbs = sandy_bridge_tlbs()
    hierarchy = TLBHierarchy(tlbs, FOUR_KB)
    for vpn in range(512):
        hierarchy.fill(1, vpn << 12, frame=vpn, writable=True, dirty=True)

    def probe():
        for vpn in range(512):
            hierarchy.lookup(1, vpn << 12)

    best = ctx.best_of(probe, repeat=5, min_time=0.05, warmup=1)
    return {
        "geometry": {"l1d_4k_entries": tlbs.l1d["4K"].entries,
                     "l2_4k_entries": tlbs.l2["4K"].entries},
        "lookups_per_sec": round(512 / best),
    }
