"""Table III: the simulated system configuration.

Prints the TLB hierarchy geometry (which must match the paper's table
verbatim) and benchmarks raw TLB lookup throughput as a sanity check
that the hierarchy is cheap enough to simulate at scale.
"""

from repro.common.config import sandy_bridge_config, sandy_bridge_tlbs
from repro.common.params import FOUR_KB
from repro.hw.tlbhierarchy import TLBHierarchy
from repro.analysis.tables import format_table

from _util import emit


def test_table3_geometry_and_lookup_throughput(benchmark):
    tlbs = sandy_bridge_tlbs()
    rows = []
    for structure, geometries in (("L1 DTLB", tlbs.l1d), ("L1 ITLB", tlbs.l1i),
                                  ("L2 TLB", tlbs.l2)):
        for size_name, geometry in sorted(geometries.items()):
            rows.append((structure, size_name,
                         "%d-entry" % geometry.entries,
                         "%d-way" % geometry.ways))
    text = format_table(
        ("Structure", "Page size", "Entries", "Associativity"),
        rows,
        title="Table III — per-core TLB hierarchy (Sandy Bridge)",
    )
    emit("table3", text)

    hierarchy = TLBHierarchy(tlbs, FOUR_KB)
    for vpn in range(512):
        hierarchy.fill(1, vpn << 12, frame=vpn, writable=True, dirty=True)

    def probe():
        hits = 0
        for vpn in range(512):
            entry, _level = hierarchy.lookup(1, vpn << 12)
            hits += entry is not None
        return hits

    hits = benchmark(probe)
    assert hits > 0

    config = sandy_bridge_config()
    assert config.tlbs.l1d["4K"].entries == 64
    assert config.tlbs.l2["4K"].entries == 512
