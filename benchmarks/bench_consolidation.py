"""Multi-VM consolidation benchmark: the VMs x modes packing grid.

Each cell boots one :class:`~repro.core.hostsys.HostSystem` with N
tenant guests (cycling through the consolidation family: a zipf hog, a
context-switch storm, a reclaim thrasher) over a *fixed* physical frame
budget, so the consolidation ratio climbs with N: at 1-2 VMs the host
has headroom, at 4 VMs the commit ledger crosses the physical limit and
the balloon driver starts revoking frames. Reported per cell:
wall-clock guest throughput, the Figure-5-style mean per-VM translation
overhead (page-walk + VMM cycles over each VM's own measured cycles),
and the host's reclaim accounting (balloon episodes / frames revoked,
world switches).

The gated headline mirrors the paper's claim under multiplexing: at the
highest consolidation ratio, agile's mean per-VM overhead stays at or
below the best constituent's (``summary.agile_vs_best_overhead_ratio``,
deterministic), alongside a generous wall-clock floor
(``summary.min_guest_ops_per_sec``, host-dependent).

Regenerate the repo-root report with::

    PYTHONPATH=src python -m repro bench consolidation
"""

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.bench import BenchContext, Gate, bench_target  # noqa: E402
from repro.common.config import (  # noqa: E402
    MODE_AGILE,
    MODE_NESTED,
    MODE_SHADOW,
    HostConfig,
    sandy_bridge_config,
)
from repro.core.hostsys import run_consolidated  # noqa: E402
from repro.workloads.consolidation import (  # noqa: E402
    ContextSwitchStorm,
    PackedHog,
    ReclaimThrasher,
)

MODES = (MODE_NESTED, MODE_SHADOW, MODE_AGILE)
VM_COUNTS = (1, 2, 4)

#: Fixed physical budget and per-VM reservation: 1-2 VMs fit, 4 VMs
#: overcommit roughly 5:4 on reservations and ~1.6:1 on live frames,
#: which is what pushes the ledger into balloon reclaim at 4:1.
HOST_FRAMES = 1536
VM_FRAMES = 2048

# The hog is sized past the 512-entry L2 TLB (the default 512-page
# footprint warms into full TLB residency and measures nothing).
TENANTS = (
    lambda ops, seed: PackedHog(ops=ops, seed=seed, npages=1024,
                                hot_pages=96),
    lambda ops, seed: ContextSwitchStorm(ops=ops, seed=seed),
    lambda ops, seed: ReclaimThrasher(ops=ops, seed=seed),
)


def _tenants(count, ops, seed):
    """N deterministic tenants, cycling through the family."""
    return [TENANTS[i % len(TENANTS)](ops, seed + i)
            for i in range(count)]


def _cell(mode, vms, ops, seed):
    machine_config = sandy_bridge_config(mode=mode)
    host_config = HostConfig(vms=vms, host_frames=HOST_FRAMES,
                             vm_frames=VM_FRAMES)
    workloads = _tenants(vms, ops, seed)
    start = time.perf_counter()
    per_vm, report = run_consolidated(
        workloads, host_config=host_config, machine_config=machine_config)
    elapsed = time.perf_counter() - start
    total_ops = sum(m.ops for m in per_vm)
    overheads = [m.page_walk_overhead + m.vmm_overhead for m in per_vm]
    return {
        "mode": mode,
        "vms": vms,
        "ops": total_ops,
        "guest_ops_per_sec": round(total_ops / elapsed),
        "per_vm_overhead": round(sum(overheads) / len(overheads), 4),
        "per_vm_overheads": [round(o, 4) for o in overheads],
        "world_switches": report["world_switches"],
        "balloon_episodes": report["balloon_episodes"],
        "balloon_frames": report["balloon_frames"],
        "overcommit_ratio": report["overcommit_ratio"],
    }


def run_consolidation(ops=8_000, vm_counts=VM_COUNTS, modes=MODES, seed=21):
    """Run the grid; returns the JSON-ready result dict."""
    grid = {}
    for mode in modes:
        grid[mode] = [_cell(mode, vms, ops, seed) for vms in vm_counts]
    top = max(vm_counts)

    def overhead_at_top(mode):
        for cell in grid[mode]:
            if cell["vms"] == top:
                return cell["per_vm_overhead"]
        raise KeyError(top)

    agile = overhead_at_top(MODE_AGILE)
    best = min(overhead_at_top(MODE_NESTED), overhead_at_top(MODE_SHADOW))
    cells = [cell for mode in grid for cell in grid[mode]]
    return {
        "ops_per_vm": ops,
        "host_frames": HOST_FRAMES,
        "vm_frames": VM_FRAMES,
        "modes": grid,
        "summary": {
            "top_ratio": top,
            "agile_per_vm_overhead": agile,
            "best_constituent_overhead": best,
            "agile_vs_best_overhead_ratio": round(agile / best, 4),
            "min_guest_ops_per_sec": min(c["guest_ops_per_sec"]
                                         for c in cells),
            "reclaim_frames_at_top": sum(
                c["balloon_frames"] for c in cells if c["vms"] == top),
        },
    }


@bench_target("consolidation", output="BENCH_consolidation.json",
              gates=(Gate("summary.agile_vs_best_overhead_ratio",
                          "lower", 0.2),
                     # Wall-clock, and quick mode amortizes warmup over
                     # 4x fewer measured ops: gate only against collapse.
                     Gate("summary.min_guest_ops_per_sec", "higher", 0.75)))
def bench(ctx):
    """Harness entry point: full grid, or a 1/2-VM smoke grid in --quick."""
    ops = ctx.ops(8_000, quick=2_000)
    vm_counts = (1, 2, 4)
    return run_consolidation(ops=ops, vm_counts=vm_counts)


def main(argv=None):
    from repro.bench import run_target

    ctx = BenchContext(quick="--smoke" in (argv or sys.argv[1:]))
    target = bench.__bench_target__
    if ctx.quick:
        # Smoke runs must not clobber the committed full report.
        import tempfile

        out_dir = tempfile.mkdtemp(prefix="bench-smoke-")
    else:
        out_dir = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..")
    report, path = run_target(target, ctx, out_dir=out_dir)
    result = report["result"]
    for mode, cells in result["modes"].items():
        for cell in cells:
            print("%-7s N=%d  %8d guest ops/s  overhead %8.3f  "
                  "balloon %5d frames  ws %4d"
                  % (mode, cell["vms"], cell["guest_ops_per_sec"],
                     cell["per_vm_overhead"], cell["balloon_frames"],
                     cell["world_switches"]))
    summary = result["summary"]
    print("at %d:1 agile %.3f vs best %.3f (ratio %.3f)"
          % (summary["top_ratio"], summary["agile_per_vm_overhead"],
             summary["best_constituent_overhead"],
             summary["agile_vs_best_overhead_ratio"]))
    print("report written to %s" % os.path.normpath(path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
