"""Table I: the trade-off grid across the four techniques.

Paper row targets: TLB hits fast everywhere; max memory accesses on a
TLB miss 4 / 24 / 4 / ~(4-5 avg); page-table updates direct everywhere
except shadow paging (mediated by the VMM).
"""

from repro.analysis.experiments import table1_measurements
from repro.analysis.tables import format_table, table1_rows
from repro.bench import bench_target

from _util import emit, run_once


def test_table1_tradeoffs(benchmark):
    measurements = run_once(benchmark, table1_measurements)
    rows = table1_rows(measurements)
    text = format_table(
        ("Technique", "TLB hit", "Max refs on miss", "Page table updates",
         "Hardware support"),
        rows,
        title="Table I — trade-offs (measured worst-case walk references)",
    )
    emit("table1", text)
    assert measurements["native"]["max_refs"] == 4
    assert measurements["nested"]["max_refs"] == 24
    assert measurements["shadow"]["max_refs"] == 4
    assert measurements["shadow"]["pt_update_traps"] >= 1
    assert measurements["agile"]["pt_update_traps"] == 0

@bench_target("table1_tradeoffs", output="BENCH_table1_tradeoffs.json")
def bench(ctx):
    """Measured worst-case walk refs and PT-update traps (paper Table I)."""
    measurements = table1_measurements()
    return {"techniques": {
        name: {"max_refs": data["max_refs"],
               "pt_update_traps": data["pt_update_traps"]}
        for name, data in measurements.items()}}
