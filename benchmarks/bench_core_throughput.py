"""Headline core-throughput benchmark: fastpath vs reference.

Times identical access streams through both simulation cores — the
reference per-op ``System.access`` loop and the fastpath
``FastSystem.access_batch`` dispatch — across all four paging modes and
several stream shapes, asserting bit-identical ``RunMetrics`` along the
way (a benchmark that drifts from the reference would be measuring a
different machine). A ``repro.obs.metrics`` registry rides on the timed
fastpath system, so every cell reports *why* it fell out of the inline
loop: per-reason fallback counts (``fastpath.fallback.miss`` vs
``write_upgrade`` vs ...) explain, e.g., the ``mixed`` scenario's lower
speedup directly in the BENCH JSON.

Registered with the ``repro.bench`` harness; regenerate the repo-root
report with::

    PYTHONPATH=src python -m repro bench core_throughput

(running this file directly still works and delegates to the harness).
The tier-1 smoke gate lives in ``tests/fastpath/test_bench_smoke.py``:
it runs :func:`run_core_throughput` in smoke mode and fails if any
mode's best speedup drops below ``SPEEDUP_GATE``.
"""

import math
import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.bench import BenchContext, Gate, bench_target  # noqa: E402
from repro.common.config import ALL_MODES, sandy_bridge_config  # noqa: E402
from repro.core.machine import System  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

# The tier-1 gate (enforced in CI smoke mode) and the ROADMAP goal
# (reported in the JSON, not gated: interpreter speed varies by host).
SPEEDUP_GATE = 3.0
SPEEDUP_GOAL = 10.0

# Stream shapes: (name, working-set pages, hot pages, hot fraction).
# "hot" models a tight loop (TLB-MRU residency), "l1" an L1-resident
# working set, "l2" an L2-resident one with regular L1 refills.
SCENARIOS = (
    ("hot", 64, 8, 1.0),
    ("l1", 64, 48, 1.0),
    ("l2", 512, 480, 1.0),
    ("mixed", 1024, 480, 0.95),
)
SMOKE_SCENARIOS = ("hot", "l1")


def _build(mode, core, pages):
    system = System(sandy_bridge_config(mode, core=core))
    proc = system.kernel.create_process()
    base = system.kernel.mmap(proc, size=pages * 4096)
    return system, base


def _stream(base, pages, hot, hot_fraction, ops, seed):
    rng = random.Random(seed)
    vas = []
    append = vas.append
    for _ in range(ops):
        if hot_fraction >= 1.0 or rng.random() < hot_fraction:
            append(base + 4096 * rng.randrange(hot))
        else:
            append(base + 4096 * rng.randrange(pages))
    return vas


def _time_pair(mode, scenario, ops, repeat, seed, registry=None):
    """Best-of-``repeat`` timings for one (mode, scenario) cell.

    When ``registry`` is given, the *last* attempt's fastpath run carries
    a fresh metrics registry whose fallback counters land in the cell
    (``fallbacks``) and merge into ``registry`` — one attempt's worth,
    so counts stay proportional to ``ops``, not ``ops * repeat``.
    """
    name, pages, hot, hot_fraction = scenario
    best_ref = best_fast = math.inf
    fallbacks = None
    for attempt in range(repeat):
        ref, base = _build(mode, "reference", pages)
        fast, fast_base = _build(mode, "fastpath", pages)
        assert base == fast_base
        cell_registry = None
        if registry is not None and attempt == repeat - 1:
            cell_registry = MetricsRegistry()
            fast.attach_observability(metrics=cell_registry)
        vas = _stream(base, pages, hot, hot_fraction, ops, seed + attempt)
        warm = vas[: max(1000, ops // 20)]
        for va in warm:
            ref.access(va)
        fast.access_batch(warm)
        start = time.perf_counter()
        access = ref.access
        for va in vas:
            access(va)
        ref_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        fast.access_batch(vas)
        fast_elapsed = time.perf_counter() - start
        ref_metrics = ref.collect_metrics().to_dict()
        fast_metrics = fast.collect_metrics().to_dict()
        if ref_metrics != fast_metrics:
            diverged = sorted(k for k in ref_metrics
                              if ref_metrics[k] != fast_metrics[k])
            raise AssertionError(
                "cores diverged on %s/%s: %s" % (mode, name, diverged))
        if cell_registry is not None:
            snap = cell_registry.snapshot()
            fallbacks = {key.split(".")[-1]: value
                         for key, value in sorted(snap.counters.items())
                         if key.startswith("fastpath.fallback.")}
            fallbacks["inline"] = snap.counters.get("fastpath.inline_ops", 0)
            registry.merge_snapshot(snap)
        best_ref = min(best_ref, ref_elapsed)
        best_fast = min(best_fast, fast_elapsed)
    cell = {
        "scenario": name,
        "ops": ops,
        "reference_ops_per_sec": round(ops / best_ref),
        "fastpath_ops_per_sec": round(ops / best_fast),
        "speedup": round(best_ref / best_fast, 2),
    }
    if fallbacks is not None:
        cell["fallbacks"] = fallbacks
    return cell


def run_core_throughput(ops=200_000, repeat=2, seed=11, modes=ALL_MODES,
                        scenarios=None, registry=None):
    """Run the full grid; returns the JSON-ready result dict."""
    wanted = scenarios
    grid = [s for s in SCENARIOS if wanted is None or s[0] in wanted]
    results = {}
    for mode in modes:
        cells = [_time_pair(mode, scenario, ops, repeat, seed,
                            registry=registry)
                 for scenario in grid]
        best = max(cell["speedup"] for cell in cells)
        results[mode] = {"scenarios": cells, "best_speedup": best}
    speedups = [cell["speedup"]
                for mode in results for cell in results[mode]["scenarios"]]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "ops_per_cell": ops,
        "repeat": repeat,
        "gate_speedup": SPEEDUP_GATE,
        "goal_speedup": SPEEDUP_GOAL,
        "modes": results,
        "summary": {
            "geomean_speedup": round(geomean, 2),
            "min_best_speedup": min(results[m]["best_speedup"]
                                    for m in results),
            "max_speedup": max(speedups),
        },
    }


@bench_target("core_throughput", output="BENCH_core_throughput.json",
              gates=(Gate("summary.geomean_speedup", "higher", 0.2),
                     Gate("summary.min_best_speedup", "higher", 0.2)))
def bench(ctx):
    """Harness entry point: full grid, or hot+l1 smoke grid in --quick."""
    ops = ctx.ops(200_000, quick=30_000)
    repeat = ctx.repeat if ctx.repeat is not None else 2
    return run_core_throughput(
        ops=ops, repeat=repeat,
        scenarios=SMOKE_SCENARIOS if ctx.quick else None,
        registry=ctx.metrics)


def main(argv=None):
    from repro.bench import run_target

    ctx = BenchContext(quick="--smoke" in (argv or sys.argv[1:]))
    target = bench.__bench_target__
    if ctx.quick:
        # Smoke runs must not clobber the committed full report.
        import tempfile

        out_dir = tempfile.mkdtemp(prefix="bench-smoke-")
    else:
        out_dir = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..")
    report, path = run_target(target, ctx, out_dir=out_dir)
    result = report["result"]
    for mode, data in result["modes"].items():
        for cell in data["scenarios"]:
            print("%-7s %-6s ref %8d ops/s   fast %8d ops/s   %5.2fx"
                  % (mode, cell["scenario"], cell["reference_ops_per_sec"],
                     cell["fastpath_ops_per_sec"], cell["speedup"]))
    print("geomean %.2fx, best %.2fx (gate %.1fx, goal %.1fx)"
          % (result["summary"]["geomean_speedup"],
             result["summary"]["max_speedup"],
             SPEEDUP_GATE, SPEEDUP_GOAL))
    print("report written to %s" % os.path.normpath(path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
