"""Headline core-throughput benchmark: fastpath vs reference.

Times identical access streams through both simulation cores — the
reference per-op ``System.access`` loop and the fastpath
``FastSystem.access_batch`` dispatch — across all four paging modes and
several stream shapes, asserting bit-identical ``RunMetrics`` along the
way (a benchmark that drifts from the reference would be measuring a
different machine). Writes ``BENCH_core_throughput.json`` at the repo
root so every later PR shows its speed delta.

Run directly::

    PYTHONPATH=src python benchmarks/bench_core_throughput.py [--ops N]

The tier-1 smoke gate lives in ``tests/fastpath/test_bench_smoke.py``:
it runs :func:`run_core_throughput` in smoke mode and fails if any
mode's best speedup drops below ``SPEEDUP_GATE``.
"""

import argparse
import json
import math
import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.common.config import ALL_MODES, sandy_bridge_config  # noqa: E402
from repro.core.machine import System  # noqa: E402

SCHEMA = 1
# The tier-1 gate (enforced in CI smoke mode) and the ROADMAP goal
# (reported in the JSON, not gated: interpreter speed varies by host).
SPEEDUP_GATE = 3.0
SPEEDUP_GOAL = 10.0

# Stream shapes: (name, working-set pages, hot pages, hot fraction).
# "hot" models a tight loop (TLB-MRU residency), "l1" an L1-resident
# working set, "l2" an L2-resident one with regular L1 refills.
SCENARIOS = (
    ("hot", 64, 8, 1.0),
    ("l1", 64, 48, 1.0),
    ("l2", 512, 480, 1.0),
    ("mixed", 1024, 480, 0.95),
)
SMOKE_SCENARIOS = ("hot", "l1")


def _build(mode, core, pages):
    system = System(sandy_bridge_config(mode, core=core))
    proc = system.kernel.create_process()
    base = system.kernel.mmap(proc, size=pages * 4096)
    return system, base


def _stream(base, pages, hot, hot_fraction, ops, seed):
    rng = random.Random(seed)
    vas = []
    append = vas.append
    for _ in range(ops):
        if hot_fraction >= 1.0 or rng.random() < hot_fraction:
            append(base + 4096 * rng.randrange(hot))
        else:
            append(base + 4096 * rng.randrange(pages))
    return vas


def _time_pair(mode, scenario, ops, repeat, seed):
    """Best-of-``repeat`` timings for one (mode, scenario) cell."""
    name, pages, hot, hot_fraction = scenario
    best_ref = best_fast = math.inf
    for attempt in range(repeat):
        ref, base = _build(mode, "reference", pages)
        fast, fast_base = _build(mode, "fastpath", pages)
        assert base == fast_base
        vas = _stream(base, pages, hot, hot_fraction, ops, seed + attempt)
        warm = vas[: max(1000, ops // 20)]
        for va in warm:
            ref.access(va)
        fast.access_batch(warm)
        start = time.perf_counter()
        access = ref.access
        for va in vas:
            access(va)
        ref_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        fast.access_batch(vas)
        fast_elapsed = time.perf_counter() - start
        ref_metrics = ref.collect_metrics().to_dict()
        fast_metrics = fast.collect_metrics().to_dict()
        if ref_metrics != fast_metrics:
            diverged = sorted(k for k in ref_metrics
                              if ref_metrics[k] != fast_metrics[k])
            raise AssertionError(
                "cores diverged on %s/%s: %s" % (mode, name, diverged))
        best_ref = min(best_ref, ref_elapsed)
        best_fast = min(best_fast, fast_elapsed)
    return {
        "scenario": name,
        "ops": ops,
        "reference_ops_per_sec": round(ops / best_ref),
        "fastpath_ops_per_sec": round(ops / best_fast),
        "speedup": round(best_ref / best_fast, 2),
    }


def run_core_throughput(ops=200_000, repeat=2, seed=11, modes=ALL_MODES,
                        scenarios=None):
    """Run the full grid; returns the JSON-ready report dict."""
    wanted = scenarios
    grid = [s for s in SCENARIOS if wanted is None or s[0] in wanted]
    results = {}
    for mode in modes:
        cells = [_time_pair(mode, scenario, ops, repeat, seed)
                 for scenario in grid]
        best = max(cell["speedup"] for cell in cells)
        results[mode] = {"scenarios": cells, "best_speedup": best}
    speedups = [cell["speedup"]
                for mode in results for cell in results[mode]["scenarios"]]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "schema": SCHEMA,
        "benchmark": "core_throughput",
        "ops_per_cell": ops,
        "repeat": repeat,
        "gate_speedup": SPEEDUP_GATE,
        "goal_speedup": SPEEDUP_GOAL,
        "modes": results,
        "summary": {
            "geomean_speedup": round(geomean, 2),
            "min_best_speedup": min(results[m]["best_speedup"]
                                    for m in results),
            "max_speedup": max(speedups),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=200_000,
                        help="accesses timed per cell")
    parser.add_argument("--repeat", type=int, default=2,
                        help="attempts per cell (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, no file written")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="output path (default: repo-root "
                             "BENCH_core_throughput.json)")
    args = parser.parse_args(argv)
    report = run_core_throughput(
        ops=args.ops, repeat=args.repeat,
        scenarios=SMOKE_SCENARIOS if args.smoke else None)
    for mode, data in report["modes"].items():
        for cell in data["scenarios"]:
            print("%-7s %-6s ref %8d ops/s   fast %8d ops/s   %5.2fx"
                  % (mode, cell["scenario"], cell["reference_ops_per_sec"],
                     cell["fastpath_ops_per_sec"], cell["speedup"]))
    print("geomean %.2fx, best %.2fx (gate %.1fx, goal %.1fx)"
          % (report["summary"]["geomean_speedup"],
             report["summary"]["max_speedup"],
             SPEEDUP_GATE, SPEEDUP_GOAL))
    if not args.smoke:
        out = args.out or os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_core_throughput.json")
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("report written to %s" % os.path.normpath(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
