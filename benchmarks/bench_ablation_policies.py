"""Ablation: the Section III-C policy design space.

Compares the two nested=>shadow reversion policies (plus no reversion)
and sweeps the shadow=>nested write threshold, reporting where TLB
misses get served and how many VMtraps remain.
"""

from dataclasses import replace

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import Simulator
from repro.workloads.suite import MemcachedLike
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import DEFAULT_OPS, emit, pct, run_once


def run_with_policy(ops=DEFAULT_OPS, **policy_overrides):
    config = sandy_bridge_config(mode="agile")
    config = replace(config, policy=replace(config.policy, **policy_overrides))
    system = System(config)
    return Simulator(system).run(MemcachedLike(ops=ops))


def test_policy_ablation(benchmark):
    def measure():
        rows = []
        results = {}
        for label, overrides in (
            ("dirty-bit reversion", dict(revert_policy="dirty")),
            ("simple reversion", dict(revert_policy="simple")),
            ("no reversion", dict(revert_policy="none")),
            ("threshold=1", dict(write_threshold=1)),
            ("threshold=8", dict(write_threshold=8)),
        ):
            metrics = run_with_policy(**overrides)
            results[label] = metrics
            mix = metrics.mode_mix()
            rows.append((
                label,
                pct(mix.get("Shadow", 0.0)),
                "%.2f" % metrics.avg_refs_per_miss,
                metrics.vmtraps,
                pct(metrics.vmm_overhead),
                pct(metrics.page_walk_overhead),
            ))
        return rows, results

    rows, results = run_once(benchmark, measure)
    text = format_table(
        ("Policy variant", "Shadow-mode misses", "Avg refs/miss",
         "VMtraps", "VMM overhead", "PW overhead"),
        rows,
        title="Ablation — switching policies (memcached, agile mode)",
    )
    emit("ablation_policies", text)
    # An eager trigger (threshold=1) must not trap more than a lazy one.
    assert results["threshold=1"].vmtraps <= results["threshold=8"].vmtraps
    # Without reversion, fewer misses are served in full shadow mode.
    assert (results["no reversion"].mode_mix().get("Shadow", 0.0)
            <= results["dirty-bit reversion"].mode_mix().get("Shadow", 0.0) + 1e-9)

@bench_target("ablation_policies", output="BENCH_ablation_policies.json")
def bench(ctx):
    """Switching-policy design space on memcached (Section III-C)."""
    ops = ctx.ops(DEFAULT_OPS)
    policies = {}
    for label, overrides in (
        ("dirty_reversion", dict(revert_policy="dirty")),
        ("simple_reversion", dict(revert_policy="simple")),
        ("no_reversion", dict(revert_policy="none")),
        ("threshold_1", dict(write_threshold=1)),
        ("threshold_8", dict(write_threshold=8)),
    ):
        metrics = run_with_policy(ops=ops, **overrides)
        policies[label] = {
            "shadow_fraction": metrics.mode_mix().get("Shadow", 0.0),
            "avg_refs_per_miss": metrics.avg_refs_per_miss,
            "vmtraps": metrics.vmtraps,
            "vmm_overhead": metrics.vmm_overhead,
        }
    return {"ops": ops, "policies": policies}
