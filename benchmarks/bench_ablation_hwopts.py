"""Ablation: the Section IV optional hardware optimizations.

Toggles the A/D-bit hardware assist and the CR3 cache independently and
measures the VMtrap overhead agile paging pays without them, on the two
workloads most sensitive to each (dedup: dirty-bit traffic; gcc/dedup:
context switches).
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table
from repro.workloads.suite import DedupLike, GccLike
from repro.bench import bench_target

from _util import DEFAULT_OPS, emit, pct, run_once

VARIANTS = (
    ("both opts", dict(hw_ad_assist=True, hw_cr3_cache=True)),
    ("no A/D assist", dict(hw_ad_assist=False, hw_cr3_cache=True)),
    ("no CR3 cache", dict(hw_ad_assist=True, hw_cr3_cache=False)),
    ("neither", dict(hw_ad_assist=False, hw_cr3_cache=False)),
)


def test_hardware_optimization_ablation(benchmark):
    def measure():
        rows = []
        results = {}
        for cls in (DedupLike, GccLike):
            for label, overrides in VARIANTS:
                workload = cls(ops=DEFAULT_OPS)
                metrics = run_one(workload, "agile", **overrides)
                results[(cls.name, label)] = metrics
                rows.append((
                    cls.name,
                    label,
                    pct(metrics.vmm_overhead),
                    metrics.vmtraps,
                    metrics.trap_counts.get("dirty_sync", 0),
                    metrics.trap_counts.get("context_switch", 0),
                ))
        return rows, results

    rows, results = run_once(benchmark, measure)
    text = format_table(
        ("Workload", "Variant", "VMM overhead", "VMtraps",
         "dirty_sync", "context_switch"),
        rows,
        title="Ablation — Section IV hardware optimizations (agile mode)",
    )
    emit("ablation_hwopts", text)
    # The optimizations only remove traps, never add them.
    for name in ("dedup", "gcc"):
        assert (results[(name, "both opts")].vmtraps
                <= results[(name, "neither")].vmtraps)
    # Dropping the CR3 cache exposes context-switch traps on dedup
    # (its pipeline switches constantly).
    assert (results[("dedup", "no CR3 cache")].trap_counts.get("context_switch", 0)
            > results[("dedup", "both opts")].trap_counts.get("context_switch", 0))

@bench_target("ablation_hwopts", output="BENCH_ablation_hwopts.json")
def bench(ctx):
    """VMtrap cost of dropping the Section IV hardware optimizations."""
    ops = ctx.ops(DEFAULT_OPS)
    workloads = {}
    for cls in (DedupLike, GccLike):
        per_variant = {}
        for label, overrides in VARIANTS:
            metrics = run_one(cls(ops=ops), "agile", **overrides)
            key = label.replace(" ", "_").replace("/", "")
            per_variant[key] = {
                "vmm_overhead": metrics.vmm_overhead,
                "vmtraps": metrics.vmtraps,
                "dirty_sync": metrics.trap_counts.get("dirty_sync", 0),
                "context_switch": metrics.trap_counts.get(
                    "context_switch", 0),
            }
        workloads[cls.name] = per_variant
    return {"ops": ops, "workloads": workloads}
