"""Table IV: the linear performance model, applied end to end.

Runs one workload under native/nested/shadow, feeds the measured
counters through the paper's formulas, and checks the derived overheads
agree with the simulator's own accounting.
"""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core import costmodel
from repro.core.simulator import run_workload
from repro.workloads.suite import McfLike
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import DEFAULT_OPS, emit, pct, run_once


def test_table4_model_consistency(benchmark):
    def measure():
        runs = {}
        for mode in ("native", "nested", "shadow"):
            metrics = run_workload(McfLike(ops=DEFAULT_OPS),
                                   sandy_bridge_config(mode=mode))
            runs[mode] = metrics
        return runs

    runs = run_once(benchmark, measure)
    native = costmodel.measured_run_from_metrics(runs["native"])
    e_ideal = costmodel.ideal_cycles(native)
    rows = []
    for mode, metrics in runs.items():
        run = costmodel.measured_run_from_metrics(metrics)
        rows.append((
            mode,
            pct(costmodel.page_walk_overhead(run, e_ideal)),
            pct(costmodel.vmm_overhead(run, e_ideal)),
            "%.1f" % run.avg_cycles_per_miss,
        ))
    text = format_table(
        ("Config", "PW (model)", "VMM (model)", "Cycles/miss (C)"),
        rows,
        title="Table IV — performance-model outputs on measured runs (mcf)",
    )
    emit("table4", text)

    # The model's PW for the native run must reproduce the simulator's
    # own accounting: both express the same walk cycles, over different
    # ideal-time baselines (the model's E_ideal folds in L2-TLB and
    # fault handling time; the simulator's ideal_cycles does not).
    model_pw = costmodel.page_walk_overhead(native, e_ideal)
    direct_pw = runs["native"].page_walk_overhead
    assert model_pw * e_ideal == pytest.approx(
        direct_pw * runs["native"].ideal_cycles, rel=0.01
    )

@bench_target("table4_model", output="BENCH_table4_model.json")
def bench(ctx):
    """Linear-model overheads on measured runs (paper Table IV)."""
    ops = ctx.ops(DEFAULT_OPS)
    runs = {mode: run_workload(McfLike(ops=ops),
                               sandy_bridge_config(mode=mode))
            for mode in ("native", "nested", "shadow")}
    native = costmodel.measured_run_from_metrics(runs["native"])
    e_ideal = costmodel.ideal_cycles(native)
    modes = {}
    for mode, metrics in runs.items():
        run = costmodel.measured_run_from_metrics(metrics)
        modes[mode] = {
            "page_walk_overhead": costmodel.page_walk_overhead(run, e_ideal),
            "vmm_overhead": costmodel.vmm_overhead(run, e_ideal),
            "cycles_per_miss": run.avg_cycles_per_miss,
        }
    return {"ops": ops, "modes": modes}
