"""Section VII-C: agile paging vs the SHSP prior-work baseline.

SHSP (Wang et al.) switches an entire process between nested and shadow
paging over time; the paper argues it "performs similarly to the best of
the two techniques" while agile paging *exceeds* the best of both. This
benchmark reproduces the comparison on three contrasting workloads.
"""

from repro.analysis.experiments import run_one
from repro.analysis.tables import format_table
from repro.vmm import traps as T
from repro.workloads.suite import CannealLike, DedupLike, McfLike
from repro.bench import bench_target

from _util import DEFAULT_OPS, emit, pct, run_once


def test_shsp_vs_agile(benchmark):
    def measure():
        rows = []
        results = {}
        for cls in (McfLike, CannealLike, DedupLike):
            per_mode = {}
            for mode in ("nested", "shadow", "shsp", "agile"):
                metrics = run_one(cls(ops=DEFAULT_OPS), mode)
                per_mode[mode] = metrics
                rows.append((
                    cls.name, mode,
                    pct(metrics.page_walk_overhead),
                    pct(metrics.vmm_overhead),
                    pct(metrics.page_walk_overhead + metrics.vmm_overhead),
                    metrics.trap_counts.get(T.SHSP_REBUILD, 0),
                ))
            results[cls.name] = per_mode
        return rows, results

    rows, results = run_once(benchmark, measure)
    text = format_table(
        ("Workload", "Mode", "Page walk", "VMM", "Total", "SHSP rebuilds"),
        rows,
        title="SHSP vs Agile (Section VII-C discussion)",
    )
    emit("shsp_comparison", text)

    def total(name, mode):
        metrics = results[name][mode]
        return metrics.page_walk_overhead + metrics.vmm_overhead

    for name in results:
        best = min(total(name, "nested"), total(name, "shadow"))
        # SHSP approaches the best of the two...
        assert total(name, "shsp") <= max(total(name, "nested"),
                                          total(name, "shadow")) * 1.1, name
        # ...while agile meets-or-beats the best (and hence SHSP).
        assert total(name, "agile") <= best * 1.05, name
        assert total(name, "agile") <= total(name, "shsp") * 1.05, name

@bench_target("shsp_comparison", output="BENCH_shsp_comparison.json")
def bench(ctx):
    """Agile vs the SHSP whole-process-switching baseline (VII-C)."""
    ops = ctx.ops(DEFAULT_OPS)
    workloads = {}
    for cls in (McfLike, CannealLike, DedupLike):
        per_mode = {}
        for mode in ("nested", "shadow", "shsp", "agile"):
            metrics = run_one(cls(ops=ops), mode)
            per_mode[mode] = {
                "total_overhead": (metrics.page_walk_overhead
                                   + metrics.vmm_overhead),
                "shsp_rebuilds": metrics.trap_counts.get(T.SHSP_REBUILD, 0),
            }
        workloads[cls.name] = per_mode
    return {"ops": ops, "workloads": workloads}
