"""Table II: memory references per walk at every degree of nesting.

Paper targets: 4 (full shadow), 8, 12, 16, 20 (switch at successive
levels), 24 (full nested) — measured, not asserted by construction.
"""

from repro.analysis.experiments import table2_measurements
from repro.analysis.tables import format_table, table2_rows
from repro.bench import bench_target

from _util import emit, run_once

PAPER_TOTALS = {0: 4, 1: 8, 2: 12, 3: 16, 4: 20, "nested": 24}


def test_table2_walk_references(benchmark):
    totals = run_once(benchmark, table2_measurements)
    rows = table2_rows(totals)
    text = format_table(
        ("Level", "Base Native", "Nested Paging", "Shadow Paging", "Agile Paging"),
        rows,
        title="Table II — walk memory references by degree of nesting",
    )
    measured = format_table(
        ("Degree (nested levels)", "Paper", "Measured"),
        [(str(k), PAPER_TOTALS[k], totals[k]) for k in (0, 1, 2, 3, 4, "nested")],
        title="Measured totals vs paper",
    )
    emit("table2", text + "\n\n" + measured)
    assert totals == PAPER_TOTALS

@bench_target("table2_walk_refs", output="BENCH_table2_walk_refs.json")
def bench(ctx):
    """Measured walk references per degree of nesting (paper Table II)."""
    totals = table2_measurements()
    return {"totals": {str(key): value for key, value in totals.items()},
            "paper": {str(key): value for key, value in PAPER_TOTALS.items()}}
