"""Section V: paging features under agile paging.

Three feature-targeted micro-workloads show that large pages,
content-based page sharing (COW), and memory-pressure reclaim all work
under agile paging — and that agile adapts (moving churny subtrees to
nested mode) instead of paying shadow-paging's trap storms.
"""

from repro.common.config import sandy_bridge_config
from repro.common.params import TWO_MB
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import emit, pct, run_once


def _sharing_run(mode):
    """Content-based sharing: dedup a region, then break it with writes."""
    system = System(sandy_bridge_config(mode=mode))
    api = MachineAPI(system)
    api.spawn()
    base = api.mmap(128 << 12)
    for i in range(128):
        api.write(base + i * 4096)
    api.start_measurement()
    shared = api.dedup(base, 128 << 12, group=2)
    for i in range(0, 128, 2):
        api.write(base + (i + 1) * 4096)  # break each shared pair
    return system.collect_metrics("sharing"), shared


def _pressure_run(mode):
    """Memory pressure: repeated clock-scan reclaim (referenced-bit
    clearing is a page-table write storm under shadow paging)."""
    system = System(sandy_bridge_config(mode=mode))
    api = MachineAPI(system)
    api.spawn()
    base = api.mmap(256 << 12)
    for i in range(256):
        api.write(base + i * 4096)
    api.start_measurement()
    for _round in range(8):
        for i in range(256):
            api.read(base + i * 4096)
        api.reclaim(16)
    return system.collect_metrics("pressure"), None


def _large_page_run(mode):
    """2 MB pages at both translation stages (Section V)."""
    system = System(sandy_bridge_config(mode=mode, page_size=TWO_MB))
    api = MachineAPI(system)
    api.spawn(code_pages=1)
    base = api.mmap(16 << 21)
    for i in range(16):
        api.write(base + i * (1 << 21))
    api.start_measurement()
    for _round in range(20):
        for i in range(16):
            api.read(base + i * (1 << 21) + 4096 * (_round % 512))
    return system.collect_metrics("large-pages"), None


def test_paging_features(benchmark):
    def measure():
        rows = []
        results = {}
        for feature, runner in (("cow-sharing", _sharing_run),
                                ("mem-pressure", _pressure_run),
                                ("2M-pages", _large_page_run)):
            for mode in ("shadow", "agile"):
                metrics, _extra = runner(mode)
                results[(feature, mode)] = metrics
                rows.append((feature, mode, metrics.vmtraps,
                             pct(metrics.vmm_overhead),
                             "%.2f" % metrics.avg_refs_per_miss))
        return rows, results

    rows, results = run_once(benchmark, measure)
    text = format_table(
        ("Feature", "Mode", "VMtraps", "VMM overhead", "Avg refs/miss"),
        rows,
        title="Section V — paging features under shadow vs agile",
    )
    emit("paging_features", text)
    # Agile adapts: fewer traps than shadow on the churny features.
    assert (results[("cow-sharing", "agile")].vmtraps
            <= results[("cow-sharing", "shadow")].vmtraps)
    assert (results[("mem-pressure", "agile")].vmtraps
            < results[("mem-pressure", "shadow")].vmtraps)
    # 2M pages translate correctly under agile.
    assert results[("2M-pages", "agile")].ops > 0

@bench_target("paging_features", output="BENCH_paging_features.json")
def bench(ctx):
    """Feature micro-workloads (COW, reclaim, 2M pages), shadow vs agile."""
    features = {}
    for feature, runner in (("cow_sharing", _sharing_run),
                            ("mem_pressure", _pressure_run),
                            ("large_pages", _large_page_run)):
        per_mode = {}
        for mode in ("shadow", "agile"):
            metrics, _extra = runner(mode)
            per_mode[mode] = {
                "vmtraps": metrics.vmtraps,
                "vmm_overhead": metrics.vmm_overhead,
                "avg_refs_per_miss": metrics.avg_refs_per_miss,
            }
        features[feature] = per_mode
    return {"features": features}
