"""Figure 3: chronological page-table accesses per degree of nesting.

Reproduces the access orders of Figure 3(a)-(f): a shadow prefix of the
walk followed by (guest PTE read + host walk) groups once the switching
bit flips the walk to nested mode.
"""

from repro.analysis.experiments import figure3_journals
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import emit, run_once

PAPER_LENGTHS = {
    "shadow-only": 4,
    "switch@4th": 8,
    "switch@3rd": 12,
    "switch@2nd": 16,
    "switch@1st": 20,
    "nested-only": 24,
}


def _render(journal):
    return " ".join("%s.L%d" % (structure[0], level) for structure, level in journal)


def test_figure3_access_orders(benchmark):
    journals = run_once(benchmark, figure3_journals)
    rows = [
        (label, len(journal), _render(journal)[:96])
        for label, journal in journals.items()
    ]
    text = format_table(
        ("Degree", "Refs", "Chronological accesses (s=sPT g=gPT h=hPT)"),
        rows,
        title="Figure 3 — access orders by degree of nesting",
    )
    emit("figure3", text)
    for label, expected in PAPER_LENGTHS.items():
        assert len(journals[label]) == expected, label
    # Shadow prefix then a guest-PT read, as drawn in Figure 3(b).
    assert [s for s, _l in journals["switch@4th"][:3]] == ["sPT"] * 3
    assert journals["switch@4th"][3][0] == "gPT"

@bench_target("fig3_degrees", output="BENCH_fig3_degrees.json")
def bench(ctx):
    """Journal lengths per degree of nesting (paper Figure 3)."""
    journals = figure3_journals()
    return {
        "lengths": {label: len(journal)
                    for label, journal in journals.items()},
        "paper_lengths": dict(PAPER_LENGTHS),
    }
