"""Table V: the workload suite — descriptions, footprints, behaviour.

Prints paper footprint vs scaled footprint and each workload's measured
steady-state character (miss rate, PT-update traps under shadow).
"""

from repro.common.config import sandy_bridge_config
from repro.core.simulator import run_workload
from repro.workloads.suite import PAPER_FOOTPRINTS, SUITE
from repro.analysis.tables import format_table

from _util import DEFAULT_OPS, emit, run_once


def test_table5_workload_suite(benchmark):
    def measure():
        rows = []
        for cls in SUITE:
            workload = cls(ops=min(DEFAULT_OPS, 30_000))
            metrics = run_workload(workload, sandy_bridge_config(mode="shadow"))
            rows.append((
                workload.name,
                workload.description,
                PAPER_FOOTPRINTS[workload.name],
                "%d MB" % workload.footprint_mb,
                "%.1f" % metrics.miss_rate_per_kop,
                metrics.trap_counts.get("pt_write", 0),
            ))
        return rows

    rows = run_once(benchmark, measure)
    text = format_table(
        ("Workload", "Description", "Paper footprint", "Scaled",
         "Misses/kop", "PT-write traps (shadow)"),
        rows,
        title="Table V — workload suite (scaled reproductions)",
    )
    emit("table5", text)
    assert len(rows) == 8
