"""Table V: the workload suite — descriptions, footprints, behaviour.

Prints paper footprint vs scaled footprint and each workload's measured
steady-state character (miss rate, PT-update traps under shadow). Runs
through the sweep runner, so ``REPRO_WORKERS``/``REPRO_CACHE_DIR``
parallelize and cache the suite like any other sweep.
"""

from repro.analysis.experiments import table5
from repro.workloads.suite import PAPER_FOOTPRINTS, SUITE
from repro.analysis.tables import format_table
from repro.bench import bench_target

from _util import DEFAULT_OPS, default_runner, emit, run_once


def test_table5_workload_suite(benchmark):
    classes = {cls.name: cls for cls in SUITE}

    def measure():
        results = table5(ops=min(DEFAULT_OPS, 30_000), runner=default_runner())
        rows = []
        for name, metrics in results.items():
            cls = classes[name]
            rows.append((
                name,
                cls.description,
                PAPER_FOOTPRINTS[name],
                "%d MB" % cls.footprint_mb,
                "%.1f" % metrics.miss_rate_per_kop,
                metrics.trap_counts.get("pt_write", 0),
            ))
        return rows

    rows = run_once(benchmark, measure)
    text = format_table(
        ("Workload", "Description", "Paper footprint", "Scaled",
         "Misses/kop", "PT-write traps (shadow)"),
        rows,
        title="Table V — workload suite (scaled reproductions)",
    )
    emit("table5", text)
    assert len(rows) == 8

@bench_target("table5_workloads", output="BENCH_table5_workloads.json")
def bench(ctx):
    """Workload-suite character: miss rates and shadow PT-write traps."""
    ops = min(ctx.ops(DEFAULT_OPS), 30_000)
    results = table5(ops=ops, runner=default_runner())
    return {"ops": ops, "workloads": {
        name: {"miss_rate_per_kop": metrics.miss_rate_per_kop,
               "pt_write_traps": metrics.trap_counts.get("pt_write", 0)}
        for name, metrics in results.items()}}
