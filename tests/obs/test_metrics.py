"""The metrics registry: typing, null path, snapshot/merge algebra."""

import pytest

from repro.obs.metrics import (
    METRICS_SNAPSHOT_SCHEMA_VERSION,
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
)


def _filled(seed=0):
    """A registry with one of each instrument, offset by ``seed``."""
    registry = MetricsRegistry()
    registry.inc("ops", 10 + seed)
    registry.inc("fallbacks.miss", 3)
    registry.set_gauge("occupancy", 40 + seed)
    for value in (1, 2, 5 + seed, 30):
        registry.observe("refs", value, bounds=(1, 4, 16))
    return registry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot().counters["ops"] == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("occ", 3)
        registry.set_gauge("occ", 7)
        assert registry.snapshot().gauges["occ"] == 7

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("refs", bounds=(2, 4))
        for value in (1, 2, 3, 100):
            hist.observe(value)
        snap = registry.snapshot().histograms["refs"]
        assert snap["bounds"] == [2, 4]
        assert snap["counts"] == [2, 1, 1]  # <=2, <=4, overflow
        assert snap["count"] == 4
        assert snap["min"] == 1 and snap["max"] == 100

    def test_cross_kind_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_bounds_must_agree(self):
        registry = MetricsRegistry()
        registry.histogram("refs", bounds=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("refs", bounds=(1, 3))


class TestNullPath:
    def test_null_metrics_disabled_and_inert(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("ops")
        NULL_METRICS.set_gauge("occ", 1)
        NULL_METRICS.observe("refs", 2)
        snap = NULL_METRICS.snapshot()
        assert snap.counters == {} and snap.gauges == {}
        assert snap.histograms == {}

    def test_registry_is_a_null_metrics_subtype(self):
        # Call sites type against the null object; the live registry
        # must be substitutable everywhere NULL_METRICS is.
        assert isinstance(MetricsRegistry(), NullMetrics)
        assert MetricsRegistry().enabled is True


class TestSnapshotAlgebra:
    def test_merge_counters_add_gauges_max_histograms_bucketwise(self):
        merged = _filled(0).snapshot().merge(_filled(5).snapshot())
        assert merged.counters["ops"] == 25
        assert merged.counters["fallbacks.miss"] == 6
        assert merged.gauges["occupancy"] == 45  # high-water mark
        hist = merged.histograms["refs"]
        assert hist["count"] == 8
        assert sum(hist["counts"]) == 8

    def test_merge_is_associative_and_commutative(self):
        a, b, c = (_filled(s).snapshot() for s in (0, 3, 11))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left == right == swapped

    def test_merge_identity_is_the_empty_snapshot(self):
        snap = _filled().snapshot()
        assert snap.merge(MetricsSnapshot()) == snap
        assert MetricsSnapshot().merge(snap) == snap

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a = MetricsRegistry()
        a.observe("refs", 1, bounds=(1, 2))
        b = MetricsRegistry()
        b.observe("refs", 1, bounds=(1, 3))
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())


class TestSerialization:
    def test_round_trip_through_to_dict(self):
        snap = _filled().snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap

    def test_to_dict_carries_schema_version(self):
        payload = _filled().snapshot().to_dict()
        assert payload["schema_version"] == METRICS_SNAPSHOT_SCHEMA_VERSION

    def test_foreign_schema_version_rejected(self):
        payload = _filled().snapshot().to_dict()
        payload["schema_version"] = METRICS_SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict(payload)

    def test_json_round_trip(self):
        import json

        snap = _filled().snapshot()
        revived = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict())))
        assert revived == snap

    def test_registry_absorbs_snapshots(self):
        # merge_snapshot is the worker-to-parent aggregation path: a
        # fresh registry fed two shard snapshots equals their merge.
        registry = MetricsRegistry()
        registry.merge_snapshot(_filled(0).snapshot())
        registry.merge_snapshot(_filled(5).snapshot())
        assert (registry.snapshot()
                == _filled(0).snapshot().merge(_filled(5).snapshot()))
