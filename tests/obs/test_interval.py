"""Tests for the interval time-series recorder."""

import pytest

from repro.core.simulator import run_workload
from repro.obs import IntervalRecorder
from repro.workloads.suite import AstarLike


def record_run(every=1024, ops=8000, mode="agile", seed=3):
    recorder = IntervalRecorder(every=every)
    metrics = run_workload(AstarLike, seed=seed, ops=ops, mode=mode,
                           recorder=recorder)
    return metrics, recorder


class TestIntervalRecorder:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            IntervalRecorder(every=0)

    def test_sampling_period_respected(self):
        _metrics, recorder = record_run(every=1024, ops=8000)
        assert len(recorder) >= 2
        # Samples are at least `every` ops apart (they land on the first
        # policy epoch at or past each multiple); op restarts at the
        # measurement reset, so only non-restarting pairs are checked.
        for prev, row in zip(recorder.rows, recorder.rows[1:]):
            if row["op"] >= prev["op"] and not row.get("boundary"):
                assert row["op"] - prev["op"] >= 1024

    def test_rows_have_stable_schema(self):
        _metrics, recorder = record_run()
        expected = {"op", "cycle", "ideal_cycles", "walk_cycles",
                    "tlb_l2_cycles", "guest_fault_cycles", "guest_faults",
                    "tlb_misses", "tlb_hits_l1", "tlb_hits_l2", "walk_refs",
                    "vmm_cycles", "vmtraps"}
        for row in recorder.rows:
            assert expected <= set(row)

    def test_cumulative_rows_monotonic_between_boundaries(self):
        _metrics, recorder = record_run()
        prev = None
        for row in recorder.rows:
            if row.get("boundary"):
                prev = row
                continue
            if prev is not None and not prev.get("boundary"):
                assert row["tlb_misses"] >= prev["tlb_misses"]
                assert row["cycle"] >= prev["cycle"]
            prev = row

    def test_deltas_never_negative(self):
        _metrics, recorder = record_run()
        for delta in recorder.deltas():
            for key, value in delta.items():
                if key in ("op", "cycle"):
                    continue
                assert value >= 0, (key, delta)

    def test_boundary_row_marks_measurement_start(self):
        _metrics, recorder = record_run()
        boundaries = [row for row in recorder.rows if row.get("boundary")]
        assert len(boundaries) == 1  # one start_measurement in the suite

    def test_last_sample_consistent_with_metrics(self):
        metrics, recorder = record_run()
        last = recorder.rows[-1]
        # Cumulative counters can only grow between the last sample and
        # the end of the run.
        assert last["tlb_misses"] <= metrics.tlb_misses
        assert last["ideal_cycles"] <= metrics.ideal_cycles

    def test_deterministic_across_runs(self):
        _m1, r1 = record_run()
        _m2, r2 = record_run()
        assert r1.to_rows() == r2.to_rows()

    def test_to_rows_is_a_copy(self):
        _metrics, recorder = record_run()
        rows = recorder.to_rows()
        rows.append({"op": -1})
        assert recorder.rows[-1] != {"op": -1}
