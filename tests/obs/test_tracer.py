"""Tests for the tracer and the typed event taxonomy."""

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import Simulator, run_workload
from repro.hw.walkstats import NESTED_FULL
from repro.obs import (
    ALL_EVENT_KINDS,
    EV_CTX_SWITCH,
    EV_GUEST_FAULT,
    EV_MARK,
    EV_PWC,
    EV_TLB_HIT,
    EV_VMTRAP,
    EV_WALK,
    MARK_MEASUREMENT_START,
    NULL_TRACER,
    Event,
    NullTracer,
    Tracer,
    measured_events,
    vmtrap_counts,
)
from repro.workloads.suite import AstarLike, DedupLike


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer.enabled is False

    def test_all_emit_methods_are_noops(self):
        NULL_TRACER.vmtrap(0, "pt_write", 10)
        NULL_TRACER.walk(0, "agile", 4, 0, 12, 1)
        NULL_TRACER.tlb_hit(0, "l1", 1)
        NULL_TRACER.pwc(0, "pwc", True)
        NULL_TRACER.policy(0, "shadow_to_nested")
        NULL_TRACER.ctx_switch(0, 1, 2)
        NULL_TRACER.guest_fault(0, 1, 0x1000, False)
        NULL_TRACER.mark(0, "x")

    def test_tracer_overrides_whole_interface(self):
        """Every emit method of the null interface must be overridden,
        so no Tracer call silently drops an event."""
        emitters = [name for name in vars(NullTracer)
                    if not name.startswith("_") and name != "enabled"
                    and callable(getattr(NullTracer, name))]
        assert emitters
        for name in emitters:
            assert getattr(Tracer, name) is not getattr(NullTracer, name)

    def test_default_components_hold_the_null(self):
        system = System(sandy_bridge_config(mode="agile"))
        assert system.tracer is NULL_TRACER
        assert system.mmu.tracer is NULL_TRACER
        assert system.mmu.walker.tracer is NULL_TRACER
        assert system.vmm.tracer is NULL_TRACER


class TestEvent:
    def test_round_trip(self):
        event = Event(EV_WALK, 123, 0, {"mode": "agile", "refs": 8})
        again = Event.from_dict(event.as_dict())
        assert again.kind == event.kind
        assert again.ts == event.ts
        assert again.dur == event.dur
        assert again.data == event.data

    def test_json_is_canonical(self):
        a = Event(EV_VMTRAP, 5, 100, {"trap": "pt_write"})
        b = Event(EV_VMTRAP, 5, 100, {"trap": "pt_write"})
        assert a.to_json() == b.to_json()
        assert "\n" not in a.to_json()
        assert ": " not in a.to_json()  # compact separators

    def test_stable_shape(self):
        payload = Event(EV_MARK, 0).as_dict()
        assert set(payload) == {"kind", "ts", "dur", "data"}


class TestTracedRun:
    def run_traced(self, mode="agile", ops=6000, cls=AstarLike, seed=3):
        tracer = Tracer()
        metrics = run_workload(cls, seed=seed, ops=ops, mode=mode,
                               tracer=tracer)
        return metrics, tracer

    def test_emits_known_kinds_only(self):
        _metrics, tracer = self.run_traced()
        kinds = {event.kind for event in tracer}
        assert kinds <= set(ALL_EVENT_KINDS)
        assert EV_WALK in kinds
        assert EV_TLB_HIT in kinds
        assert EV_PWC in kinds

    def test_walk_events_match_tlb_misses(self):
        metrics, tracer = self.run_traced()
        walks = [e for e in measured_events(tracer.events)
                 if e.kind == EV_WALK]
        assert len(walks) == metrics.tlb_misses

    def test_walk_depth_serializes_sentinel(self):
        _metrics, tracer = self.run_traced(mode="nested")
        depths = {e.data["depth"] for e in tracer if e.kind == EV_WALK}
        assert depths <= {str(NESTED_FULL), "0", "1", "2", "3", "4"}

    def test_measurement_mark_present(self):
        _metrics, tracer = self.run_traced()
        marks = [e for e in tracer if e.kind == EV_MARK]
        assert any(e.data["name"] == MARK_MEASUREMENT_START for e in marks)

    def test_guest_faults_traced(self):
        _metrics, tracer = self.run_traced(cls=DedupLike, seed=7)
        faults = [e for e in tracer if e.kind == EV_GUEST_FAULT]
        assert faults
        for event in faults[:10]:
            assert set(event.data) == {"pid", "va", "write"}

    def test_ctx_switch_traced(self):
        _metrics, tracer = self.run_traced(cls=DedupLike, seed=7)
        switches = [e for e in tracer if e.kind == EV_CTX_SWITCH]
        assert switches
        assert all("new" in e.data for e in switches)

    def test_timestamps_monotonic(self):
        _metrics, tracer = self.run_traced()
        stamps = [event.ts for event in tracer]
        assert all(a <= b for a, b in zip(stamps, stamps[1:]))

    def test_metrics_unchanged_by_tracing(self):
        traced, _tracer = self.run_traced()
        untraced = run_workload(AstarLike, seed=3, ops=6000, mode="agile")
        assert traced.to_dict() == untraced.to_dict()

    def test_clear(self):
        _metrics, tracer = self.run_traced()
        assert len(tracer) > 0
        tracer.clear()
        assert len(tracer) == 0


class TestVmtrapConsistency:
    """ISSUE acceptance: per-kind vmtrap event counts equal
    RunMetrics.trap_counts for the same workload + seed."""

    def test_dedup_agile_nonzero_window(self):
        tracer = Tracer()
        metrics = run_workload(DedupLike, seed=7, ops=30_000, mode="agile",
                               tracer=tracer)
        counts = vmtrap_counts(tracer.events)
        assert sum(metrics.trap_counts.values()) > 0  # non-trivial check
        assert counts == metrics.trap_counts

    def test_full_stream_covers_warmup_traps(self):
        tracer = Tracer()
        metrics = run_workload(DedupLike, seed=7, ops=8000, mode="shadow",
                               tracer=tracer)
        whole_run = vmtrap_counts(tracer.events, measured_only=False)
        # Warmup produced traps the measured window did not.
        assert sum(whole_run.values()) > sum(metrics.trap_counts.values())

    def test_shadow_and_shsp_modes(self):
        for mode in ("shadow", "shsp"):
            tracer = Tracer()
            metrics = run_workload(DedupLike, seed=7, ops=8000, mode=mode,
                                   tracer=tracer)
            assert vmtrap_counts(tracer.events) == metrics.trap_counts

    def test_vmtrap_durations_sum_to_trap_cycles(self):
        tracer = Tracer()
        metrics = run_workload(DedupLike, seed=7, ops=30_000, mode="agile",
                               tracer=tracer)
        cycles = {}
        for event in measured_events(tracer.events):
            if event.kind == EV_VMTRAP:
                kind = event.data["trap"]
                cycles[kind] = cycles.get(kind, 0) + event.dur
        assert cycles == metrics.trap_cycles


class TestAttachObservability:
    def test_attach_after_process_creation(self):
        """A tracer attached to a live system still reaches the
        per-process policies created before it."""
        system = System(sandy_bridge_config(mode="agile"))
        simulator = Simulator(system)
        workload = AstarLike(seed=3, ops=4000)
        tracer = Tracer()
        system.attach_observability(tracer)
        assert system.vmm.traps._tracer is tracer
        simulator.run(workload)
        assert len(tracer) > 0

    def test_attach_recorder_only(self):
        from repro.obs import IntervalRecorder

        system = System(sandy_bridge_config(mode="agile"))
        recorder = IntervalRecorder(every=512)
        system.attach_observability(recorder=recorder)
        assert system.tracer is NULL_TRACER  # tracing stays off
        Simulator(system).run(AstarLike(seed=3, ops=4000))
        assert len(recorder) > 0
