"""Tests for the JSONL / Perfetto / flamegraph exporters."""

import io
import json

from repro.core.simulator import run_workload
from repro.obs import EV_VMTRAP, IntervalRecorder, Tracer
from repro.obs.exporters import (
    jsonl_bytes,
    load_jsonl,
    payload_events,
    perfetto_trace,
    render_cycle_flame,
    trace_payload,
    write_jsonl,
    write_perfetto,
)
from repro.workloads.suite import AstarLike, DedupLike


def traced_run(cls=AstarLike, seed=3, ops=6000, mode="agile"):
    tracer = Tracer()
    recorder = IntervalRecorder(every=1024)
    metrics = run_workload(cls, seed=seed, ops=ops, mode=mode,
                           tracer=tracer, recorder=recorder)
    return metrics, tracer, recorder


class TestJsonl:
    def test_write_and_load_round_trip(self):
        _metrics, tracer, _recorder = traced_run()
        stream = io.StringIO()
        count = write_jsonl(tracer.events, stream)
        assert count == len(tracer)
        loaded = load_jsonl(io.StringIO(stream.getvalue()))
        assert len(loaded) == len(tracer)
        for original, again in zip(tracer.events, loaded):
            assert original.as_dict() == again.as_dict()

    def test_bytes_matches_stream(self):
        _metrics, tracer, _recorder = traced_run()
        stream = io.StringIO()
        write_jsonl(tracer.events, stream)
        assert jsonl_bytes(tracer.events) == stream.getvalue().encode("utf-8")

    def test_every_line_is_json(self):
        _metrics, tracer, _recorder = traced_run(ops=3000)
        for line in jsonl_bytes(tracer.events).decode("utf-8").splitlines():
            payload = json.loads(line)
            assert set(payload) == {"kind", "ts", "dur", "data"}


class TestPerfetto:
    def test_structure(self):
        _metrics, tracer, recorder = traced_run(cls=DedupLike, seed=7)
        trace = perfetto_trace(tracer.events, intervals=recorder.to_rows(),
                               label="dedup")
        assert {"traceEvents", "displayTimeUnit", "otherData"} <= set(trace)
        assert trace["otherData"]["label"] == "dedup"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases <= {"X", "i", "C"}

    def test_vmtraps_become_complete_slices(self):
        _metrics, tracer, _recorder = traced_run(cls=DedupLike, seed=7,
                                                 mode="shadow")
        trace = perfetto_trace(tracer.events)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        vmtraps = [e for e in tracer if e.kind == EV_VMTRAP]
        assert len(slices) == len(vmtraps)
        for entry in slices:
            assert entry["tid"] == "vmm"
            assert "dur" in entry

    def test_counters_from_intervals(self):
        _metrics, tracer, recorder = traced_run()
        trace = perfetto_trace(tracer.events, intervals=recorder.to_rows())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert {e["name"] for e in counters} <= {
            "tlb_misses", "vmtraps", "vmm_cycles", "walk_cycles"}

    def test_write_is_valid_json(self):
        _metrics, tracer, recorder = traced_run(ops=3000)
        stream = io.StringIO()
        count = write_perfetto(tracer.events, stream,
                               intervals=recorder.to_rows())
        trace = json.loads(stream.getvalue())
        assert len(trace["traceEvents"]) == count


class TestFlamegraph:
    def test_renders_all_sections(self):
        metrics, _tracer, _recorder = traced_run(cls=DedupLike, seed=7,
                                                 mode="shadow")
        text = render_cycle_flame(metrics)
        for section in ("total", "ideal", "page_walk", "tlb_l2_hit",
                        "vmm", "guest_fault", "cycle attribution"):
            assert section in text

    def test_shares_bounded(self):
        metrics, _tracer, _recorder = traced_run()
        for line in render_cycle_flame(metrics).splitlines()[1:]:
            percent = float(line.split("%")[0].split()[-1])
            assert 0.0 <= percent <= 100.0

    def test_handles_empty_metrics(self):
        from repro.core.metrics import RunMetrics

        text = render_cycle_flame(RunMetrics("empty", "native", "4K"))
        assert "total" in text


class TestTracePayload:
    def test_round_trip(self):
        _metrics, tracer, recorder = traced_run(ops=3000)
        payload = trace_payload(tracer, recorder)
        assert payload["schema"] == 1
        assert json.loads(json.dumps(payload)) == payload  # JSON-safe
        events = payload_events(payload)
        assert len(events) == len(tracer)
        assert events[0].as_dict() == tracer.events[0].as_dict()
        assert payload["intervals"] == recorder.to_rows()

    def test_without_recorder(self):
        _metrics, tracer, _recorder = traced_run(ops=3000)
        payload = trace_payload(tracer)
        assert payload["intervals"] == []
