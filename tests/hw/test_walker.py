"""Unit tests for the hardware page-walk state machines.

These pin down the paper's reference-count arithmetic (Table II) and the
fault behaviour of each walk. Setups are built by hand via
``tests.helpers`` so every count is fully controlled.
"""

import pytest

from helpers import TwoLevelSetup, make_native_setup, native_ctx
from repro.common.errors import (
    GuestPageFault,
    HostPageFault,
    ShadowNotPresentFault,
    ShadowProtectionFault,
)
from repro.common.params import TWO_MB
from repro.hw.walker import PageWalker
from repro.hw.walkstats import NESTED_FULL

GVA = (3 << 39) | (7 << 30) | (11 << 21) | (13 << 12)


@pytest.fixture
def setup():
    two = TwoLevelSetup()
    two.map_guest(GVA)
    return two


def walker_for(setup):
    return PageWalker(setup.host_mem, setup.guest_mem)


class TestNativeWalk:
    def test_4k_walk_costs_4_refs(self):
        mem, table = make_native_setup()
        frame = mem.alloc_data_page()
        table.map(GVA, frame)
        walker = PageWalker(mem)
        result = walker.native_walk(GVA, native_ctx(table))
        assert result.refs == 4
        assert result.frame == frame
        assert result.nested_levels == 0

    def test_2m_walk_costs_3_refs(self):
        mem, table = make_native_setup()
        base = mem.alloc_contiguous(512)
        table.map(0, base, TWO_MB)
        walker = PageWalker(mem)
        result = walker.native_walk(5 << 12, native_ctx(table))
        assert result.refs == 3
        assert result.page_shift == 21
        assert result.frame == base

    def test_unmapped_raises_guest_fault(self):
        mem, table = make_native_setup()
        walker = PageWalker(mem)
        with pytest.raises(GuestPageFault) as exc:
            walker.native_walk(GVA, native_ctx(table))
        assert exc.value.refs == 1  # root entry read, then fault
        assert exc.value.level == 4

    def test_leaf_fault_costs_partial_walk(self):
        mem, table = make_native_setup()
        frame = mem.alloc_data_page()
        table.map(GVA, frame)
        table.unmap(GVA)
        walker = PageWalker(mem)
        with pytest.raises(GuestPageFault) as exc:
            walker.native_walk(GVA, native_ctx(table))
        assert exc.value.refs == 4
        assert exc.value.level == 1

    def test_write_protection_fault(self):
        mem, table = make_native_setup()
        frame = mem.alloc_data_page()
        table.map(GVA, frame, writable=False)
        walker = PageWalker(mem)
        walker.native_walk(GVA, native_ctx(table), is_write=False)
        with pytest.raises(GuestPageFault) as exc:
            walker.native_walk(GVA, native_ctx(table), is_write=True)
        assert exc.value.protection

    def test_walk_sets_accessed_and_dirty(self):
        mem, table = make_native_setup()
        frame = mem.alloc_data_page()
        table.map(GVA, frame)
        walker = PageWalker(mem)
        walker.native_walk(GVA, native_ctx(table), is_write=True)
        pte, _ = table.lookup(GVA)
        assert pte.accessed
        assert pte.dirty


class TestNestedWalk:
    def test_4k_walk_costs_24_refs(self, setup):
        result = walker_for(setup).nested_walk(GVA, setup.nested_ctx())
        assert result.refs == 24
        assert result.nested_levels is NESTED_FULL
        assert result.mode == "nested"

    def test_result_frame_is_host_frame(self, setup):
        result = walker_for(setup).nested_walk(GVA, setup.nested_ctx())
        gfn = setup.gpt.translate(GVA)[0]
        assert result.frame == setup.gfn_to_hfn(gfn)

    def test_guest_hole_faults_to_guest(self, setup):
        with pytest.raises(GuestPageFault):
            walker_for(setup).nested_walk(GVA + (1 << 21), setup.nested_ctx())

    def test_host_hole_exits_to_vmm(self, setup):
        gfn = setup.gpt.translate(GVA)[0]
        setup.hpt.unmap(gfn << 12)
        with pytest.raises(HostPageFault) as exc:
            walker_for(setup).nested_walk(GVA, setup.nested_ctx())
        assert exc.value.gpa == gfn << 12

    def test_guest_readonly_write_faults_to_guest(self, setup):
        setup.gpt.set_flags(GVA, writable=False)
        with pytest.raises(GuestPageFault) as exc:
            walker_for(setup).nested_walk(GVA, setup.nested_ctx(), is_write=True)
        assert exc.value.protection

    def test_host_readonly_write_exits_to_vmm(self, setup):
        gfn = setup.gpt.translate(GVA)[0]
        setup.hpt.set_flags(gfn << 12, writable=False)
        with pytest.raises(HostPageFault) as exc:
            walker_for(setup).nested_walk(GVA, setup.nested_ctx(), is_write=True)
        assert exc.value.is_write

    def test_walk_sets_guest_ad_bits_in_hardware(self, setup):
        walker_for(setup).nested_walk(GVA, setup.nested_ctx(), is_write=True)
        gpte, _ = setup.gpt.lookup(GVA)
        assert gpte.accessed
        assert gpte.dirty

    def test_journal_matches_figure_1b(self, setup):
        walker = walker_for(setup)
        walker.journal = []
        walker.nested_walk(GVA, setup.nested_ctx())
        # 4 hPT refs for gptr, then per guest level: 1 gPT + 4 hPT.
        assert walker.journal[0:4] == [("hPT", 4), ("hPT", 3), ("hPT", 2), ("hPT", 1)]
        assert walker.journal[4] == ("gPT", 4)
        assert walker.journal[5:9] == [("hPT", 4), ("hPT", 3), ("hPT", 2), ("hPT", 1)]
        assert len(walker.journal) == 24
        assert walker.journal[-5] == ("gPT", 1)


class TestShadowWalk:
    def test_4k_walk_costs_4_refs(self, setup):
        setup.build_full_shadow()
        result = walker_for(setup).shadow_walk(GVA, setup.shadow_ctx())
        assert result.refs == 4
        assert result.nested_levels == 0
        assert result.mode == "shadow"

    def test_translates_to_host_frame(self, setup):
        setup.build_full_shadow()
        result = walker_for(setup).shadow_walk(GVA, setup.shadow_ctx())
        gfn = setup.gpt.translate(GVA)[0]
        assert result.frame == setup.gfn_to_hfn(gfn)

    def test_missing_entry_raises_shadow_fault(self, setup):
        setup.build_full_shadow()
        with pytest.raises(ShadowNotPresentFault):
            walker_for(setup).shadow_walk(GVA + (1 << 30), setup.shadow_ctx())

    def test_readonly_write_raises_protection_fault(self, setup):
        setup.build_full_shadow(writable_from_guest=False)
        with pytest.raises(ShadowProtectionFault):
            walker_for(setup).shadow_walk(GVA, setup.shadow_ctx(), is_write=True)


class TestAgileWalk:
    """The Table II / Figure 3 arithmetic: refs = 4 + 4d, or 24 full."""

    def test_full_shadow_is_4_refs(self, setup):
        setup.build_full_shadow()
        result = walker_for(setup).agile_walk(GVA, setup.agile_ctx())
        assert result.refs == 4
        assert result.nested_levels == 0
        assert result.mode == "agile"

    @pytest.mark.parametrize(
        "switch_below_level,expected_refs,expected_d",
        [
            (2, 8, 1),  # Figure 3(b): switched at 4th step, leaf nested
            (3, 12, 2),  # Figure 3(c)
            (4, 16, 3),  # Figure 3(d)
        ],
    )
    def test_switching_levels(self, setup, switch_below_level, expected_refs, expected_d):
        setup.build_full_shadow()
        setup.set_switching(GVA, switch_below_level)
        result = walker_for(setup).agile_walk(GVA, setup.agile_ctx())
        assert result.refs == expected_refs
        assert result.nested_levels == expected_d
        assert result.mode == "agile"

    def test_root_switch_is_20_refs(self, setup):
        setup.build_full_shadow()
        result = walker_for(setup).agile_walk(GVA, setup.agile_ctx(root_switch=True))
        assert result.refs == 20
        assert result.nested_levels == 4

    def test_fully_nested_is_24_refs(self, setup):
        setup.build_full_shadow()
        result = walker_for(setup).agile_walk(GVA, setup.agile_ctx(fully_nested=True))
        assert result.refs == 24
        assert result.nested_levels is NESTED_FULL

    def test_switched_walk_reaches_same_frame(self, setup):
        setup.build_full_shadow()
        shadow_result = walker_for(setup).agile_walk(GVA, setup.agile_ctx())
        setup.set_switching(GVA, 3)
        switched_result = walker_for(setup).agile_walk(GVA, setup.agile_ctx())
        assert switched_result.frame == shadow_result.frame

    def test_journal_matches_figure_3b(self, setup):
        setup.build_full_shadow()
        setup.set_switching(GVA, 2)
        walker = walker_for(setup)
        walker.journal = []
        walker.agile_walk(GVA, setup.agile_ctx())
        assert walker.journal == [
            ("sPT", 4), ("sPT", 3), ("sPT", 2),
            ("gPT", 1),
            ("hPT", 4), ("hPT", 3), ("hPT", 2), ("hPT", 1),
        ]

    def test_unswitched_addresses_stay_shadow(self, setup):
        other = GVA + (1 << 21)  # different L2 subtree
        setup.map_guest(other)
        setup.build_full_shadow()
        setup.set_switching(GVA, 2)
        walker = walker_for(setup)
        assert walker.agile_walk(GVA, setup.agile_ctx()).refs == 8
        assert walker.agile_walk(other, setup.agile_ctx()).refs == 4

    def test_guest_fault_through_switched_path(self, setup):
        setup.build_full_shadow()
        setup.set_switching(GVA, 2)
        setup.gpt.unmap(GVA)
        with pytest.raises(GuestPageFault) as exc:
            walker_for(setup).agile_walk(GVA, setup.agile_ctx())
        # 3 shadow refs + 1 guest PTE read, then the fault.
        assert exc.value.refs == 4


class TestWalkDispatch:
    def test_dispatch_by_mode(self, setup):
        setup.build_full_shadow()
        walker = walker_for(setup)
        assert walker.walk(GVA, setup.nested_ctx()).refs == 24
        assert walker.walk(GVA, setup.shadow_ctx()).refs == 4
        assert walker.walk(GVA, setup.agile_ctx()).refs == 4

    def test_unknown_mode_raises(self, setup):
        ctx = setup.nested_ctx()
        ctx.mode = "bogus"
        with pytest.raises(Exception):
            walker_for(setup).walk(GVA, ctx)
