"""Unit tests for the PTE data-cache model."""

import pytest

from repro.hw.ptecache import PTES_PER_LINE, PTECache


class TestPTECache:
    def test_miss_then_hit(self):
        cache = PTECache(lines=16, ways=4)
        assert not cache.access("host", 5, 0)
        assert cache.access("host", 5, 0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_line_granularity(self):
        cache = PTECache(lines=16, ways=4)
        cache.access("host", 5, 0)
        # Entries 0..7 share a 64-byte line.
        assert cache.access("host", 5, PTES_PER_LINE - 1)
        assert not cache.access("host", 5, PTES_PER_LINE)

    def test_space_isolation(self):
        cache = PTECache(lines=16, ways=4)
        cache.access("host", 5, 0)
        assert not cache.access("guest", 5, 0)

    def test_capacity_bounded(self):
        cache = PTECache(lines=8, ways=8)  # one set
        for frame in range(20):
            cache.access("host", frame, 0)
        hits = sum(cache.access("host", frame, 0) for frame in range(20))
        assert hits < 20

    def test_invalidate_frame(self):
        cache = PTECache(lines=16, ways=4)
        cache.access("host", 5, 0)
        cache.invalidate_frame("host", 5)
        assert not cache.access("host", 5, 0)

    def test_flush(self):
        cache = PTECache(lines=16, ways=4)
        cache.access("host", 5, 0)
        cache.flush()
        assert not cache.access("host", 5, 0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            PTECache(lines=10, ways=4)
        with pytest.raises(ValueError):
            PTECache(lines=0, ways=1)

    def test_hit_rate(self):
        cache = PTECache(lines=16, ways=4)
        cache.access("host", 1, 0)
        cache.access("host", 1, 0)
        assert cache.stats.hit_rate == 0.5


class TestIntegration:
    def test_cached_walks_cost_less(self):
        """With the PTE cache on, repeat walks of the same path are
        cheaper than the first one."""
        from repro.common.config import sandy_bridge_config
        from repro.core.machine import System
        from repro.core.simulator import MachineAPI
        from dataclasses import replace

        def run(pte_cache_lines):
            config = sandy_bridge_config(mode="nested",
                                         pte_cache_lines=pte_cache_lines)
            config = replace(config, pwc=replace(config.pwc, enabled=False))
            system = System(config)
            api = MachineAPI(system)
            api.spawn()
            base = api.mmap(1 << 12)
            api.write(base)
            system.reset_counters()
            for _i in range(10):
                system.mmu.hierarchy.flush()  # force re-walks, keep caches
                api.read(base)
            return system.walk_cycles

        assert run(pte_cache_lines=512) < run(pte_cache_lines=0)

    def test_nested_benefits_more_than_shadow(self):
        """Nested walks touch more lines, so PTE caching saves more."""
        from repro.common.config import sandy_bridge_config
        from repro.core.machine import System
        from repro.core.simulator import MachineAPI
        from dataclasses import replace

        def savings(mode):
            results = {}
            for lines in (0, 512):
                config = sandy_bridge_config(mode=mode, pte_cache_lines=lines)
                config = replace(config, pwc=replace(config.pwc, enabled=False))
                system = System(config)
                api = MachineAPI(system)
                api.spawn()
                base = api.mmap(1 << 12)
                api.write(base)
                system.reset_counters()
                for _i in range(10):
                    system.mmu.hierarchy.flush()
                    api.read(base)
                results[lines] = system.walk_cycles
            return results[0] - results[512]

        assert savings("nested") > savings("shadow")
