"""Unit tests for WalkResult and TranslationContext."""

from repro.hw.walkstats import NESTED_FULL, TranslationContext, WalkResult


class TestWalkResult:
    def test_fields(self):
        result = WalkResult(frame=7, page_shift=12, writable=True, dirty=False,
                            refs=4, nested_levels=0, mode="shadow")
        assert result.frame == 7
        assert result.refs == 4
        assert result.nested_levels == 0

    def test_repr_mentions_refs(self):
        result = WalkResult(1, 12, True, True, 24, NESTED_FULL, "nested")
        assert "refs=24" in repr(result)

    def test_nested_full_sentinel_distinct_from_4(self):
        assert NESTED_FULL != 4
        assert NESTED_FULL == "full"


class TestTranslationContext:
    def test_native_context(self):
        ctx = TranslationContext(asid=1, mode="native", root_frame=5)
        assert ctx.root_frame == 5
        assert ctx.sptr is None
        assert not ctx.root_switch

    def test_agile_context(self):
        ctx = TranslationContext(asid=2, mode="agile", gptr=1, hptr=2,
                                 sptr=3, root_switch=True)
        assert ctx.sptr == 3
        assert ctx.root_switch

    def test_fields_mutable_for_vmm_refresh(self):
        ctx = TranslationContext(asid=1, mode="agile", sptr=3)
        ctx.sptr = None
        ctx.root_switch = True
        assert ctx.sptr is None
