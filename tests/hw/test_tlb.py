"""Unit tests for the set-associative TLB."""

import pytest

from repro.hw.tlb import TLB, TLBEntry


def entry(asid, vpn, frame=0, writable=True, dirty=True):
    return TLBEntry(asid=asid, vpn=vpn, frame=frame, page_shift=12,
                    writable=writable, dirty=dirty)


@pytest.fixture
def tlb():
    return TLB(entries=16, ways=4, page_shift=12)


class TestLookupInsert:
    def test_miss_then_hit(self, tlb):
        assert tlb.lookup(1, 0x1000) is None
        tlb.insert(entry(1, 1, frame=42))
        hit = tlb.lookup(1, 0x1000)
        assert hit.frame == 42
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_asid_isolation(self, tlb):
        tlb.insert(entry(1, 1))
        assert tlb.lookup(2, 0x1000) is None

    def test_page_offset_irrelevant(self, tlb):
        tlb.insert(entry(1, 1, frame=9))
        assert tlb.lookup(1, 0x1FFF).frame == 9

    def test_2m_page_shift(self):
        tlb = TLB(entries=8, ways=4, page_shift=21)
        tlb.insert(TLBEntry(1, 1, 512, 21, True, True))
        assert tlb.lookup(1, (1 << 21) + 12345).frame == 512

    def test_reinsert_updates(self, tlb):
        tlb.insert(entry(1, 1, frame=1))
        tlb.insert(entry(1, 1, frame=2))
        assert tlb.lookup(1, 0x1000).frame == 2


class TestReplacement:
    def test_lru_eviction_within_set(self):
        tlb = TLB(entries=4, ways=2, page_shift=12)  # 2 sets
        # vpns 0, 2, 4 all land in set 0.
        tlb.insert(entry(1, 0))
        tlb.insert(entry(1, 2))
        tlb.lookup(1, 0)  # touch vpn 0, making vpn 2 the LRU
        tlb.insert(entry(1, 4))
        assert tlb.lookup(1, 0) is not None
        assert tlb.lookup(1, 2 << 12) is None
        assert tlb.stats.evictions == 1

    def test_different_sets_do_not_conflict(self):
        tlb = TLB(entries=4, ways=2, page_shift=12)
        tlb.insert(entry(1, 0))
        tlb.insert(entry(1, 1))  # set 1
        tlb.insert(entry(1, 2))  # set 0
        assert tlb.lookup(1, 0) is not None
        assert tlb.lookup(1, 1 << 12) is not None

    def test_occupancy_bounded(self, tlb):
        for vpn in range(100):
            tlb.insert(entry(1, vpn))
        assert tlb.occupancy() <= 16


class TestInvalidation:
    def test_invalidate_page(self, tlb):
        tlb.insert(entry(1, 1))
        tlb.invalidate_page(1, 0x1000)
        assert tlb.lookup(1, 0x1000) is None
        assert tlb.stats.invalidations == 1

    def test_invalidate_page_wrong_asid_noop(self, tlb):
        tlb.insert(entry(1, 1))
        tlb.invalidate_page(2, 0x1000)
        assert tlb.lookup(1, 0x1000) is not None

    def test_invalidate_asid(self, tlb):
        tlb.insert(entry(1, 1))
        tlb.insert(entry(1, 2))
        tlb.insert(entry(2, 3))
        tlb.invalidate_asid(1)
        assert tlb.lookup(1, 0x1000) is None
        assert tlb.lookup(1, 0x2000) is None
        assert tlb.lookup(2, 0x3000) is not None

    def test_flush(self, tlb):
        for vpn in range(8):
            tlb.insert(entry(1, vpn))
        tlb.flush()
        assert tlb.occupancy() == 0


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TLB(entries=10, ways=4, page_shift=12)

    def test_miss_rate(self, tlb):
        tlb.lookup(1, 0)
        tlb.insert(entry(1, 0))
        tlb.lookup(1, 0)
        assert tlb.stats.miss_rate == 0.5
