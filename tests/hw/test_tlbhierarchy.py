"""Unit tests for the two-level TLB hierarchy."""

import pytest

from repro.common.config import sandy_bridge_tlbs
from repro.common.params import FOUR_KB, ONE_GB, TWO_MB
from repro.hw.tlbhierarchy import TLBHierarchy


@pytest.fixture
def hierarchy():
    return TLBHierarchy(sandy_bridge_tlbs(), FOUR_KB)


class TestLookupFill:
    def test_structures_built_per_table3(self, hierarchy):
        assert hierarchy.l1d.num_sets == 16
        assert hierarchy.l1i.num_sets == 32
        assert hierarchy.l2.num_sets == 128

    def test_miss_everywhere(self, hierarchy):
        entry, level = hierarchy.lookup(1, 0x1000)
        assert entry is None
        assert level is None

    def test_fill_then_l1_hit(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        entry, level = hierarchy.lookup(1, 0x1000)
        assert entry.frame == 5
        assert level == "l1"

    def test_l2_hit_promotes_to_l1(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        # Evict vpn 1 from L1D (16 sets, 4 ways): fill 4 conflicting vpns.
        for i in range(1, 5):
            hierarchy.fill(1, (1 + 16 * i) << 12, frame=i, writable=True, dirty=True)
        entry, level = hierarchy.lookup(1, 0x1000)
        assert level == "l2"
        # Promoted: next probe hits L1.
        entry, level = hierarchy.lookup(1, 0x1000)
        assert level == "l1"

    def test_inst_uses_itlb(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=False, dirty=False, kind="inst")
        assert hierarchy.l1i.occupancy() == 1
        assert hierarchy.l1d.occupancy() == 0
        entry, level = hierarchy.lookup(1, 0x1000, kind="inst")
        assert level == "l1"


class TestOneGigNoL2:
    def test_1g_hierarchy_has_no_l2(self):
        hierarchy = TLBHierarchy(sandy_bridge_tlbs(), ONE_GB)
        assert hierarchy.l2 is None
        assert hierarchy.l1i is None
        hierarchy.fill(1, 0, frame=0, writable=True, dirty=True)
        entry, level = hierarchy.lookup(1, 123 << 12)
        assert level == "l1"


class TestInvalidation:
    def test_invalidate_page_hits_both_levels(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        hierarchy.invalidate_page(1, 0x1000)
        entry, _ = hierarchy.lookup(1, 0x1000)
        assert entry is None

    def test_invalidate_asid(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        hierarchy.fill(2, 0x1000, frame=6, writable=True, dirty=True)
        hierarchy.invalidate_asid(1)
        assert hierarchy.lookup(1, 0x1000)[0] is None
        assert hierarchy.lookup(2, 0x1000)[0] is not None

    def test_flush(self, hierarchy):
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        hierarchy.flush()
        assert hierarchy.lookup(1, 0x1000)[0] is None


class TestStats:
    def test_miss_counting_uses_l2(self, hierarchy):
        hierarchy.lookup(1, 0x1000)
        assert hierarchy.misses == 1
        hierarchy.fill(1, 0x1000, frame=5, writable=True, dirty=True)
        hierarchy.lookup(1, 0x1000)
        assert hierarchy.misses == 1

    def test_2m_hierarchy(self):
        hierarchy = TLBHierarchy(sandy_bridge_tlbs(), TWO_MB)
        hierarchy.fill(1, 0, frame=0, writable=True, dirty=True)
        entry, level = hierarchy.lookup(1, TWO_MB.bytes - 1)
        assert level == "l1"
        entry, level = hierarchy.lookup(1, TWO_MB.bytes)
        assert entry is None
