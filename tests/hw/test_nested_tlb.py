"""Unit tests for the nested (gPA=>hPA) TLB."""

import pytest

from repro.hw.nested_tlb import NestedTLB


class TestNestedTLB:
    def test_miss_then_hit(self):
        ntlb = NestedTLB(4)
        assert ntlb.lookup(5, is_write=False) is None
        ntlb.insert(5, 50, writable=True, dirty=True)
        assert ntlb.lookup(5, is_write=False) == (50, True, True)

    def test_write_through_clean_entry_misses(self):
        ntlb = NestedTLB(4)
        ntlb.insert(5, 50, writable=True, dirty=False)
        assert ntlb.lookup(5, is_write=True) is None
        assert ntlb.lookup(5, is_write=False) is not None

    def test_write_through_readonly_entry_misses(self):
        ntlb = NestedTLB(4)
        ntlb.insert(5, 50, writable=False, dirty=False)
        assert ntlb.lookup(5, is_write=True) is None

    def test_write_hit_when_dirty(self):
        ntlb = NestedTLB(4)
        ntlb.insert(5, 50, writable=True, dirty=True)
        assert ntlb.lookup(5, is_write=True) is not None

    def test_lru_eviction(self):
        ntlb = NestedTLB(2)
        ntlb.insert(1, 10, True, True)
        ntlb.insert(2, 20, True, True)
        ntlb.lookup(1, False)  # make gfn 2 the LRU
        ntlb.insert(3, 30, True, True)
        assert ntlb.lookup(2, False) is None
        assert ntlb.lookup(1, False) is not None

    def test_invalidate_gfn(self):
        ntlb = NestedTLB(4)
        ntlb.insert(5, 50, True, True)
        ntlb.invalidate_gfn(5)
        assert ntlb.lookup(5, False) is None

    def test_flush(self):
        ntlb = NestedTLB(4)
        ntlb.insert(5, 50, True, True)
        ntlb.flush()
        assert ntlb.lookup(5, False) is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            NestedTLB(0)

    def test_stats(self):
        ntlb = NestedTLB(4)
        ntlb.lookup(1, False)
        ntlb.insert(1, 10, True, True)
        ntlb.lookup(1, False)
        assert ntlb.stats.misses == 1
        assert ntlb.stats.hits == 1
