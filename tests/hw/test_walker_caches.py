"""Walker interaction with the acceleration structures (PWC/NTLB)."""

import pytest

from helpers import TwoLevelSetup, make_native_setup, native_ctx
from repro.hw.nested_tlb import NestedTLB
from repro.hw.pwc import PageWalkCache
from repro.hw.walker import PageWalker

VA = (3 << 39) | (7 << 30) | (11 << 21) | (13 << 12)
NEIGHBOR = VA + (1 << 12)  # same leaf node, different PTE


class TestNativeWithPWC:
    def test_second_walk_skips_to_leaf(self):
        mem, table = make_native_setup()
        table.map(VA, mem.alloc_data_page())
        table.map(NEIGHBOR, mem.alloc_data_page())
        walker = PageWalker(mem, pwc=PageWalkCache())
        ctx = native_ctx(table)
        first = walker.native_walk(VA, ctx)
        second = walker.native_walk(NEIGHBOR, ctx)
        assert first.refs == 4
        assert second.refs == 1  # depth-3 PWC hit: leaf access only

    def test_partial_prefix_hit(self):
        mem, table = make_native_setup()
        table.map(VA, mem.alloc_data_page())
        other_l2 = VA + (1 << 21)  # shares L4+L3, different L2 subtree
        table.map(other_l2, mem.alloc_data_page())
        walker = PageWalker(mem, pwc=PageWalkCache())
        ctx = native_ctx(table)
        walker.native_walk(VA, ctx)
        result = walker.native_walk(other_l2, ctx)
        assert result.refs == 2  # depth-2 hit: walk L2 + leaf


class TestNestedWithCaches:
    def build(self, pwc=True, host_pwc=True, ntlb=0):
        setup = TwoLevelSetup()
        setup.map_guest(VA)
        setup.map_guest(NEIGHBOR)
        walker = PageWalker(
            setup.host_mem,
            setup.guest_mem,
            pwc=PageWalkCache() if pwc else None,
            nested_tlb=NestedTLB(ntlb) if ntlb else None,
            host_pwc=PageWalkCache() if host_pwc else None,
        )
        return setup, walker

    def test_warm_nested_walk_costs_two_refs(self):
        setup, walker = self.build()
        ctx = setup.nested_ctx()
        first = walker.nested_walk(VA, ctx)
        second = walker.nested_walk(NEIGHBOR, ctx)
        # Even the cold walk reuses the host PWC *within* itself (this
        # small guest's gPAs share one host L1 node): 4 refs for the
        # first host walk, then 1 per group: 4 + (1+1)*4 = 12.
        assert first.refs == 12
        # Guest PWC skips to the guest leaf; host PWC skips to the host
        # leaf for the data page: 1 gPT read + 1 hPT read.
        assert second.refs == 2

    def test_host_pwc_alone(self):
        setup, walker = self.build(pwc=False, host_pwc=True)
        ctx = setup.nested_ctx()
        walker.nested_walk(VA, ctx)
        second = walker.nested_walk(NEIGHBOR, ctx)
        # 5 host-walk groups collapse to 1 ref each: 4 gPT + 5 hPT... the
        # gptr translation plus one per level: 4 guest reads + 5 host hits.
        assert second.refs == 9

    def test_nested_tlb_skips_host_walks(self):
        setup, walker = self.build(pwc=False, host_pwc=False, ntlb=64)
        ctx = setup.nested_ctx()
        walker.nested_walk(VA, ctx)
        second = walker.nested_walk(VA, ctx)
        # All host translations cached: only the 4 guest PTE reads remain.
        assert second.refs == 4

    def test_agile_pwc_mode_bits(self):
        setup, walker = self.build()
        setup.build_full_shadow()
        setup.set_switching(VA, 2)
        ctx = setup.agile_ctx()
        first = walker.agile_walk(VA, ctx)
        second = walker.agile_walk(VA, ctx)
        assert first.refs == 8
        # The guest-mode PWC entry resumes the walk nested at the leaf.
        assert second.refs <= 3
        assert second.nested_levels >= 1
