"""Unit tests for the CR3->shadow-CR3 hardware cache (Section IV)."""

import pytest

from repro.hw.cr3cache import CR3Cache


class TestCR3Cache:
    def test_miss_then_hit(self):
        cache = CR3Cache(4)
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, 0x9000)
        assert cache.lookup(0x1000) == 0x9000
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_at_capacity(self):
        cache = CR3Cache(2)
        cache.insert(1, 10)
        cache.insert(2, 20)
        cache.lookup(1)
        cache.insert(3, 30)
        assert cache.lookup(2) is None
        assert cache.lookup(1) == 10
        assert cache.lookup(3) == 30

    def test_invalidate(self):
        cache = CR3Cache(4)
        cache.insert(1, 10)
        cache.invalidate(1)
        assert cache.lookup(1) is None

    def test_invalidate_absent_is_noop(self):
        CR3Cache(4).invalidate(99)

    def test_flush(self):
        cache = CR3Cache(4)
        cache.insert(1, 10)
        cache.insert(2, 20)
        cache.flush()
        assert cache.lookup(1) is None
        assert cache.lookup(2) is None

    def test_reinsert_updates(self):
        cache = CR3Cache(4)
        cache.insert(1, 10)
        cache.insert(1, 11)
        assert cache.lookup(1) == 11

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CR3Cache(0)
