"""Unit tests for the page-walk caches."""

import pytest

from repro.hw.pwc import PWC_GUEST, PWC_SHADOW, PageWalkCache


@pytest.fixture
def pwc():
    return PageWalkCache(entries_per_table=4)


VA = (3 << 39) | (7 << 30) | (11 << 21) | (13 << 12)


class TestLookupInsert:
    def test_empty_misses(self, pwc):
        assert pwc.lookup(1, VA) is None
        assert pwc.stats.misses == 1

    def test_deepest_hit_wins(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        pwc.insert(1, VA, depth=3, frame=300, mode=PWC_SHADOW)
        skipped, frame, mode = pwc.lookup(1, VA)
        assert (skipped, frame) == (3, 300)

    def test_prefix_sharing(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        # Same top-level index, different low bits: still a depth-1 hit.
        other = (3 << 39) | (9 << 30)
        assert pwc.lookup(1, other) == (1, 100, PWC_SHADOW)

    def test_prefix_mismatch(self, pwc):
        pwc.insert(1, VA, depth=2, frame=200, mode=PWC_SHADOW)
        other = (3 << 39) | (8 << 30) | (11 << 21)
        assert pwc.lookup(1, other) is None

    def test_mode_bit_round_trips(self, pwc):
        pwc.insert(1, VA, depth=2, frame=55, mode=PWC_GUEST)
        assert pwc.lookup(1, VA)[2] == PWC_GUEST

    def test_asid_isolation(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        assert pwc.lookup(2, VA) is None

    def test_depth_bounds_ignored(self, pwc):
        pwc.insert(1, VA, depth=0, frame=1, mode=PWC_SHADOW)
        pwc.insert(1, VA, depth=4, frame=1, mode=PWC_SHADOW)
        assert pwc.lookup(1, VA) is None

    def test_disabled_pwc_never_hits(self):
        pwc = PageWalkCache(enabled=False)
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        assert pwc.lookup(1, VA) is None
        assert pwc.stats.misses == 0  # disabled: not even counted


class TestReplacementInvalidation:
    def test_lru_capacity(self, pwc):
        for i in range(6):
            pwc.insert(1, i << 39, depth=1, frame=i, mode=PWC_SHADOW)
        hits = sum(1 for i in range(6) if pwc.lookup(1, i << 39) is not None)
        assert hits == 4

    def test_invalidate_prefix(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        pwc.insert(1, VA, depth=2, frame=200, mode=PWC_SHADOW)
        pwc.invalidate_prefix(1, VA)
        assert pwc.lookup(1, VA) is None

    def test_invalidate_asid(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        pwc.insert(2, VA, depth=1, frame=100, mode=PWC_SHADOW)
        pwc.invalidate_asid(1)
        assert pwc.lookup(1, VA) is None
        assert pwc.lookup(2, VA) is not None

    def test_flush(self, pwc):
        pwc.insert(1, VA, depth=1, frame=100, mode=PWC_SHADOW)
        pwc.flush()
        assert pwc.lookup(1, VA) is None
