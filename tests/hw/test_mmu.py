"""Unit tests for the MMU facade (TLB + walker + caches)."""

import pytest

from helpers import TwoLevelSetup, make_native_setup, native_ctx
from repro.common.config import sandy_bridge_config
from repro.common.errors import GuestPageFault
from repro.hw.mmu import MMU

VA = (3 << 39) | (7 << 30) | (11 << 21) | (13 << 12)


def native_mmu():
    mem, table = make_native_setup()
    config = sandy_bridge_config(mode="native")
    mmu = MMU(config, mem)
    return mmu, mem, table


class TestTranslatePath:
    def test_miss_then_hit(self):
        mmu, mem, table = native_mmu()
        frame = mem.alloc_data_page()
        table.map(VA, frame, dirty=True)
        ctx = native_ctx(table)
        first = mmu.translate(ctx, VA)
        assert not first.tlb_hit
        assert first.frame == frame
        second = mmu.translate(ctx, VA)
        assert second.tlb_hit
        assert second.hit_level == "l1"
        assert mmu.counters.tlb_hits_l1 == 1
        assert mmu.counters.tlb_misses == 1

    def test_write_through_clean_entry_rewalks(self):
        mmu, mem, table = native_mmu()
        frame = mem.alloc_data_page()
        table.map(VA, frame)
        ctx = native_ctx(table)
        mmu.translate(ctx, VA, is_write=False)  # fills clean entry
        outcome = mmu.translate(ctx, VA, is_write=True)
        assert not outcome.tlb_hit  # had to re-walk to set dirty
        assert mmu.counters.write_upgrades == 1
        pte, _ = table.lookup(VA)
        assert pte.dirty

    def test_write_after_upgrade_hits(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page())
        ctx = native_ctx(table)
        mmu.translate(ctx, VA, is_write=True)
        outcome = mmu.translate(ctx, VA, is_write=True)
        assert outcome.tlb_hit

    def test_fault_counts_partial_refs(self):
        mmu, mem, table = native_mmu()
        ctx = native_ctx(table)
        with pytest.raises(GuestPageFault):
            mmu.translate(ctx, VA)
        assert mmu.counters.fault_refs >= 1
        assert mmu.counters.tlb_misses == 0

    def test_miss_hook_invoked(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page(), dirty=True)
        seen = []
        mmu.miss_hook = lambda va, result: seen.append((va, result.refs))
        mmu.translate(ctx := native_ctx(table), VA)
        mmu.translate(ctx, VA)  # hit: no hook
        assert len(seen) == 1
        assert seen[0][0] == VA


class TestAgileDepthAccounting:
    def test_depth_histogram(self):
        setup = TwoLevelSetup()
        setup.map_guest(VA)
        setup.build_full_shadow()
        setup.set_switching(VA, 2)
        config = sandy_bridge_config(mode="agile")
        mmu = MMU(config, setup.host_mem, setup.guest_mem)
        mmu.translate(setup.agile_ctx(), VA)
        assert mmu.counters.walks_by_depth[1] == 1

    def test_reset_clears_counters(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page(), dirty=True)
        ctx = native_ctx(table)
        mmu.translate(ctx, VA)
        mmu.counters.reset()
        assert mmu.counters.tlb_misses == 0
        assert mmu.counters.walk_refs == 0
        assert sum(mmu.counters.walks_by_depth.values()) == 0


class TestInvalidation:
    def test_invalidate_page_forces_walk(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page(), dirty=True)
        ctx = native_ctx(table)
        mmu.translate(ctx, VA)
        mmu.invalidate_page(ctx.asid, VA)
        outcome = mmu.translate(ctx, VA)
        assert not outcome.tlb_hit

    def test_flush_all(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page(), dirty=True)
        ctx = native_ctx(table)
        mmu.translate(ctx, VA)
        mmu.flush_all()
        assert not mmu.translate(ctx, VA).tlb_hit

    def test_avg_refs_property(self):
        mmu, mem, table = native_mmu()
        table.map(VA, mem.alloc_data_page(), dirty=True)
        ctx = native_ctx(table)
        mmu.translate(ctx, VA)
        assert mmu.counters.avg_refs_per_miss >= 1.0
