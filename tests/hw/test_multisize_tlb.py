"""Unit tests for the multi-granule TLB front end."""

import pytest

from repro.common.config import sandy_bridge_tlbs
from repro.common.params import FOUR_KB, TWO_MB
from repro.hw.tlbhierarchy import MultiSizeTLB


@pytest.fixture
def tlb():
    return MultiSizeTLB(sandy_bridge_tlbs(), {FOUR_KB, TWO_MB}, primary=FOUR_KB)


class TestFillRouting:
    def test_4k_translation_enters_4k_array(self, tlb):
        tlb.fill(1, 0x1000, frame=5, writable=True, dirty=True, page_shift=12)
        assert tlb.hierarchies[12].l1d.occupancy() == 1
        assert tlb.hierarchies[21].l1d.occupancy() == 0

    def test_2m_translation_enters_2m_array(self, tlb):
        tlb.fill(1, 0, frame=0, writable=True, dirty=True, page_shift=21)
        assert tlb.hierarchies[21].l1d.occupancy() == 1

    def test_lookup_probes_all_sizes(self, tlb):
        tlb.fill(1, 0, frame=0, writable=True, dirty=True, page_shift=21)
        entry, _level = tlb.lookup(1, (1 << 20))  # inside the 2M page
        assert entry is not None

    def test_unsupported_size_breaks_down(self):
        # Only a 4K array available: a 2M fill must be broken down.
        tlb = MultiSizeTLB(sandy_bridge_tlbs(), {FOUR_KB}, primary=FOUR_KB)
        tlb.fill(1, 5 << 12, frame=512, writable=True, dirty=True, page_shift=21)
        entry, _level = tlb.lookup(1, 5 << 12)
        assert entry is not None
        assert entry.frame == 512 + 5  # the exact 4K piece
        # Neighboring pieces were NOT filled.
        assert tlb.lookup(1, 6 << 12)[0] is None

    def test_requires_primary_geometry(self):
        with pytest.raises(ValueError):
            MultiSizeTLB(sandy_bridge_tlbs(), set(), primary=FOUR_KB)


class TestInvalidation:
    def test_invalidate_page_hits_all_arrays(self, tlb):
        tlb.fill(1, 0, frame=0, writable=True, dirty=True, page_shift=21)
        tlb.fill(1, 0x1000, frame=1, writable=True, dirty=True, page_shift=12)
        tlb.invalidate_page(1, 0)
        tlb.invalidate_page(1, 0x1000)
        assert tlb.lookup(1, 0)[0] is None
        assert tlb.lookup(1, 0x1000)[0] is None

    def test_invalidate_asid(self, tlb):
        tlb.fill(1, 0x1000, frame=1, writable=True, dirty=True, page_shift=12)
        tlb.fill(2, 0x1000, frame=2, writable=True, dirty=True, page_shift=12)
        tlb.invalidate_asid(1)
        assert tlb.lookup(1, 0x1000)[0] is None
        assert tlb.lookup(2, 0x1000)[0] is not None

    def test_flush_and_miss_counting(self, tlb):
        tlb.fill(1, 0x1000, frame=1, writable=True, dirty=True, page_shift=12)
        tlb.flush()
        assert tlb.lookup(1, 0x1000)[0] is None
        assert tlb.misses >= 1
