"""Unit tests for the frame allocator and physical memory store."""

import pytest

from repro.mem.physmem import (
    DataPage,
    FrameAllocator,
    OutOfMemoryError,
    PhysicalMemory,
)


class TestFrameAllocator:
    def test_allocates_distinct_frames(self):
        alloc = FrameAllocator(16)
        frames = {alloc.alloc() for _ in range(16)}
        assert len(frames) == 16

    def test_exhaustion_raises(self):
        alloc = FrameAllocator(2)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc()

    def test_free_enables_reuse(self):
        alloc = FrameAllocator(1)
        frame = alloc.alloc()
        alloc.free(frame)
        assert alloc.alloc() == frame

    def test_free_unallocated_raises(self):
        alloc = FrameAllocator(4)
        with pytest.raises(Exception):
            alloc.free(3)

    def test_accounting(self):
        alloc = FrameAllocator(8)
        a = alloc.alloc()
        alloc.alloc()
        assert alloc.allocated == 2
        assert alloc.available == 6
        alloc.free(a)
        assert alloc.allocated == 1

    def test_contiguous_is_aligned(self):
        alloc = FrameAllocator(4096)
        alloc.alloc()  # misalign the bump pointer
        base = alloc.alloc_contiguous(512)
        assert base % 512 == 0

    def test_contiguous_skipped_frames_are_reusable(self):
        alloc = FrameAllocator(2048)
        alloc.alloc()
        alloc.alloc_contiguous(512)
        # Frames 1..511 went to the free list.
        singles = {alloc.alloc() for _ in range(511)}
        assert singles == set(range(1, 512))

    def test_contiguous_exhaustion(self):
        alloc = FrameAllocator(256)
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_contiguous(512)

    def test_contiguous_reuses_freed_blocks(self):
        # Map/unmap churn of large pages must not leak the bump pointer:
        # once the bump region is gone, freed aligned blocks are reused
        # (found by the differential fuzzer's 2M campaigns).
        alloc = FrameAllocator(1024)
        first = alloc.alloc_contiguous(512)
        second = alloc.alloc_contiguous(512)
        for frame in range(second, second + 512):
            alloc.free(frame)
        assert alloc.alloc_contiguous(512) == second
        assert first == 0

    def test_contiguous_reuse_takes_lowest_aligned_block(self):
        alloc = FrameAllocator(1024)
        blocks = [alloc.alloc_contiguous(256) for _ in range(4)]
        for base in (blocks[3], blocks[1]):
            for frame in range(base, base + 256):
                alloc.free(frame)
        assert alloc.alloc_contiguous(256) == blocks[1]
        assert alloc.alloc_contiguous(256) == blocks[3]

    def test_contiguous_reuse_requires_fully_free_block(self):
        alloc = FrameAllocator(512)
        base = alloc.alloc_contiguous(512)
        for frame in range(base, base + 512):
            alloc.free(frame)
        hole = alloc.alloc()  # one frame back out of the only block
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_contiguous(512)
        alloc.free(hole)
        assert alloc.alloc_contiguous(512) == base

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            FrameAllocator(0)
        with pytest.raises(ValueError):
            FrameAllocator(4).alloc_contiguous(0)


class TestPhysicalMemory:
    def test_alloc_and_read(self):
        mem = PhysicalMemory(16)
        frame = mem.alloc_frame("hello")
        assert mem.read(frame) == "hello"
        assert frame in mem

    def test_alloc_data_page(self):
        mem = PhysicalMemory(16)
        frame = mem.alloc_data_page(tag="heap")
        page = mem.read(frame)
        assert isinstance(page, DataPage)
        assert page.tag == "heap"
        assert page.shared == 1

    def test_read_empty_frame(self):
        mem = PhysicalMemory(16)
        frame = mem.alloc_frame()
        assert mem.read(frame) is None
        with pytest.raises(Exception):
            mem.read_required(frame)

    def test_free_clears_contents(self):
        mem = PhysicalMemory(16)
        frame = mem.alloc_frame("x")
        mem.free_frame(frame)
        assert frame not in mem

    def test_install_overwrites(self):
        mem = PhysicalMemory(16)
        frame = mem.alloc_frame("a")
        mem.install(frame, "b")
        assert mem.read(frame) == "b"
