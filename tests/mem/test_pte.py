"""Unit tests for PTE and PageTableNode primitives."""

from repro.mem.pte import PTE, PageTableNode


class TestPTE:
    def test_defaults(self):
        pte = PTE(frame=7)
        assert pte.present and pte.writable and pte.user
        assert not (pte.accessed or pte.dirty or pte.huge or pte.switching)
        assert not pte.guest_node

    def test_copy_is_independent(self):
        original = PTE(frame=7, dirty=True)
        clone = original.copy()
        clone.frame = 8
        clone.dirty = False
        assert original.frame == 7
        assert original.dirty

    def test_copy_preserves_all_fields(self):
        original = PTE(frame=3, present=False, writable=False, user=False,
                       accessed=True, dirty=True, huge=True,
                       switching=True, guest_node=True)
        clone = original.copy()
        for field in PTE.__slots__:
            assert getattr(clone, field) == getattr(original, field), field

    def test_repr_shows_flags(self):
        pte = PTE(frame=5, dirty=True, switching=True)
        text = repr(pte)
        assert "frame=5" in text
        assert "D" in text
        assert "S" in text

    def test_repr_empty_flags(self):
        pte = PTE(frame=0, present=False, writable=False, user=False)
        assert "-" in repr(pte)


class TestPageTableNode:
    def test_get_set_clear(self):
        node = PageTableNode(level=2, frame=9)
        assert node.get(5) is None
        pte = PTE(frame=1)
        node.set(5, pte)
        assert node.get(5) is pte
        node.clear(5)
        assert node.get(5) is None
        node.clear(5)  # idempotent

    def test_present_items_filters(self):
        node = PageTableNode(level=1, frame=0)
        node.set(1, PTE(frame=1))
        node.set(2, PTE(frame=2, present=False))
        items = dict(node.present_items())
        assert set(items) == {1}

    def test_used_entries(self):
        node = PageTableNode(level=1, frame=0)
        assert node.used_entries() == 0
        node.set(0, PTE(frame=0))
        assert node.used_entries() == 1

    def test_repr(self):
        node = PageTableNode(level=3, frame=12)
        assert "level=3" in repr(node)
        assert "frame=12" in repr(node)
