"""Unit tests for the radix page table."""

import pytest

from repro.common.params import FOUR_KB, ONE_GB, TWO_MB
from repro.mem.pagetable import PageTable, PageTableObserver
from repro.mem.physmem import PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(4096)


@pytest.fixture
def table(mem):
    return PageTable(mem, "PT")


class TestMapLookup:
    def test_map_then_lookup(self, table):
        table.map(0x4000, 7)
        pte, level = table.lookup(0x4000)
        assert pte.frame == 7
        assert level == 1

    def test_unmapped_lookup(self, table):
        pte, level = table.lookup(0xDEAD000)
        assert pte is None
        assert level == 4

    def test_translate(self, table):
        table.map(0x4000, 7)
        assert table.translate(0x4000) == (7, 12)
        assert table.translate(0x4321) == (7, 12)  # same page
        assert table.translate(0x5000) is None

    def test_distinct_mappings(self, table):
        table.map(0x1000, 1)
        table.map(0x2000, 2)
        assert table.translate(0x1000)[0] == 1
        assert table.translate(0x2000)[0] == 2

    def test_remap_overwrites(self, table):
        table.map(0x1000, 1)
        table.map(0x1000, 9)
        assert table.translate(0x1000)[0] == 9

    def test_far_apart_vas(self, table):
        low, high = 0x1000, (400 << 39) | 0x1000
        table.map(low, 1)
        table.map(high, 2)
        assert table.translate(low)[0] == 1
        assert table.translate(high)[0] == 2


class TestHugePages:
    def test_2m_mapping(self, table):
        table.map(0, 512, TWO_MB)
        pte, level = table.lookup(0)
        assert level == 2
        assert pte.huge

    def test_2m_translate_offsets(self, table):
        table.map(0, 512, TWO_MB)
        frame, shift = table.translate(5 << 12)
        assert shift == 21
        assert frame == 512 + 5

    def test_1g_translate(self, table):
        table.map(0, 0, ONE_GB)
        frame, shift = table.translate(123 << 12)
        assert shift == 30
        assert frame == 123

    def test_huge_blocks_deeper_path(self, table):
        table.map(0, 512, TWO_MB)
        with pytest.raises(Exception):
            table.ensure_path(0x1000, 1)


class TestUnmapAndFlags:
    def test_unmap(self, table):
        table.map(0x1000, 3)
        old = table.unmap(0x1000)
        assert old.frame == 3
        assert table.translate(0x1000) is None

    def test_unmap_absent_returns_none(self, table):
        assert table.unmap(0x9000) is None

    def test_set_flags(self, table):
        table.map(0x1000, 3, writable=True)
        updated = table.set_flags(0x1000, writable=False, dirty=True)
        assert not updated.writable
        assert updated.dirty
        pte, _ = table.lookup(0x1000)
        assert not pte.writable

    def test_set_flags_unknown_key(self, table):
        table.map(0x1000, 3)
        with pytest.raises(ValueError):
            table.set_flags(0x1000, global_bit=True)

    def test_set_flags_absent(self, table):
        assert table.set_flags(0x9000, dirty=True) is None


class TestIteration:
    def test_iter_leaves(self, table):
        table.map(0x1000, 1)
        table.map(0x2000, 2)
        table.map(1 << 30, 3)
        leaves = {va: pte.frame for va, pte, _ in table.iter_leaves()}
        assert leaves == {0x1000: 1, 0x2000: 2, 1 << 30: 3}

    def test_iter_leaves_includes_huge(self, table):
        table.map(0, 512, TWO_MB)
        [(va, pte, level)] = list(table.iter_leaves())
        assert va == 0
        assert level == 2

    def test_count_mappings(self, table):
        for i in range(10):
            table.map(i << 12, i)
        assert table.count_mappings() == 10

    def test_iter_nodes_parents_first(self, table):
        table.map(0x1000, 1)
        nodes = list(table.iter_nodes())
        levels = [n.level for n in nodes]
        assert levels[0] == 4
        assert sorted(levels, reverse=True) == levels


class TestSubtreeManagement:
    def test_clear_subtree_frees_frames(self, mem, table):
        for i in range(4):
            table.map(i << 12, i)
        before = mem.allocator.allocated
        index = 0  # all mappings share the top-level entry 0
        table.clear_subtree(table.root, index)
        assert mem.allocator.allocated < before
        assert table.translate(0x1000) is None

    def test_destroy_frees_everything(self, mem, table):
        table.map(0x1000, 1)
        table.map(1 << 39, 2)
        table.destroy()
        assert mem.allocator.allocated == 0


class RecordingObserver(PageTableObserver):
    def __init__(self):
        self.allocs = []
        self.writes = []
        self.frees = []

    def node_allocated(self, table, node, parent):
        self.allocs.append((node.level, parent.level if parent is not None else None))

    def pte_written(self, table, node, index, old, new):
        self.writes.append((node.level, index, old, new))

    def node_freed(self, table, node):
        self.frees.append(node.level)


class TestObserver:
    def test_map_reports_writes_and_allocs(self, mem):
        observer = RecordingObserver()
        table = PageTable(mem, "gPT", observer=observer)
        table.map(0x1000, 5)
        # Root alloc + three intermediate nodes.
        assert observer.allocs == [(4, None), (3, 4), (2, 3), (1, 2)]
        # Three intermediate link writes + the leaf write.
        assert len(observer.writes) == 4
        level, index, old, new = observer.writes[-1]
        assert level == 1
        assert old is None
        assert new.frame == 5

    def test_unmap_reports_write(self, mem):
        observer = RecordingObserver()
        table = PageTable(mem, "gPT", observer=observer)
        table.map(0x1000, 5)
        observer.writes.clear()
        table.unmap(0x1000)
        [(level, _, old, new)] = observer.writes
        assert level == 1
        assert old.frame == 5
        assert new is None

    def test_free_reports_nodes(self, mem):
        observer = RecordingObserver()
        table = PageTable(mem, "gPT", observer=observer)
        table.map(0x1000, 5)
        table.destroy()
        assert sorted(observer.frees) == [1, 2, 3, 4]
