"""Unit tests for RunMetrics derived quantities."""

import pytest

from repro.common.params import FOUR_KB
from repro.core.metrics import METRICS_SCHEMA_VERSION, RunMetrics
from repro.hw.walkstats import NESTED_FULL


def make_metrics(**fields):
    metrics = RunMetrics("test", "agile", FOUR_KB)
    for key, value in fields.items():
        setattr(metrics, key, value)
    return metrics


class TestOverheads:
    def test_page_walk_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, walk_cycles=250)
        assert metrics.page_walk_overhead == 0.25

    def test_l2_cycles_excluded_from_walk_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, walk_cycles=250,
                               tlb_l2_cycles=999)
        assert metrics.page_walk_overhead == 0.25

    def test_vmm_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, vmm_cycles=570)
        assert metrics.vmm_overhead == 0.57

    def test_total_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, total_cycles=1800)
        assert metrics.total_overhead == pytest.approx(0.8)

    def test_zero_guards(self):
        metrics = make_metrics()
        assert metrics.page_walk_overhead == 0.0
        assert metrics.vmm_overhead == 0.0
        assert metrics.total_overhead == 0.0
        assert metrics.avg_refs_per_miss == 0.0
        assert metrics.miss_rate_per_kop == 0.0


class TestMixAndRates:
    def test_avg_refs(self):
        metrics = make_metrics(tlb_misses=10, walk_refs=45)
        assert metrics.avg_refs_per_miss == 4.5

    def test_miss_rate(self):
        metrics = make_metrics(ops=2000, tlb_misses=10)
        assert metrics.miss_rate_per_kop == 5.0

    def test_mode_mix(self):
        metrics = make_metrics(walks_by_depth={0: 80, 1: 15, 2: 5, 3: 0, 4: 0,
                                               NESTED_FULL: 0})
        mix = metrics.mode_mix()
        assert mix["Shadow"] == 0.80
        assert mix["L4"] == 0.15
        assert mix["L3"] == 0.05
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_mode_mix_empty(self):
        assert make_metrics(walks_by_depth={}).mode_mix() == {}

    def test_vmtraps_sums_only_trap_kinds(self):
        metrics = make_metrics(trap_counts={"pt_write": 5, "ad_assist": 99,
                                            "context_switch": 2})
        assert metrics.vmtraps == 7  # ad_assist is hardware, not a trap

class TestSchemaVersion:
    def test_to_dict_stamps_current_version(self):
        payload = make_metrics(ops=100).to_dict()
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION

    def test_round_trip_preserves_fields(self):
        metrics = make_metrics(ops=100, ideal_cycles=200, tlb_misses=4,
                               trap_counts={"pt_write": 3})
        again = RunMetrics.from_dict(metrics.to_dict())
        assert again.to_dict() == metrics.to_dict()

    def test_unknown_version_rejected_with_clear_error(self):
        payload = make_metrics(ops=100).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError) as excinfo:
            RunMetrics.from_dict(payload)
        message = str(excinfo.value)
        assert "schema_version" in message
        assert "99" in message
        assert "cache" in message  # tells the user how to recover

    def test_missing_version_treated_as_v1(self):
        """Payloads cached before the key existed still load."""
        payload = make_metrics(ops=100).to_dict()
        del payload["schema_version"]
        assert RunMetrics.from_dict(payload).ops == 100


class TestMixAndRatesSummary:
    def test_summary_round_trips(self):
        metrics = make_metrics(ops=100, ideal_cycles=200, walk_cycles=50,
                               tlb_misses=4, walk_refs=16)
        summary = metrics.summary()
        assert summary["ops"] == 100
        assert summary["avg_refs_per_miss"] == 4.0
        assert summary["page_walk_overhead"] == 0.25
