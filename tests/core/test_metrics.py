"""Unit tests for RunMetrics derived quantities."""

import pytest

from repro.common.params import FOUR_KB
from repro.core.metrics import RunMetrics
from repro.hw.walkstats import NESTED_FULL


def make_metrics(**fields):
    metrics = RunMetrics("test", "agile", FOUR_KB)
    for key, value in fields.items():
        setattr(metrics, key, value)
    return metrics


class TestOverheads:
    def test_page_walk_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, walk_cycles=250)
        assert metrics.page_walk_overhead == 0.25

    def test_l2_cycles_excluded_from_walk_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, walk_cycles=250,
                               tlb_l2_cycles=999)
        assert metrics.page_walk_overhead == 0.25

    def test_vmm_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, vmm_cycles=570)
        assert metrics.vmm_overhead == 0.57

    def test_total_overhead(self):
        metrics = make_metrics(ideal_cycles=1000, total_cycles=1800)
        assert metrics.total_overhead == pytest.approx(0.8)

    def test_zero_guards(self):
        metrics = make_metrics()
        assert metrics.page_walk_overhead == 0.0
        assert metrics.vmm_overhead == 0.0
        assert metrics.total_overhead == 0.0
        assert metrics.avg_refs_per_miss == 0.0
        assert metrics.miss_rate_per_kop == 0.0


class TestMixAndRates:
    def test_avg_refs(self):
        metrics = make_metrics(tlb_misses=10, walk_refs=45)
        assert metrics.avg_refs_per_miss == 4.5

    def test_miss_rate(self):
        metrics = make_metrics(ops=2000, tlb_misses=10)
        assert metrics.miss_rate_per_kop == 5.0

    def test_mode_mix(self):
        metrics = make_metrics(walks_by_depth={0: 80, 1: 15, 2: 5, 3: 0, 4: 0,
                                               NESTED_FULL: 0})
        mix = metrics.mode_mix()
        assert mix["Shadow"] == 0.80
        assert mix["L4"] == 0.15
        assert mix["L3"] == 0.05
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_mode_mix_empty(self):
        assert make_metrics(walks_by_depth={}).mode_mix() == {}

    def test_vmtraps_sums_only_trap_kinds(self):
        metrics = make_metrics(trap_counts={"pt_write": 5, "ad_assist": 99,
                                            "context_switch": 2})
        assert metrics.vmtraps == 7  # ad_assist is hardware, not a trap

    def test_summary_round_trips(self):
        metrics = make_metrics(ops=100, ideal_cycles=200, walk_cycles=50,
                               tlb_misses=4, walk_refs=16)
        summary = metrics.summary()
        assert summary["ops"] == 100
        assert summary["avg_refs_per_miss"] == 4.0
        assert summary["page_walk_overhead"] == 0.25
