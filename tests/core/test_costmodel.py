"""Unit tests for the Table IV performance model."""

import pytest

from repro.core.costmodel import (
    AgileFractions,
    MeasuredRun,
    agile_vmm_overhead,
    agile_walk_overhead,
    ideal_cycles,
    measured_run_from_metrics,
    page_walk_overhead,
    vmm_overhead,
)


class TestBasicFormulas:
    def test_ideal_is_total_minus_misses(self):
        run = MeasuredRun(total_cycles=1000, tlb_misses=10, tlb_miss_cycles=200)
        assert ideal_cycles(run) == 800

    def test_page_walk_overhead(self):
        # PW = (E - E_ideal - H) / E_ideal
        run = MeasuredRun(total_cycles=1500, tlb_misses=10,
                          tlb_miss_cycles=0, hypervisor_cycles=100)
        assert page_walk_overhead(run, e_ideal=1000) == pytest.approx(0.4)

    def test_vmm_overhead(self):
        run = MeasuredRun(total_cycles=1500, tlb_misses=0,
                          tlb_miss_cycles=0, hypervisor_cycles=250)
        assert vmm_overhead(run, e_ideal=1000) == pytest.approx(0.25)

    def test_avg_cycles_per_miss(self):
        run = MeasuredRun(total_cycles=0, tlb_misses=4, tlb_miss_cycles=100)
        assert run.avg_cycles_per_miss == 25.0

    def test_zero_guards(self):
        run = MeasuredRun(0, 0, 0, 0)
        assert run.avg_cycles_per_miss == 0.0
        assert page_walk_overhead(run, 0) == 0.0
        assert vmm_overhead(run, 0) == 0.0


class TestAgileProjection:
    def setup_method(self):
        self.shadow = MeasuredRun(total_cycles=0, tlb_misses=100,
                                  tlb_miss_cycles=100 * 160,
                                  hypervisor_cycles=50_000)
        self.nested = MeasuredRun(total_cycles=0, tlb_misses=100,
                                  tlb_miss_cycles=100 * 960)

    def test_pure_shadow_fractions(self):
        fractions = AgileFractions(fn={})
        overhead = agile_walk_overhead(fractions, self.shadow, self.nested,
                                       base_misses=100, e_ideal=100_000)
        # All misses at shadow cost: 100 * 160 / 100_000.
        assert overhead == pytest.approx(0.16)

    def test_pure_nested_fractions(self):
        fractions = AgileFractions(fn={4: 1.0})
        overhead = agile_walk_overhead(fractions, self.shadow, self.nested,
                                       base_misses=100, e_ideal=100_000)
        assert overhead == pytest.approx(0.96)

    def test_leaf_switch_pays_half(self):
        # The paper's conservative assumption for FN1.
        fractions = AgileFractions(fn={1: 1.0})
        overhead = agile_walk_overhead(fractions, self.shadow, self.nested,
                                       base_misses=100, e_ideal=100_000)
        assert overhead == pytest.approx(0.5 * (0.16 + 0.96))

    def test_mixture_is_linear(self):
        fractions = AgileFractions(fn={2: 0.25})
        overhead = agile_walk_overhead(fractions, self.shadow, self.nested,
                                       base_misses=100, e_ideal=100_000)
        assert overhead == pytest.approx(0.25 * 0.96 + 0.75 * 0.16)

    def test_vmm_elimination(self):
        fractions = AgileFractions(fv={"pt_write": 0.9, "context_switch": 1.0})
        overhead = agile_vmm_overhead(
            fractions,
            self.shadow,
            trap_cycles_by_reason={"pt_write": 40_000, "context_switch": 10_000},
            e_ideal=100_000,
        )
        # Eliminated 36k + 10k of 50k: 4k remain.
        assert overhead == pytest.approx(0.04)

    def test_vmm_never_negative(self):
        fractions = AgileFractions(fv={"pt_write": 1.0})
        overhead = agile_vmm_overhead(
            fractions, self.shadow,
            trap_cycles_by_reason={"pt_write": 999_999}, e_ideal=100_000,
        )
        assert overhead == 0.0

    def test_shadow_fraction_property(self):
        fractions = AgileFractions(fn={1: 0.2, 3: 0.1})
        assert fractions.shadow_fraction == pytest.approx(0.7)


class TestMetricsAdapter:
    def test_adapter_maps_fields(self):
        from repro.common.config import sandy_bridge_config
        from repro.core.machine import System
        from repro.core.simulator import MachineAPI

        system = System(sandy_bridge_config(mode="shadow"))
        api = MachineAPI(system)
        api.spawn()
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        metrics = system.collect_metrics()
        run = measured_run_from_metrics(metrics)
        assert run.total_cycles == metrics.total_cycles
        assert run.tlb_misses == metrics.tlb_misses
        assert run.hypervisor_cycles == metrics.vmm_cycles
