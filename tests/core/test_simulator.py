"""Unit tests for the Simulator/MachineAPI layer."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI, Simulator, run_workload
from repro.workloads.base import Workload


class TinyWorkload(Workload):
    name = "tiny"

    def execute(self, api):
        api.spawn()
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        api.start_measurement()
        for _round in range(4):
            for i in range(8):
                api.read(base + i * 4096)


class TestMachineAPI:
    def test_api_surface(self):
        system = System(sandy_bridge_config(mode="agile"))
        api = MachineAPI(system)
        proc = api.spawn()
        assert api.current is proc
        base = api.mmap(4 << 12)
        api.write(base)
        api.read(base)
        child = api.fork()
        api.switch_to(child)
        assert api.current is child
        api.switch_to(proc)
        api.exit(child)
        api.dedup(base, 4 << 12)
        api.reclaim(1)
        api.munmap(base, 4 << 12)

    def test_mmap_defaults_to_current(self):
        system = System(sandy_bridge_config(mode="native"))
        api = MachineAPI(system)
        first = api.spawn()
        second = api.spawn()
        api.switch_to(second)
        va = api.mmap(4 << 12)
        assert second.vmas.find(va) is not None
        assert first.vmas.find(va) is None


class TestSimulator:
    def test_run_returns_labeled_metrics(self):
        system = System(sandy_bridge_config(mode="native"))
        metrics = Simulator(system).run(TinyWorkload())
        assert metrics.label == "tiny"
        assert metrics.ops == 32  # measurement window only

    def test_measurement_window_excludes_setup(self):
        system = System(sandy_bridge_config(mode="shadow"))
        metrics = Simulator(system).run(TinyWorkload())
        # All 8 demand faults happened before start_measurement.
        assert metrics.guest_faults == 0
        assert metrics.trap_counts.get("pt_write", 0) == 0


class TestRunWorkload:
    def test_with_explicit_config(self):
        metrics = run_workload(TinyWorkload(), sandy_bridge_config(mode="nested"))
        assert metrics.mode == "nested"

    def test_with_overrides(self):
        metrics = run_workload(TinyWorkload(), mode="shadow")
        assert metrics.mode == "shadow"

    def test_default_is_native(self):
        metrics = run_workload(TinyWorkload())
        assert metrics.mode == "native"
