"""Unit tests for the Simulator/MachineAPI layer."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI, Simulator, run_workload
from repro.workloads.base import Workload


class TinyWorkload(Workload):
    name = "tiny"

    def execute(self, api):
        api.spawn()
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        api.start_measurement()
        for _round in range(4):
            for i in range(8):
                api.read(base + i * 4096)


class TestMachineAPI:
    def test_api_surface(self):
        system = System(sandy_bridge_config(mode="agile"))
        api = MachineAPI(system)
        proc = api.spawn()
        assert api.current is proc
        base = api.mmap(4 << 12)
        api.write(base)
        api.read(base)
        child = api.fork()
        api.switch_to(child)
        assert api.current is child
        api.switch_to(proc)
        api.exit(child)
        api.dedup(base, 4 << 12)
        api.reclaim(1)
        api.munmap(base, 4 << 12)

    def test_mmap_defaults_to_current(self):
        system = System(sandy_bridge_config(mode="native"))
        api = MachineAPI(system)
        first = api.spawn()
        second = api.spawn()
        api.switch_to(second)
        va = api.mmap(4 << 12)
        assert second.vmas.find(va) is not None
        assert first.vmas.find(va) is None


class TestSimulator:
    def test_run_returns_labeled_metrics(self):
        system = System(sandy_bridge_config(mode="native"))
        metrics = Simulator(system).run(TinyWorkload())
        assert metrics.label == "tiny"
        assert metrics.ops == 32  # measurement window only

    def test_measurement_window_excludes_setup(self):
        system = System(sandy_bridge_config(mode="shadow"))
        metrics = Simulator(system).run(TinyWorkload())
        # All 8 demand faults happened before start_measurement.
        assert metrics.guest_faults == 0
        assert metrics.trap_counts.get("pt_write", 0) == 0


class TestRunWorkload:
    def test_with_explicit_config(self):
        metrics = run_workload(TinyWorkload(), sandy_bridge_config(mode="nested"))
        assert metrics.mode == "nested"

    def test_with_overrides(self):
        metrics = run_workload(TinyWorkload(), mode="shadow")
        assert metrics.mode == "shadow"

    def test_default_is_native(self):
        metrics = run_workload(TinyWorkload())
        assert metrics.mode == "native"


class TestSeedThreading:
    """run_workload threads seed=/rng= into Workload construction.

    Regression for the gap where callers had no way to pass a pre-seeded
    rng through run_workload consistently with the ``Workload(rng=...)``
    contract — the workload had to be constructed by hand first.
    """

    def test_class_with_seed_is_deterministic(self):
        from repro.runner.testing import TinyWorkload as RandomTiny

        first = run_workload(RandomTiny, seed=9, ops=300, mode="shadow")
        second = run_workload(RandomTiny, seed=9, ops=300, mode="shadow")
        assert first.to_dict() == second.to_dict()

    def test_seed_and_equivalent_rng_agree(self):
        import numpy as np

        from repro.runner.testing import TinyWorkload as RandomTiny

        seeded = run_workload(RandomTiny, seed=9, ops=300, mode="shadow")
        injected = run_workload(RandomTiny, rng=np.random.default_rng(9),
                                ops=300, mode="shadow")
        assert seeded.to_dict() == injected.to_dict()

    def test_class_gets_config_page_size(self):
        from repro.common.params import TWO_MB
        from repro.runner.testing import TinyWorkload as RandomTiny

        metrics = run_workload(RandomTiny,
                               sandy_bridge_config(mode="native",
                                                   page_size=TWO_MB),
                               seed=1, ops=100)
        assert str(metrics.page_size) == "2M"

    def test_instance_plus_seed_is_an_error(self):
        with pytest.raises(TypeError):
            run_workload(TinyWorkload(), seed=3)
        with pytest.raises(TypeError):
            run_workload(TinyWorkload(), ops=10)
