"""Integration tests for the assembled System across all four modes."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.common.errors import SimulationError
from repro.common.params import TWO_MB
from repro.core.machine import System
from repro.core.simulator import MachineAPI

ALL_MODES = ("native", "nested", "shadow", "agile")


def build(mode, page_size=None, **overrides):
    config = sandy_bridge_config(mode=mode, **overrides)
    if page_size is not None:
        config = config.with_page_size(page_size)
    system = System(config)
    return system, MachineAPI(system)


class TestBasicAccess:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_read_after_write_round_trip(self, mode):
        system, api = build(mode)
        api.spawn()
        base = api.mmap(32 << 12)
        for i in range(32):
            api.write(base + i * 4096 + 7)
        for i in range(32):
            api.read(base + i * 4096 + 99)
        assert system.ops == 64
        assert system.clock.now > 0

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_repeat_access_hits_tlb(self, mode):
        system, api = build(mode)
        api.spawn()
        base = api.mmap(1 << 12)
        api.write(base)
        misses_after_first = system.mmu.counters.tlb_misses
        for _i in range(10):
            api.read(base)
        assert system.mmu.counters.tlb_misses == misses_after_first

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_access_without_process_raises(self, mode):
        system, _api = build(mode)
        with pytest.raises(SimulationError):
            system.access(0x1000)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_translation_consistency(self, mode):
        """The same VA reaches the same frame via TLB hit and via walk."""
        system, api = build(mode)
        api.spawn()
        base = api.mmap(1 << 12)
        first = api.write(base)
        second = api.read(base)  # TLB hit
        system.mmu.flush_all()
        third = api.read(base)  # fresh walk
        assert first.frame == second.frame == third.frame


class TestTwoMegPages:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_2m_round_trip(self, mode):
        system, api = build(mode, page_size=TWO_MB)
        api.spawn(code_pages=1)
        base = api.mmap(4 << 21)
        for i in range(4):
            api.write(base + i * (1 << 21) + 12345)
        for i in range(4):
            api.read(base + i * (1 << 21))
        assert system.mmu.counters.tlb_misses <= 8

    def test_2m_native_walk_is_3_refs(self):
        from dataclasses import replace

        config = sandy_bridge_config(mode="native", pwc=replace(
            sandy_bridge_config().pwc, enabled=False)).with_page_size(TWO_MB)
        system = System(config)
        api = MachineAPI(system)
        api.spawn(code_pages=0)
        base = api.mmap(1 << 21)
        api.write(base)
        system.mmu.flush_all()
        before = system.mmu.counters.walk_refs
        api.read(base)
        assert system.mmu.counters.walk_refs - before == 3


class TestCycleAccounting:
    def test_ideal_cycles_track_ops(self):
        system, api = build("native")
        api.spawn()
        base = api.mmap(4 << 12)
        for i in range(4):
            api.write(base + i * 4096)
        assert system.ideal_cycles == 8  # 4 ops x 2 cycles/op

    def test_clock_includes_all_components(self):
        system, api = build("shadow")
        api.spawn()
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        parts = (
            system.ideal_cycles
            + system.walk_cycles
            + system.tlb_l2_cycles
            + system.guest_fault_cycles
            + system.vmm.traps.total_attributed_cycles
        )
        assert system.clock.now == parts

    def test_native_metrics_have_no_vmm(self):
        system, api = build("native")
        api.spawn()
        base = api.mmap(4 << 12)
        api.write(base)
        metrics = system.collect_metrics()
        assert metrics.vmm_overhead == 0.0
        assert metrics.vmtraps == 0


class TestMetricsCollection:
    def test_summary_fields(self):
        system, api = build("agile")
        api.spawn()
        base = api.mmap(16 << 12)
        for i in range(16):
            api.write(base + i * 4096)
        metrics = system.collect_metrics("demo")
        summary = metrics.summary()
        assert summary["label"] == "demo"
        assert summary["mode"] == "agile"
        assert summary["ops"] == 16
        assert summary["tlb_misses"] >= 16
        assert metrics.total_cycles == system.clock.now

    def test_mode_mix_sums_to_one(self):
        system, api = build("agile")
        api.spawn()
        base = api.mmap(32 << 12)
        for _round in range(3):
            for i in range(32):
                api.access(base + i * 4096, _round == 0)
        mix = system.collect_metrics().mode_mix()
        assert mix
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_mode_mix_empty_for_native(self):
        system, api = build("native")
        api.spawn()
        base = api.mmap(1 << 12)
        api.read(base)
        assert system.collect_metrics().mode_mix() == {}


class TestMultiProcess:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_round_robin_processes(self, mode):
        system, api = build(mode)
        procs = [api.spawn() for _ in range(3)]
        bases = {}
        for proc in procs:
            api.switch_to(proc)
            bases[proc.pid] = api.mmap(8 << 12)
        for _round in range(4):
            for proc in procs:
                api.switch_to(proc)
                for i in range(8):
                    api.read(bases[proc.pid] + i * 4096)
        # ASIDs keep processes' translations separate and correct.
        assert system.ops == 3 * 8 * 4

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_fork_cow_under_each_mode(self, mode):
        system, api = build(mode)
        parent = api.spawn()
        base = api.mmap(8 << 12)
        for i in range(8):
            api.write(base + i * 4096)
        child = api.fork()
        api.write(base)  # parent COW break: parent gets a private copy
        api.switch_to(child)
        api.read(base)
        parent_frame = parent.page_table.translate(base)[0]
        child_frame = child.page_table.translate(base)[0]
        assert parent_frame != child_frame
