"""Unit tests for GuestProcess and its address-space anchors."""

import pytest

from repro.guest.process import (
    CODE_BASE,
    GuestProcess,
    GuestSegfault,
    HEAP_BASE,
    MMAP_BASE,
    STACK_TOP,
)
from repro.guest.vma import VMA
from repro.mem.physmem import PhysicalMemory


@pytest.fixture
def proc():
    return GuestProcess(7, PhysicalMemory(1024, "guest"))


class TestProcess:
    def test_asid_is_pid(self, proc):
        assert proc.pid == 7
        assert proc.asid == 7

    def test_gptr_is_page_table_root(self, proc):
        assert proc.gptr == proc.page_table.root_frame

    def test_find_vma(self, proc):
        vma = proc.vmas.add(VMA(0x1000, 0x2000))
        assert proc.find_vma(0x1800) is vma

    def test_find_vma_segfaults_outside(self, proc):
        with pytest.raises(GuestSegfault) as exc:
            proc.find_vma(0xDEAD000)
        assert exc.value.pid == 7
        assert exc.value.va == 0xDEAD000

    def test_layout_anchors_ordered(self):
        assert CODE_BASE < HEAP_BASE < MMAP_BASE < STACK_TOP

    def test_mmap_cursor_starts_at_base(self, proc):
        assert proc.mmap_cursor == MMAP_BASE

    def test_repr_mentions_pid(self, proc):
        assert "pid=7" in repr(proc)

    def test_observer_attached_to_table(self):
        from repro.mem.pagetable import PageTableObserver

        events = []

        class Recorder(PageTableObserver):
            def node_allocated(self, table, node, parent):
                events.append(node.level)

        GuestProcess(1, PhysicalMemory(64, "guest"), observer=Recorder())
        assert events == [4]  # root allocation observed
