"""Tests for mmap VA reuse and the settle primitive."""

import pytest

from repro.common.config import sandy_bridge_config
from repro.core.machine import System
from repro.core.simulator import MachineAPI
from repro.guest.kernel import GuestKernel
from repro.mem.physmem import PhysicalMemory


@pytest.fixture
def kernel():
    return GuestKernel(PhysicalMemory(1 << 14, "guest"))


class TestVAReuse:
    def test_same_size_region_reused(self, kernel):
        proc = kernel.create_process()
        va = kernel.mmap(proc, 8 << 12)
        kernel.munmap(proc, va, 8 << 12)
        assert kernel.mmap(proc, 8 << 12) == va

    def test_different_size_not_reused(self, kernel):
        proc = kernel.create_process()
        va = kernel.mmap(proc, 8 << 12)
        kernel.munmap(proc, va, 8 << 12)
        other = kernel.mmap(proc, 16 << 12)
        assert other != va

    def test_partial_unmap_not_reused(self, kernel):
        proc = kernel.create_process()
        va = kernel.mmap(proc, 8 << 12)
        kernel.munmap(proc, va, 4 << 12)  # only half
        fresh = kernel.mmap(proc, 4 << 12)
        assert fresh != va

    def test_reuse_is_per_process(self, kernel):
        first = kernel.create_process()
        second = kernel.create_process()
        va = kernel.mmap(first, 8 << 12)
        kernel.munmap(first, va, 8 << 12)
        kernel.mmap(second, 8 << 12)
        # The second process did not consume the first one's free region.
        assert kernel._free_regions[first.pid][8 << 12] == [va]
        # And the first process still reuses its own.
        assert kernel.mmap(first, 8 << 12) == va

    def test_exit_drops_free_list(self, kernel):
        proc = kernel.create_process()
        va = kernel.mmap(proc, 8 << 12)
        kernel.munmap(proc, va, 8 << 12)
        kernel.destroy_process(proc)
        assert proc.pid not in kernel._free_regions

    def test_reuse_keeps_pt_structure(self, kernel):
        """Reusing a VA means no new intermediate PT nodes."""
        proc = kernel.create_process()
        va = kernel.mmap(proc, 8 << 12, populate=True)
        nodes_before = sum(1 for _ in proc.page_table.iter_nodes())
        kernel.munmap(proc, va, 8 << 12)
        va2 = kernel.mmap(proc, 8 << 12, populate=True)
        nodes_after = sum(1 for _ in proc.page_table.iter_nodes())
        assert va2 == va
        assert nodes_after == nodes_before


class TestSettle:
    def test_settle_advances_clock(self):
        system = System(sandy_bridge_config(mode="agile"))
        MachineAPI(system).spawn()
        before = system.clock.now
        system.settle_policies(intervals=2)
        assert system.clock.now >= before + 2 * system.config.policy.revert_interval

    def test_settle_reverts_nested_nodes(self):
        system = System(sandy_bridge_config(mode="agile"))
        api = MachineAPI(system)
        proc = api.spawn()
        base = api.mmap(32 << 12)
        for i in range(32):
            api.write(base + i * 4096)
        manager = system.vmm.states[proc.pid].manager
        assert manager.nested_node_gfns()
        api.settle(intervals=3)
        assert not manager.nested_node_gfns()

    def test_settle_noop_on_native(self):
        system = System(sandy_bridge_config(mode="native"))
        MachineAPI(system).spawn()
        before = system.clock.now
        system.settle_policies()
        assert system.clock.now == before
