"""Unit tests for the guest kernel on bare metal (no VMM)."""

import pytest

from repro.common.params import FOUR_KB, TWO_MB
from repro.guest.kernel import GuestKernel, GuestPlatform, GuestProtectionError
from repro.guest.process import GuestSegfault
from repro.mem.physmem import PhysicalMemory


class RecordingPlatform(GuestPlatform):
    def __init__(self):
        self.invlpgs = []
        self.switches = []
        self.created = []
        self.flushes = 0

    def invlpg(self, proc, va):
        self.invlpgs.append((proc.pid, va))

    def flush_tlb(self, proc):
        self.flushes += 1

    def context_switch(self, old, new):
        self.switches.append((old.pid if old else None, new.pid))

    def process_created(self, proc):
        self.created.append(proc.pid)


@pytest.fixture
def platform():
    return RecordingPlatform()


@pytest.fixture
def kernel(platform):
    return GuestKernel(PhysicalMemory(1 << 15, "guest"), platform=platform)


@pytest.fixture
def proc(kernel):
    return kernel.create_process()


class TestProcessLifecycle:
    def test_create_installs_code(self, kernel, proc, platform):
        assert proc.resident_pages == GuestKernel.CODE_PAGES
        assert platform.created == [proc.pid]
        assert kernel.current is proc

    def test_destroy_frees_memory(self, kernel, proc):
        mem = kernel.guest_mem
        before = mem.allocator.allocated
        assert before > 0
        kernel.destroy_process(proc)
        assert mem.allocator.allocated == 0
        assert kernel.current is None

    def test_context_switch(self, kernel, platform):
        first = kernel.create_process()
        second = kernel.create_process()
        kernel.context_switch(second.pid)
        assert kernel.current is second
        assert platform.switches[-1] == (first.pid, second.pid)


class TestMmap:
    def test_mmap_reserves_region(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 20)
        vma = proc.vmas.find(va)
        assert vma is not None
        assert vma.size == 1 << 20

    def test_mmap_lazy_by_default(self, kernel, proc):
        rss = proc.resident_pages
        kernel.mmap(proc, 1 << 20)
        assert proc.resident_pages == rss

    def test_mmap_populate(self, kernel, proc):
        rss = proc.resident_pages
        kernel.mmap(proc, 64 << 12, populate=True)
        assert proc.resident_pages == rss + 64

    def test_munmap_frees(self, kernel, proc, platform):
        va = kernel.mmap(proc, 16 << 12, populate=True)
        allocated = kernel.guest_mem.allocator.allocated
        kernel.munmap(proc, va, 16 << 12)
        assert kernel.guest_mem.allocator.allocated == allocated - 16
        assert len(platform.invlpgs) == 16
        assert proc.vmas.find(va) is None

    def test_munmap_unmapped_raises(self, kernel, proc):
        with pytest.raises(Exception):
            kernel.munmap(proc, 0xDEAD0000, 0x1000)

    def test_mmap_regions_disjoint(self, kernel, proc):
        first = kernel.mmap(proc, 1 << 20)
        second = kernel.mmap(proc, 1 << 20)
        assert second >= first + (1 << 20)


class TestPageFaults:
    def test_minor_fault_maps_page(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 16)
        outcome = kernel.handle_page_fault(proc, va + 0x2345, is_write=False)
        assert outcome == "minor"
        translated = proc.page_table.translate(va + 0x2345)
        assert translated is not None

    def test_fault_outside_vma_segfaults(self, kernel, proc):
        with pytest.raises(GuestSegfault):
            kernel.handle_page_fault(proc, 0xBAD00000000, is_write=False)

    def test_write_to_readonly_vma_raises(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 16, writable=False)
        with pytest.raises(GuestProtectionError):
            kernel.handle_page_fault(proc, va, is_write=True)

    def test_spurious_fault(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 16)
        kernel.handle_page_fault(proc, va, is_write=False)
        assert kernel.handle_page_fault(proc, va, is_write=False) == "spurious"


class TestFork:
    def test_fork_shares_pages_readonly(self, kernel, proc):
        va = kernel.mmap(proc, 8 << 12, populate=True)
        child = kernel.fork(proc)
        parent_pte, _ = proc.page_table.lookup(va)
        child_pte, _ = child.page_table.lookup(va)
        assert parent_pte.frame == child_pte.frame
        assert not parent_pte.writable
        assert not child_pte.writable

    def test_fork_bumps_share_counts(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 12, populate=True)
        pte, _ = proc.page_table.lookup(va)
        kernel.fork(proc)
        assert kernel.guest_mem.read(pte.frame).shared == 2

    def test_cow_break_on_parent_write(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 12, populate=True)
        child = kernel.fork(proc)
        old_frame = proc.page_table.lookup(va)[0].frame
        outcome = kernel.handle_page_fault(proc, va, is_write=True)
        assert outcome == "cow"
        new_pte, _ = proc.page_table.lookup(va)
        assert new_pte.writable
        assert new_pte.frame != old_frame
        # Child still sees the original frame.
        assert child.page_table.lookup(va)[0].frame == old_frame

    def test_cow_last_owner_write_enables_in_place(self, kernel, proc):
        va = kernel.mmap(proc, 1 << 12, populate=True)
        child = kernel.fork(proc)
        kernel.handle_page_fault(proc, va, is_write=True)  # parent copies
        frame = child.page_table.lookup(va)[0].frame
        # Child is now sole owner: writing flips the bit, no copy.
        child.vmas.find(va).cow = True
        outcome = kernel.handle_page_fault(child, va, is_write=True)
        assert outcome == "cow"
        assert child.page_table.lookup(va)[0].frame == frame
        assert child.page_table.lookup(va)[0].writable

    def test_fork_write_protect_storm(self, kernel, proc, platform):
        kernel.mmap(proc, 32 << 12, populate=True)
        platform.invlpgs.clear()
        kernel.fork(proc)
        # Every writable parent page got write-protected + INVLPG'd.
        assert len(platform.invlpgs) >= 32


class TestDedup:
    def test_dedup_collapses_pairs(self, kernel, proc):
        va = kernel.mmap(proc, 8 << 12, populate=True)
        allocated = kernel.guest_mem.allocator.allocated
        shared = kernel.dedup_region(proc, va, 8 << 12, group=2)
        assert shared == 4
        assert kernel.guest_mem.allocator.allocated == allocated - 4
        first, _ = proc.page_table.lookup(va)
        second, _ = proc.page_table.lookup(va + 0x1000)
        assert first.frame == second.frame
        assert not first.writable

    def test_write_after_dedup_breaks_sharing(self, kernel, proc):
        va = kernel.mmap(proc, 4 << 12, populate=True)
        kernel.dedup_region(proc, va, 4 << 12, group=2)
        outcome = kernel.handle_page_fault(proc, va + 0x1000, is_write=True)
        assert outcome == "cow"
        first, _ = proc.page_table.lookup(va)
        second, _ = proc.page_table.lookup(va + 0x1000)
        assert first.frame != second.frame


class TestReclaim:
    def test_reclaim_prefers_unreferenced(self, kernel, proc):
        va = kernel.mmap(proc, 4 << 12, populate=True)
        # Mark page 0 referenced; others stay cold.
        proc.page_table.set_flags(va, accessed=True)
        evicted = kernel.reclaim(proc, 2)
        assert evicted == 2
        assert proc.page_table.lookup(va)[0] is not None  # hot page survives

    def test_reclaim_clears_accessed_first_pass(self, kernel, proc):
        va = kernel.mmap(proc, 2 << 12, populate=True)
        proc.page_table.set_flags(va, accessed=True)
        proc.page_table.set_flags(va + 0x1000, accessed=True)
        kernel.reclaim(proc, 1)
        # Second pass evicts a page whose accessed bit was cleared.
        resident = sum(1 for _ in proc.page_table.iter_leaves())
        assert resident == GuestKernel.CODE_PAGES + 1

    def test_reclaim_empty_process(self, kernel):
        proc = kernel.create_process(code_pages=0)
        assert kernel.reclaim(proc, 5) == 0


class TestHugePages:
    def test_2m_granule_populate(self):
        kernel = GuestKernel(PhysicalMemory(1 << 15, "guest"), page_size=TWO_MB)
        proc = kernel.create_process(code_pages=1)
        va = kernel.mmap(proc, 4 << 21, populate=True)
        pte, level = proc.page_table.lookup(va)
        assert level == 2
        assert pte.huge

    def test_2m_fault_maps_huge(self):
        kernel = GuestKernel(PhysicalMemory(1 << 15, "guest"), page_size=TWO_MB)
        proc = kernel.create_process(code_pages=0)
        va = kernel.mmap(proc, 2 << 21)
        kernel.handle_page_fault(proc, va + 12345, is_write=True)
        pte, level = proc.page_table.lookup(va)
        assert level == 2
