"""Unit tests for VMAs and the address-space container."""

import pytest

from repro.guest.vma import VMA, AddressSpace


class TestVMA:
    def test_basic_properties(self):
        vma = VMA(0x1000, 0x3000, writable=True, kind="anon")
        assert vma.size == 0x2000
        assert vma.contains(0x1000)
        assert vma.contains(0x2FFF)
        assert not vma.contains(0x3000)

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            VMA(0x1000, 0x1000)

    def test_overlaps(self):
        vma = VMA(0x1000, 0x3000)
        assert vma.overlaps(0x2000, 0x4000)
        assert vma.overlaps(0x0, 0x1001)
        assert not vma.overlaps(0x3000, 0x4000)
        assert not vma.overlaps(0x0, 0x1000)


class TestAddressSpace:
    def test_add_and_find(self):
        space = AddressSpace()
        vma = space.add(VMA(0x1000, 0x3000))
        assert space.find(0x2000) is vma
        assert space.find(0x4000) is None

    def test_rejects_overlap(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x3000))
        with pytest.raises(Exception):
            space.add(VMA(0x2000, 0x4000))

    def test_sorted_iteration(self):
        space = AddressSpace()
        space.add(VMA(0x5000, 0x6000))
        space.add(VMA(0x1000, 0x2000))
        assert [v.start for v in space] == [0x1000, 0x5000]

    def test_remove_whole(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x3000))
        removed = space.remove_range(0x1000, 0x3000)
        assert len(removed) == 1
        assert space.find(0x2000) is None

    def test_remove_splits(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x5000))
        space.remove_range(0x2000, 0x3000)
        assert space.find(0x1000) is not None
        assert space.find(0x2000) is None
        assert space.find(0x2FFF) is None
        assert space.find(0x3000) is not None
        assert space.find(0x4FFF) is not None

    def test_remove_trims_edges(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x5000))
        space.remove_range(0x0, 0x2000)
        assert space.find(0x1000) is None
        assert space.find(0x2000) is not None

    def test_clone_marks_cow(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x2000, writable=True))
        space.add(VMA(0x3000, 0x4000, writable=False))
        cloned = space.clone(mark_cow=True)
        assert cloned.find(0x1000).cow  # writable regions become COW
        assert not cloned.find(0x3000).cow  # read-only ones do not

    def test_clone_is_independent(self):
        space = AddressSpace()
        space.add(VMA(0x1000, 0x2000))
        cloned = space.clone()
        cloned.remove_range(0x1000, 0x2000)
        assert space.find(0x1000) is not None
