"""Regression gating: compare_reports semantics and rendering."""

import pytest

from repro.bench import CompareError, compare_reports, format_comparison


def _report(name="demo", metrics=None, gates=None):
    return {
        "schema": 2,
        "benchmark": name,
        "metrics": metrics or {},
        "gates": gates or [],
    }


GATE_HIGHER = {"metric": "speedup", "direction": "higher", "tolerance": 0.2}
GATE_LOWER = {"metric": "overhead", "direction": "lower", "tolerance": 0.2}


class TestCompareReports:
    def test_mismatched_benchmarks_raise(self):
        with pytest.raises(CompareError):
            compare_reports(_report("a"), _report("b"))

    def test_within_tolerance_passes(self):
        comparison = compare_reports(
            _report(metrics={"speedup": 10.0}),
            _report(metrics={"speedup": 9.0}, gates=[GATE_HIGHER]))
        assert comparison["ok"] is True
        (row,) = comparison["gates"]
        assert row["ok"] is True and row["reason"] is None

    def test_higher_gate_fails_on_drop_beyond_tolerance(self):
        comparison = compare_reports(
            _report(metrics={"speedup": 10.0}),
            _report(metrics={"speedup": 7.9}, gates=[GATE_HIGHER]))
        assert comparison["ok"] is False
        (row,) = comparison["gates"]
        assert "regressed" in row["reason"]

    def test_higher_gate_ignores_improvement(self):
        comparison = compare_reports(
            _report(metrics={"speedup": 10.0}),
            _report(metrics={"speedup": 30.0}, gates=[GATE_HIGHER]))
        assert comparison["ok"] is True

    def test_lower_gate_fails_on_rise_beyond_tolerance(self):
        comparison = compare_reports(
            _report(metrics={"overhead": 1.0}),
            _report(metrics={"overhead": 1.3}, gates=[GATE_LOWER]))
        assert comparison["ok"] is False

    def test_gated_metric_missing_from_either_side_fails(self):
        fresh_missing = compare_reports(
            _report(metrics={"speedup": 10.0}),
            _report(metrics={}, gates=[GATE_HIGHER]))
        base_missing = compare_reports(
            _report(metrics={}),
            _report(metrics={"speedup": 10.0}, gates=[GATE_HIGHER]))
        assert fresh_missing["ok"] is False
        assert base_missing["ok"] is False
        assert "missing" in fresh_missing["gates"][0]["reason"]

    def test_informational_deltas_cover_shared_metrics(self):
        comparison = compare_reports(
            _report(metrics={"a": 2.0, "b": 1.0, "only_base": 5}),
            _report(metrics={"a": 3.0, "b": 1.0, "only_fresh": 6}))
        assert set(comparison["deltas"]) == {"a", "b"}
        assert comparison["deltas"]["a"]["delta"] == pytest.approx(0.5)
        assert comparison["deltas"]["b"]["delta"] == 0.0

    def test_zero_baseline_delta_is_none_not_division_error(self):
        comparison = compare_reports(
            _report(metrics={"a": 0}),
            _report(metrics={"a": 4}))
        assert comparison["deltas"]["a"]["delta"] is None


class TestFormatComparison:
    def test_renders_verdicts_and_top_movers(self):
        comparison = compare_reports(
            _report(metrics={"speedup": 10.0, "noise": 1.0}),
            _report(metrics={"speedup": 5.0, "noise": 1.01},
                    gates=[GATE_HIGHER]))
        text = format_comparison(comparison)
        assert "REGRESSED" in text
        assert "FAIL" in text
        assert "speedup" in text

    def test_ok_comparison_reads_ok(self):
        comparison = compare_reports(
            _report(metrics={"speedup": 10.0}),
            _report(metrics={"speedup": 10.0}, gates=[GATE_HIGHER]))
        assert "ok" in format_comparison(comparison)
